//! The NFS client proper: path walking, cache policy and RPC plumbing.

use crate::cache::{AttrCache, LookupCache, PageCache};
use crate::options::MountOptions;
use gvfs_netsim::transport::SimRpcClient;
use gvfs_nfs3::{
    proc3, CommitArgs, CommitRes, CreateArgs, CreateHow, DirOpArgs, DirOpRes, Entry3, Fattr3, Fh3,
    Ftype3, GetattrArgs, GetattrRes, LinkArgs, LinkRes, LookupArgs, LookupRes, MkdirArgs, Nfsstat3,
    ReadArgs, ReadRes, ReaddirArgs, ReaddirRes, RenameArgs, RenameRes, Sattr3, SetattrArgs,
    SetattrRes, StableHow, WriteArgs, WriteRes, NFS_PROGRAM, NFS_V3,
};
use gvfs_rpc::RpcError;
use gvfs_xdr::Xdr;
use parking_lot::Mutex;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// An error from a client file operation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClientError {
    /// The server returned an NFS error status.
    Nfs(Nfsstat3),
    /// The RPC layer failed (after retries, for transport errors).
    Rpc(RpcError),
    /// The path was malformed (empty component, not absolute).
    InvalidPath,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Nfs(status) => write!(f, "nfs error: {status}"),
            ClientError::Rpc(e) => write!(f, "rpc error: {e}"),
            ClientError::InvalidPath => write!(f, "invalid path"),
        }
    }
}

impl Error for ClientError {}

impl From<RpcError> for ClientError {
    fn from(e: RpcError) -> Self {
        ClientError::Rpc(e)
    }
}

impl From<Nfsstat3> for ClientError {
    fn from(s: Nfsstat3) -> Self {
        ClientError::Nfs(s)
    }
}

/// Bootstraps a mount the way `mount(8)` does: asks the transport's
/// MOUNT service for the export's root file handle.
///
/// # Errors
///
/// [`ClientError::Nfs`] with [`Nfsstat3::Noent`] when the export path is
/// unknown; transport errors otherwise.
///
/// # Panics
///
/// Panics when called outside a simulation actor.
pub fn mount(transport: &SimRpcClient, export_path: &str) -> Result<Fh3, ClientError> {
    use gvfs_nfs3::mount::{mount_proc, MntArgs, MntRes, MOUNT_PROGRAM, MOUNT_V3};
    let args = gvfs_xdr::to_bytes(&MntArgs { dirpath: export_path.to_string() })
        .map_err(RpcError::from)?;
    let bytes = transport.call(MOUNT_PROGRAM, MOUNT_V3, mount_proc::MNT, args)?;
    let res: MntRes = gvfs_xdr::from_bytes(&bytes).map_err(RpcError::from)?;
    match res {
        MntRes::Ok { fhandle, .. } => Ok(fhandle),
        MntRes::Fail(_) => Err(ClientError::Nfs(Nfsstat3::Noent)),
    }
}

/// A directory entry as returned by [`NfsClient::readdir_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntryInfo {
    /// File id.
    pub fileid: u64,
    /// Entry name.
    pub name: String,
}

#[derive(Debug)]
struct Caches {
    attrs: AttrCache,
    lookups: LookupCache,
    pages: PageCache,
}

/// The kernel NFS client emulation.
///
/// One instance models one client machine's kernel NFS mount. Its file
/// operations must run inside a simulation actor (they advance virtual
/// time through the transport). See the [crate docs](crate) for the
/// behavioural model.
pub struct NfsClient {
    transport: SimRpcClient,
    root: Fh3,
    opts: MountOptions,
    caches: Mutex<Caches>,
}

impl fmt::Debug for NfsClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NfsClient").field("root", &self.root).finish()
    }
}

impl NfsClient {
    /// Creates a client mounted at `root` over `transport`.
    pub fn new(transport: SimRpcClient, root: Fh3, opts: MountOptions) -> Self {
        let caches = Caches {
            attrs: AttrCache::new(),
            lookups: LookupCache::new(opts.lookup_cache_entries),
            pages: PageCache::new(opts.page_cache_bytes, opts.transfer_size as usize),
        };
        NfsClient { transport, root, opts, caches: Mutex::new(caches) }
    }

    /// The mount's root file handle.
    pub fn root(&self) -> Fh3 {
        self.root
    }

    /// The mount options in effect.
    pub fn options(&self) -> &MountOptions {
        &self.opts
    }

    /// Empties every cache, as unmounting and remounting would
    /// (experiments start cold).
    pub fn drop_caches(&self) {
        let mut c = self.caches.lock();
        c.attrs.invalidate_all();
        c.lookups.clear();
        c.pages.clear();
    }

    fn min_timeout(&self, is_dir: bool) -> Duration {
        if self.opts.noac {
            return Duration::ZERO;
        }
        if is_dir {
            self.opts.acdirmin
        } else {
            self.opts.acregmin
        }
    }

    fn max_timeout(&self, is_dir: bool) -> Duration {
        if self.opts.noac {
            return Duration::ZERO;
        }
        if is_dir {
            self.opts.acdirmax
        } else {
            self.opts.acregmax
        }
    }

    /// One RPC with hard-mount retry semantics.
    fn rpc<A: Xdr, R: Xdr>(&self, procedure: u32, a: &A) -> Result<R, ClientError> {
        let args = gvfs_xdr::to_bytes(a).map_err(RpcError::from)?;
        let mut attempts = 0;
        loop {
            match self.transport.call(NFS_PROGRAM, NFS_V3, procedure, args.clone()) {
                Ok(bytes) => {
                    return Ok(gvfs_xdr::from_bytes(&bytes).map_err(RpcError::from)?);
                }
                Err(RpcError::Timeout | RpcError::Unreachable)
                    if attempts < self.opts.max_retries =>
                {
                    attempts += 1;
                    gvfs_netsim::sleep(self.opts.retry_backoff);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Absorbs post-op attributes the way the kernel does: update the
    /// attribute cache, and if the mtime moved against our cached pages,
    /// purge them.
    fn note_attrs(&self, fh: Fh3, attr: Fattr3) {
        let now = gvfs_netsim::now();
        let is_dir = attr.ftype == Ftype3::Dir;
        let mut c = self.caches.lock();
        let old_mtime = c.attrs.insert(fh, attr, now, self.min_timeout(is_dir));
        if is_dir {
            if old_mtime.is_some_and(|m| m != attr.mtime) {
                c.lookups.purge_dir(fh);
            }
        } else if c.pages.mtime_tag(fh).is_some_and(|m| m != attr.mtime) {
            c.pages.invalidate_file(fh);
        }
    }

    /// Attributes of `fh`, served from cache when fresh, revalidated with
    /// a `GETATTR` otherwise.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn getattr(&self, fh: Fh3) -> Result<Fattr3, ClientError> {
        let now = gvfs_netsim::now();
        if !self.opts.noac {
            if let Some(attr) = self.caches.lock().attrs.fresh(fh, now) {
                return Ok(attr);
            }
        }
        self.getattr_force(fh)
    }

    /// Unconditional `GETATTR` revalidation (the close-to-open open path).
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn getattr_force(&self, fh: Fh3) -> Result<Fattr3, ClientError> {
        let res: GetattrRes = self.rpc(proc3::GETATTR, &GetattrArgs { object: fh })?;
        match res {
            GetattrRes::Ok(attr) => {
                let now = gvfs_netsim::now();
                let is_dir = attr.ftype == Ftype3::Dir;
                let mut c = self.caches.lock();
                let changed = c.attrs.revalidate(
                    fh,
                    attr,
                    now,
                    self.min_timeout(is_dir),
                    self.max_timeout(is_dir),
                );
                if changed {
                    if is_dir {
                        c.lookups.purge_dir(fh);
                    } else {
                        c.pages.invalidate_file(fh);
                    }
                }
                Ok(attr)
            }
            GetattrRes::Fail(status) => {
                if status == Nfsstat3::Stale {
                    let mut c = self.caches.lock();
                    c.attrs.invalidate(fh);
                    c.pages.invalidate_file(fh);
                }
                Err(status.into())
            }
        }
    }

    /// Looks up one name in a directory, through the lookup cache.
    ///
    /// # Errors
    ///
    /// [`Nfsstat3::Noent`] and friends, or transport errors.
    pub fn lookup(&self, dir: Fh3, name: &str) -> Result<Fh3, ClientError> {
        // The dnlc entry (positive or negative) is only trusted while the
        // directory's attributes are; revalidating the directory purges
        // its entries on change.
        if self.caches.lock().lookups.get(dir, name).is_some() {
            self.getattr(dir)?;
            match self.caches.lock().lookups.get(dir, name) {
                Some(Some(child)) => return Ok(child),
                Some(None) => return Err(Nfsstat3::Noent.into()),
                None => {} // purged by revalidation; fall through
            }
        }
        let res: LookupRes =
            self.rpc(proc3::LOOKUP, &LookupArgs { dir, name: name.to_string() })?;
        match res {
            LookupRes::Ok { object, obj_attributes, dir_attributes } => {
                if let Some(attr) = obj_attributes {
                    self.note_attrs(object, attr);
                }
                if let Some(attr) = dir_attributes {
                    self.note_attrs(dir, attr);
                }
                self.caches.lock().lookups.insert(dir, name, object);
                Ok(object)
            }
            LookupRes::Fail { status, dir_attributes } => {
                if let Some(attr) = dir_attributes {
                    self.note_attrs(dir, attr);
                }
                if status == Nfsstat3::Noent {
                    self.caches.lock().lookups.insert_negative(dir, name);
                }
                Err(status.into())
            }
        }
    }

    fn split_path(path: &str) -> Result<Vec<&str>, ClientError> {
        if path.is_empty() {
            return Err(ClientError::InvalidPath);
        }
        Ok(path.split('/').filter(|c| !c.is_empty()).collect())
    }

    /// Resolves an absolute path to a handle, walking through the lookup
    /// cache.
    ///
    /// # Errors
    ///
    /// As for [`NfsClient::lookup`] on each component.
    pub fn resolve(&self, path: &str) -> Result<Fh3, ClientError> {
        let mut cur = self.root;
        for part in Self::split_path(path)? {
            cur = self.lookup(cur, part)?;
        }
        Ok(cur)
    }

    /// Resolves the parent directory and leaf name of a path.
    ///
    /// # Errors
    ///
    /// [`ClientError::InvalidPath`] for the root path; lookup errors on
    /// intermediate components.
    pub fn resolve_parent<'p>(&self, path: &'p str) -> Result<(Fh3, &'p str), ClientError> {
        let parts = Self::split_path(path)?;
        let Some((leaf, dirs)) = parts.split_last() else {
            return Err(ClientError::InvalidPath);
        };
        let mut cur = self.root;
        for part in dirs {
            cur = self.lookup(cur, part)?;
        }
        Ok((cur, leaf))
    }

    /// Opens a file by path: resolves it and, under close-to-open
    /// consistency, revalidates its attributes with the server.
    ///
    /// # Errors
    ///
    /// Lookup and revalidation errors.
    pub fn open(&self, path: &str) -> Result<Fh3, ClientError> {
        let fh = self.resolve(path)?;
        self.open_fh(fh)?;
        Ok(fh)
    }

    /// The open-time revalidation for an already-resolved handle.
    ///
    /// # Errors
    ///
    /// Revalidation errors.
    pub fn open_fh(&self, fh: Fh3) -> Result<Fattr3, ClientError> {
        if self.opts.close_to_open {
            self.getattr_force(fh)
        } else {
            self.getattr(fh)
        }
    }

    /// `stat(2)`: attributes by path through the caches.
    ///
    /// # Errors
    ///
    /// Lookup and attribute errors.
    pub fn stat(&self, path: &str) -> Result<Fattr3, ClientError> {
        let fh = self.resolve(path)?;
        self.getattr(fh)
    }

    /// Reads up to `count` bytes at `offset`, serving whole pages from
    /// the page cache.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn read(&self, fh: Fh3, offset: u64, count: u32) -> Result<Vec<u8>, ClientError> {
        let attr = self.getattr(fh)?;
        {
            let mut c = self.caches.lock();
            match c.pages.mtime_tag(fh) {
                Some(tag) if tag != attr.mtime => c.pages.invalidate_file(fh),
                None => {}
                Some(_) => {}
            }
            c.pages.set_mtime_tag(fh, attr.mtime);
        }
        let page_size = self.opts.transfer_size as u64;
        let end = (offset + count as u64).min(attr.size);
        if offset >= end {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut page = offset / page_size;
        while page * page_size < end {
            let page_data = self.read_page(fh, page)?;
            let page_start = page * page_size;
            let from = offset.saturating_sub(page_start) as usize;
            let to = ((end - page_start) as usize).min(page_data.len());
            if from < to {
                out.extend_from_slice(&page_data[from..to]);
            }
            if page_data.len() < page_size as usize {
                break; // short page = end of file
            }
            page += 1;
        }
        Ok(out)
    }

    fn read_page(&self, fh: Fh3, page: u64) -> Result<Vec<u8>, ClientError> {
        if let Some(data) = self.caches.lock().pages.get(fh, page) {
            return Ok(data.to_vec());
        }
        let page_size = self.opts.transfer_size;
        let res: ReadRes = self.rpc(
            proc3::READ,
            &ReadArgs { file: fh, offset: page * page_size as u64, count: page_size },
        )?;
        match res {
            ReadRes::Ok { file_attributes, data, .. } => {
                let mut c = self.caches.lock();
                c.pages.insert(fh, page, data.clone());
                drop(c);
                if let Some(attr) = file_attributes {
                    let now = gvfs_netsim::now();
                    let mut c = self.caches.lock();
                    c.attrs.insert(fh, attr, now, self.min_timeout(false));
                    c.pages.set_mtime_tag(fh, attr.mtime);
                }
                Ok(data)
            }
            ReadRes::Fail { status, .. } => Err(status.into()),
        }
    }

    /// Reads an entire file (open + sequential read).
    ///
    /// # Errors
    ///
    /// Open and read errors.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, ClientError> {
        let fh = self.resolve(path)?;
        let attr = self.open_fh(fh)?;
        self.read(fh, 0, attr.size.min(u32::MAX as u64) as u32)
    }

    /// Writes `data` at `offset`. The export is synchronous, so this is
    /// write-through; the page cache is updated in place.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn write(&self, fh: Fh3, offset: u64, data: &[u8]) -> Result<(), ClientError> {
        let chunk = self.opts.transfer_size as usize;
        let mut written = 0;
        while written < data.len() {
            let end = (written + chunk).min(data.len());
            let res: WriteRes = self.rpc(
                proc3::WRITE,
                &WriteArgs {
                    file: fh,
                    offset: offset + written as u64,
                    count: (end - written) as u32,
                    stable: StableHow::FileSync,
                    data: data[written..end].to_vec(),
                },
            )?;
            match res {
                WriteRes::Ok { file_wcc, .. } => {
                    if let Some(attr) = file_wcc.after {
                        // Our own write: keep pages, retag with new mtime.
                        let now = gvfs_netsim::now();
                        let mut c = self.caches.lock();
                        c.attrs.insert(fh, attr, now, self.min_timeout(false));
                        c.pages.set_mtime_tag(fh, attr.mtime);
                    }
                }
                WriteRes::Fail { status, .. } => return Err(status.into()),
            }
            written = end;
        }
        // Keep the written range readable from cache.
        self.cache_written_range(fh, offset, data);
        Ok(())
    }

    fn cache_written_range(&self, fh: Fh3, offset: u64, data: &[u8]) {
        let page_size = self.opts.transfer_size as u64;
        let mut c = self.caches.lock();
        // Only page-aligned full pages are kept; partial edges are
        // dropped so reads refetch them (simple and safe).
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let page = abs / page_size;
            let in_page = (abs % page_size) as usize;
            let take = ((page_size as usize) - in_page).min(data.len() - pos);
            if in_page == 0 && take == page_size as usize {
                c.pages.insert(fh, page, data[pos..pos + take].to_vec());
            } else {
                // Partial page: merge if present, else drop.
                if let Some(existing) = c.pages.get(fh, page).map(<[u8]>::to_vec) {
                    let mut merged = existing;
                    if merged.len() < in_page + take {
                        merged.resize(in_page + take, 0);
                    }
                    merged[in_page..in_page + take].copy_from_slice(&data[pos..pos + take]);
                    c.pages.insert(fh, page, merged);
                }
            }
            pos += take;
        }
    }

    /// Creates (or opens, with `UNCHECKED` semantics) a file.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn create(&self, dir: Fh3, name: &str, guarded: bool) -> Result<Fh3, ClientError> {
        let how = if guarded {
            CreateHow::Guarded(Sattr3 { mode: Some(0o644), ..Default::default() })
        } else {
            CreateHow::Unchecked(Sattr3 { mode: Some(0o644), ..Default::default() })
        };
        let res: gvfs_nfs3::NewObjRes =
            self.rpc(proc3::CREATE, &CreateArgs { dir, name: name.to_string(), how })?;
        self.absorb_new_obj(dir, name, res)
    }

    /// Creates a file by absolute path.
    ///
    /// # Errors
    ///
    /// Parent resolution and creation errors.
    pub fn create_path(&self, path: &str, guarded: bool) -> Result<Fh3, ClientError> {
        let (dir, name) = self.resolve_parent(path)?;
        self.create(dir, name, guarded)
    }

    /// Creates a whole file in one call (create + write).
    ///
    /// # Errors
    ///
    /// Creation and write errors.
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<Fh3, ClientError> {
        let fh = self.create_path(path, false)?;
        self.write(fh, 0, data)?;
        Ok(fh)
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn mkdir(&self, dir: Fh3, name: &str) -> Result<Fh3, ClientError> {
        let res: gvfs_nfs3::NewObjRes = self.rpc(
            proc3::MKDIR,
            &MkdirArgs {
                dir,
                name: name.to_string(),
                attributes: Sattr3 { mode: Some(0o755), ..Default::default() },
            },
        )?;
        self.absorb_new_obj(dir, name, res)
    }

    fn absorb_new_obj(
        &self,
        dir: Fh3,
        name: &str,
        res: gvfs_nfs3::NewObjRes,
    ) -> Result<Fh3, ClientError> {
        match res {
            gvfs_nfs3::NewObjRes::Ok { obj, obj_attributes, dir_wcc } => {
                let fh = obj.ok_or(ClientError::Nfs(Nfsstat3::Serverfault))?;
                if let Some(attr) = obj_attributes {
                    self.note_attrs(fh, attr);
                }
                if let Some(attr) = dir_wcc.after {
                    self.note_attrs(dir, attr);
                }
                self.caches.lock().lookups.insert(dir, name, fh);
                Ok(fh)
            }
            gvfs_nfs3::NewObjRes::Fail { status, dir_wcc } => {
                if let Some(attr) = dir_wcc.after {
                    self.note_attrs(dir, attr);
                }
                Err(status.into())
            }
        }
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn remove(&self, dir: Fh3, name: &str) -> Result<(), ClientError> {
        let res: DirOpRes = self.rpc(proc3::REMOVE, &DirOpArgs { dir, name: name.to_string() })?;
        if res.status.is_ok() {
            self.caches.lock().lookups.insert_negative(dir, name);
        } else {
            self.caches.lock().lookups.remove(dir, name);
        }
        if let Some(attr) = res.dir_wcc.after {
            self.note_attrs(dir, attr);
        }
        if res.status.is_ok() {
            Ok(())
        } else {
            Err(res.status.into())
        }
    }

    /// Removes a file by absolute path.
    ///
    /// # Errors
    ///
    /// Parent resolution and removal errors.
    pub fn remove_path(&self, path: &str) -> Result<(), ClientError> {
        let (dir, name) = self.resolve_parent(path)?;
        self.remove(dir, name)
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn rmdir(&self, dir: Fh3, name: &str) -> Result<(), ClientError> {
        let res: DirOpRes = self.rpc(proc3::RMDIR, &DirOpArgs { dir, name: name.to_string() })?;
        self.caches.lock().lookups.remove(dir, name);
        if let Some(attr) = res.dir_wcc.after {
            self.note_attrs(dir, attr);
        }
        if res.status.is_ok() {
            Ok(())
        } else {
            Err(res.status.into())
        }
    }

    /// Renames an entry.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn rename(
        &self,
        from_dir: Fh3,
        from_name: &str,
        to_dir: Fh3,
        to_name: &str,
    ) -> Result<(), ClientError> {
        let res: RenameRes = self.rpc(
            proc3::RENAME,
            &RenameArgs {
                from_dir,
                from_name: from_name.to_string(),
                to_dir,
                to_name: to_name.to_string(),
            },
        )?;
        {
            let mut c = self.caches.lock();
            c.lookups.remove(from_dir, from_name);
            c.lookups.remove(to_dir, to_name);
        }
        if let Some(attr) = res.fromdir_wcc.after {
            self.note_attrs(from_dir, attr);
        }
        if let Some(attr) = res.todir_wcc.after {
            self.note_attrs(to_dir, attr);
        }
        if res.status.is_ok() {
            Ok(())
        } else {
            Err(res.status.into())
        }
    }

    /// Creates a hard link `dir/name` to `file`. This is the mutual
    /// exclusion primitive of the paper's lock benchmark: `LINK` is
    /// atomic at the server, so exactly one of several racing clients
    /// succeeds.
    ///
    /// # Errors
    ///
    /// [`Nfsstat3::Exist`] when another client holds the name, other NFS
    /// or transport errors.
    pub fn link(&self, file: Fh3, dir: Fh3, name: &str) -> Result<(), ClientError> {
        let res: LinkRes =
            self.rpc(proc3::LINK, &LinkArgs { file, dir, name: name.to_string() })?;
        if let Some(attr) = res.file_attributes {
            self.note_attrs(file, attr);
        }
        if let Some(attr) = res.linkdir_wcc.after {
            self.note_attrs(dir, attr);
        }
        if res.status.is_ok() {
            self.caches.lock().lookups.insert(dir, name, file);
            Ok(())
        } else {
            Err(res.status.into())
        }
    }

    /// Updates a file's modification time to the server's current time
    /// (`touch(1)` — the repository-maintenance primitive).
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn touch(&self, fh: Fh3) -> Result<(), ClientError> {
        let res: SetattrRes = self.rpc(
            proc3::SETATTR,
            &SetattrArgs {
                object: fh,
                new_attributes: Sattr3 {
                    mtime: gvfs_nfs3::TimeHow::ServerTime,
                    ..Default::default()
                },
                guard: None,
            },
        )?;
        if let Some(attr) = res.obj_wcc.after {
            self.note_attrs(fh, attr);
        }
        if res.status.is_ok() {
            Ok(())
        } else {
            Err(res.status.into())
        }
    }

    /// Truncates a file to `size`.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn truncate(&self, fh: Fh3, size: u64) -> Result<(), ClientError> {
        let res: SetattrRes = self.rpc(
            proc3::SETATTR,
            &SetattrArgs {
                object: fh,
                new_attributes: Sattr3 { size: Some(size), ..Default::default() },
                guard: None,
            },
        )?;
        if let Some(attr) = res.obj_wcc.after {
            let now = gvfs_netsim::now();
            let mut c = self.caches.lock();
            c.attrs.insert(fh, attr, now, self.min_timeout(false));
            c.pages.invalidate_file(fh);
        }
        if res.status.is_ok() {
            Ok(())
        } else {
            Err(res.status.into())
        }
    }

    /// Lists an entire directory, paginating `READDIR` as needed.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn readdir_all(&self, dir: Fh3) -> Result<Vec<DirEntryInfo>, ClientError> {
        let mut out = Vec::new();
        let mut cookie = 0u64;
        let mut cookieverf = 0u64;
        loop {
            let res: ReaddirRes =
                self.rpc(proc3::READDIR, &ReaddirArgs { dir, cookie, cookieverf, count: 4096 })?;
            match res {
                ReaddirRes::Ok { dir_attributes, cookieverf: verf, entries, eof } => {
                    if let Some(attr) = dir_attributes {
                        self.note_attrs(dir, attr);
                    }
                    let last: Option<&Entry3> = entries.last();
                    cookie = last.map_or(cookie, |e| e.cookie);
                    cookieverf = verf;
                    out.extend(
                        entries
                            .into_iter()
                            .map(|e| DirEntryInfo { fileid: e.fileid, name: e.name }),
                    );
                    if eof {
                        return Ok(out);
                    }
                }
                ReaddirRes::Fail { status, .. } => return Err(status.into()),
            }
        }
    }

    /// Creates a symbolic link `dir/name` pointing at `target`.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn symlink(&self, dir: Fh3, name: &str, target: &str) -> Result<Fh3, ClientError> {
        let res: gvfs_nfs3::NewObjRes = self.rpc(
            proc3::SYMLINK,
            &gvfs_nfs3::SymlinkArgs {
                dir,
                name: name.to_string(),
                symlink_attributes: Sattr3::default(),
                symlink_data: target.to_string(),
            },
        )?;
        self.absorb_new_obj(dir, name, res)
    }

    /// Reads a symbolic link's target.
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn readlink(&self, fh: Fh3) -> Result<String, ClientError> {
        let res: gvfs_nfs3::ReadlinkRes =
            self.rpc(proc3::READLINK, &gvfs_nfs3::ReadlinkArgs { symlink: fh })?;
        match res {
            gvfs_nfs3::ReadlinkRes::Ok { symlink_attributes, data } => {
                if let Some(attr) = symlink_attributes {
                    self.note_attrs(fh, attr);
                }
                Ok(data)
            }
            gvfs_nfs3::ReadlinkRes::Fail { status, .. } => Err(status.into()),
        }
    }

    /// Lists an entire directory with `READDIRPLUS`, absorbing the
    /// returned attributes and handles into the caches (the mount-time
    /// `ls -l` pattern).
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn readdir_plus_all(&self, dir: Fh3) -> Result<Vec<DirEntryInfo>, ClientError> {
        use gvfs_nfs3::{ReaddirplusArgs, ReaddirplusRes};
        let mut out = Vec::new();
        let mut cookie = 0u64;
        let mut cookieverf = 0u64;
        loop {
            let res: ReaddirplusRes = self.rpc(
                proc3::READDIRPLUS,
                &ReaddirplusArgs { dir, cookie, cookieverf, dircount: 8192, maxcount: 32768 },
            )?;
            match res {
                ReaddirplusRes::Ok { dir_attributes, cookieverf: verf, entries, eof } => {
                    if let Some(attr) = dir_attributes {
                        self.note_attrs(dir, attr);
                    }
                    for e in &entries {
                        cookie = e.cookie;
                        if let (Some(fh), Some(attr)) = (e.name_handle, e.name_attributes) {
                            self.note_attrs(fh, attr);
                            self.caches.lock().lookups.insert(dir, &e.name, fh);
                        }
                        out.push(DirEntryInfo { fileid: e.fileid, name: e.name.clone() });
                    }
                    cookieverf = verf;
                    if eof {
                        return Ok(out);
                    }
                }
                ReaddirplusRes::Fail { status, .. } => return Err(status.into()),
            }
        }
    }

    /// Commits unstable writes (no-op against this synchronous server,
    /// but exercised for protocol completeness).
    ///
    /// # Errors
    ///
    /// NFS or transport errors.
    pub fn commit(&self, fh: Fh3) -> Result<(), ClientError> {
        let res: CommitRes =
            self.rpc(proc3::COMMIT, &CommitArgs { file: fh, offset: 0, count: 0 })?;
        match res {
            CommitRes::Ok { .. } => Ok(()),
            CommitRes::Fail { status, .. } => Err(status.into()),
        }
    }
}
