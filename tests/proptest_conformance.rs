//! Property-based conformance bridge between the `gvfs-analysis` model
//! checker and the runtime protocol tables.
//!
//! The checker proves the invariants below over *every* interleaving of
//! small configurations (depth ≤ 6); this bridge drives the same
//! implementations — [`DelegationTable`] and the invalidation trackers —
//! through random histories hundreds of steps long and re-asserts the
//! same safety properties after every step:
//!
//! * **write-exclusion** — a write delegation never coexists with any
//!   other delegation on the same file, in any reachable state;
//! * **recall bookkeeping** — the table's `recalling` counter always
//!   equals the recall rounds the driver actually has in flight;
//! * **re-grantability** — from every final state, answering the
//!   outstanding recalls and draining pending write-backs makes every
//!   file write-delegable again (no stuck `PendingWriteback`);
//! * **refinement** — [`ConcurrentInvalidationTracker`] observed under
//!   a serial schedule is indistinguishable from the sequential
//!   [`InvalidationTracker`] (§4.2.1's spec machine).

use gvfs_core::delegation::{DelegationKind, DelegationTable, RecallAction};
use gvfs_core::invalidation::{ConcurrentInvalidationTracker, InvalidationTracker};
use gvfs_core::protocol::DelegationGrant;
use gvfs_core::DelegationConfig;
use gvfs_netsim::SimTime;
use gvfs_nfs3::Fh3;
use proptest::prelude::*;

const T0: SimTime = SimTime::ZERO;
/// Second dirty block a partial write-back answer reports (matches the
/// model checker's fixture).
const BLOCK: u64 = 32_768;
const CLIENTS: u32 = 3;
const FILES: u64 = 2;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// A client access reaches the proxy server.
    Access { client: u32, file: u64, write: bool },
    /// One outstanding recall is answered; `partial` answers a write
    /// recall with a dirty-block list instead of a full flush.
    Answer { pick: usize, partial: bool },
    /// The flusher submits the next outstanding write-back block.
    Writeback { file: u64 },
    /// Server restart: volatile table lost, rebuilt from the clients'
    /// RECOVER answers (each write-delegation holder reports its file
    /// dirty).
    Restart,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..=CLIENTS, 1u64..=FILES, any::<bool>())
            .prop_map(|(client, file, write)| Op::Access { client, file, write }),
        (0usize..64, any::<bool>()).prop_map(|(pick, partial)| Op::Answer { pick, partial }),
        (1u64..=FILES).prop_map(|file| Op::Writeback { file }),
        Just(Op::Restart),
    ]
}

/// An in-flight recall round: `begin_recall` has run, the matching
/// `end_recall` runs when the last callback is answered.
struct Round {
    fh: Fh3,
    pending: Vec<RecallAction>,
}

fn check_exclusion(table: &DelegationTable) -> Result<(), TestCaseError> {
    for snap in table.snapshot() {
        let held = snap.sharers.iter().filter(|(_, k)| k.is_some()).count();
        let writers =
            snap.sharers.iter().filter(|(_, k)| matches!(k, Some(DelegationKind::Write))).count();
        prop_assert!(
            writers == 0 || held == 1,
            "write delegation shares {:?}: {:?}",
            snap.fh,
            snap.sharers
        );
    }
    Ok(())
}

fn check_recall_bookkeeping(
    table: &DelegationTable,
    rounds: &[Round],
) -> Result<(), TestCaseError> {
    for snap in table.snapshot() {
        let in_flight = rounds.iter().filter(|r| r.fh == snap.fh).count() as u32;
        prop_assert_eq!(
            snap.recalling,
            in_flight,
            "{:?}: table says {} recall rounds, driver has {}",
            snap.fh,
            snap.recalling,
            in_flight
        );
    }
    Ok(())
}

/// Answers every outstanding recall in full and drains every pending
/// write-back, as a correct set of clients eventually would.
fn settle(table: &mut DelegationTable, rounds: &mut Vec<Round>) {
    for round in rounds.drain(..) {
        for recall in round.pending {
            table.recall_done(recall.fh, recall.client, Vec::new());
        }
        table.end_recall(round.fh);
    }
    for snap in table.snapshot() {
        while let Some(p) = table.pending_writeback(snap.fh) {
            let (client, block) = (p.client, *p.blocks.iter().next().expect("non-empty pending"));
            table.note_writeback(snap.fh, client, block);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random delegation histories keep the checker's invariants.
    #[test]
    fn delegation_table_conformance(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut table = DelegationTable::new(DelegationConfig::default());
        let mut rounds: Vec<Round> = Vec::new();

        for op in ops {
            match op {
                Op::Access { client, file, write } => {
                    let fh = Fh3::from_fileid(file);
                    let (grant, recalls) = table.access(fh, client, write, Some(0), T0);
                    if grant == DelegationGrant::Write {
                        prop_assert_eq!(
                            table.held(fh, client),
                            Some(DelegationKind::Write),
                            "write grant not recorded for client {}",
                            client
                        );
                    }
                    if !recalls.is_empty() {
                        prop_assert_eq!(
                            grant,
                            DelegationGrant::NonCacheable,
                            "a conflicted access must be served non-cacheable"
                        );
                        table.begin_recall(fh);
                        rounds.push(Round { fh, pending: recalls });
                    }
                }
                Op::Answer { pick, partial } => {
                    if rounds.is_empty() {
                        continue;
                    }
                    let r = pick % rounds.len();
                    let i = pick % rounds[r].pending.len();
                    let recall = rounds[r].pending.remove(i);
                    let blocks = if partial && recall.kind == DelegationKind::Write {
                        vec![0, BLOCK]
                    } else {
                        Vec::new()
                    };
                    table.recall_done(recall.fh, recall.client, blocks);
                    if rounds[r].pending.is_empty() {
                        let done = rounds.remove(r);
                        table.end_recall(done.fh);
                    }
                }
                Op::Writeback { file } => {
                    let fh = Fh3::from_fileid(file);
                    if let Some(p) = table.pending_writeback(fh) {
                        let (client, block) =
                            (p.client, *p.blocks.iter().next().expect("non-empty pending"));
                        table.note_writeback(fh, client, block);
                    }
                }
                Op::Restart => {
                    // Each client re-reports the files it holds write
                    // delegations on (those are the ones it may hold
                    // dirty data for); recall rounds die with the server.
                    let mut dirty: Vec<(u32, Vec<Fh3>)> = Vec::new();
                    for snap in table.snapshot() {
                        for &(client, kind) in &snap.sharers {
                            if kind == Some(DelegationKind::Write) {
                                match dirty.iter_mut().find(|(c, _)| *c == client) {
                                    Some((_, files)) => files.push(snap.fh),
                                    None => dirty.push((client, vec![snap.fh])),
                                }
                            }
                        }
                    }
                    table = DelegationTable::new(DelegationConfig::default());
                    rounds.clear();
                    for (client, files) in dirty {
                        table.recover_client(client, &files, T0);
                    }
                }
            }

            check_exclusion(&table)?;
            check_recall_bookkeeping(&table, &rounds)?;
        }

        // Re-grantability: once the dust settles — recalls answered,
        // write-backs drained, and enough time passed for speculated
        // opens to expire — every file must be write-delegable again
        // for a fresh client.
        settle(&mut table, &mut rounds);
        let late = T0 + DelegationConfig::default().expiration + std::time::Duration::from_secs(1);
        for file in 1..=FILES {
            let fh = Fh3::from_fileid(file);
            let mut granted = false;
            for _ in 0..8 {
                let (grant, recalls) = table.access(fh, 99, true, Some(0), late);
                if grant == DelegationGrant::Write {
                    granted = true;
                    break;
                }
                if !recalls.is_empty() {
                    table.begin_recall(fh);
                    rounds.push(Round { fh, pending: recalls });
                }
                settle(&mut table, &mut rounds);
            }
            prop_assert!(granted, "{:?} never became write-delegable again", fh);
        }
    }

    /// The sharded concurrent invalidation tracker refines the
    /// sequential one: same history, same observable behaviour.
    #[test]
    fn concurrent_invalidation_refines_sequential(
        capacity in 1usize..=5,
        ops in proptest::collection::vec(
            prop_oneof![
                (1u32..=CLIENTS, 1u64..=4u64).prop_map(|(w, f)| (0u8, w, f)),
                (1u32..=CLIENTS).prop_map(|c| (1u8, c, 0)),
                (1u32..=CLIENTS).prop_map(|c| (2u8, c, 0)),
            ],
            1..150,
        ),
    ) {
        let mut seq = InvalidationTracker::new(capacity);
        let conc = ConcurrentInvalidationTracker::new(capacity);
        let mut last_ts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();

        for (kind, client, file) in ops {
            match kind {
                0 => {
                    let fh = Fh3::from_fileid(file);
                    seq.record_modification(fh, client);
                    conc.record_modification(fh, client);
                }
                kind => {
                    // kind 1 polls with the remembered timestamp, kind 2
                    // with null (a restarted client).
                    let ts = if kind == 1 { last_ts.get(&client).copied() } else { None };
                    let a = seq.getinv(client, ts);
                    let b = conc.getinv(client, ts);
                    prop_assert_eq!(a.force_invalidate, b.force_invalidate);
                    prop_assert_eq!(a.timestamp, b.timestamp);
                    prop_assert_eq!(a.poll_again, b.poll_again);
                    let mut ha = a.handles.clone();
                    let mut hb = b.handles.clone();
                    ha.sort_unstable();
                    hb.sort_unstable();
                    prop_assert_eq!(ha, hb, "owed sets diverge for client {}", client);
                    last_ts.insert(client, a.timestamp);
                }
            }
            prop_assert_eq!(seq.now(), conc.now(), "logical clocks diverge");
            prop_assert_eq!(seq.snapshot(), conc.snapshot(), "buffer states diverge");
        }
    }
}
