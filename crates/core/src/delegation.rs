//! The proxy server's delegation state machine (§4.3).
//!
//! NFSv3 has no OPEN/CLOSE, so the proxy server *speculates*: a file is
//! considered opened by a client when a read or write request arrives,
//! and closed when the client has not touched it for the configured
//! expiration time. Around that speculation it maintains per-file state:
//!
//! * multiple concurrent **read delegations** are allowed;
//! * a **write delegation** is granted only when no other client has the
//!   file open;
//! * conflicting requests trigger **recalls** (callbacks) of existing
//!   delegations and make the file temporarily non-cacheable;
//! * a recalled write delegation may answer with a dirty-block list
//!   (partial write-back); the server tracks the list, and accesses to
//!   still-dirty blocks force their immediate submission via targeted
//!   callbacks.
//!
//! The table itself is pure state: it returns [`RecallAction`]s for the
//! proxy server to execute (callbacks must happen outside the lock), and
//! is told the outcomes.

use crate::model::DelegationConfig;
use crate::protocol::DelegationGrant;
use gvfs_netsim::SimTime;
use gvfs_nfs3::Fh3;
use std::collections::{BTreeSet, HashMap};

/// A delegation held by a client on a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DelegationKind {
    /// Read delegation.
    Read,
    /// Write delegation.
    Write,
}

#[derive(Debug, Clone, Copy)]
struct Sharer {
    delegation: Option<DelegationKind>,
    last_access: SimTime,
}

// Conflict rules (§4.3.1, aligned with NFSv4 semantics):
//
// * a READ conflicts only with another client's *write delegation* — a
//   past writer without a delegation must route its next write through
//   the server anyway, which will recall whatever read delegations exist
//   by then, so read delegations are safe to hand out immediately;
// * a WRITE conflicts with any other client's delegation (read or
//   write), and a *write delegation* is additionally granted only when
//   no other client has the file speculatively open;
// * recalling a delegation also closes the holder's speculated open (the
//   write-back is the flush-on-close analogue), so a recalled file can
//   be re-delegated right away.

/// An in-progress partial write-back of a recalled write delegation.
#[derive(Debug, Clone)]
pub struct PendingWriteback {
    /// The client flushing its dirty data.
    pub client: u32,
    /// Byte offsets of extents not yet submitted.
    pub blocks: BTreeSet<u64>,
}

#[derive(Debug, Default, Clone)]
struct FileEntry {
    sharers: HashMap<u32, Sharer>,
    pending: Option<PendingWriteback>,
    /// Number of recall rounds currently in flight for this file. While
    /// non-zero the file is temporarily non-cacheable (§4.3.1): no new
    /// delegations are granted, so a grant can never race with the
    /// `recall_done` of an earlier round (which would silently desync
    /// the client's view).
    recalling: u32,
}

/// A callback the proxy server must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecallAction {
    /// Which client to call back.
    pub client: u32,
    /// The file being recalled.
    pub fh: Fh3,
    /// What is recalled.
    pub kind: DelegationKind,
    /// For write recalls triggered by a block access: the offset the
    /// requester is blocked on.
    pub requested_offset: Option<u64>,
}

/// The per-session delegation table.
///
/// # Examples
///
/// ```
/// use gvfs_core::delegation::DelegationTable;
/// use gvfs_core::protocol::DelegationGrant;
/// use gvfs_core::DelegationConfig;
/// use gvfs_netsim::SimTime;
/// use gvfs_nfs3::Fh3;
///
/// let mut table = DelegationTable::new(DelegationConfig::default());
/// let fh = Fh3::from_fileid(1);
/// let (grant, recalls) = table.access(fh, 1, false, None, SimTime::ZERO);
/// assert_eq!(grant, DelegationGrant::Read);
/// assert!(recalls.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DelegationTable {
    files: HashMap<Fh3, FileEntry>,
    config: DelegationConfig,
    /// Delegations revoked server-side by lease expiry (no recall).
    lease_revocations: u64,
    /// When set, every in-table lease revocation is appended to
    /// `revocation_log` for the caller to drain (trace emission, the
    /// product model). Off by default so untraced long-running sessions
    /// accumulate nothing.
    log_revocations: bool,
    /// `(client, fh)` pairs revoked since the last drain.
    revocation_log: Vec<(u32, Fh3)>,
}

/// A canonical, ordered dump of one file's delegation state, produced by
/// [`DelegationTable::snapshot`] for diagnostics and model checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSnapshot {
    /// The file.
    pub fh: Fh3,
    /// `(client, delegation)` pairs, sorted by client id.
    pub sharers: Vec<(u32, Option<DelegationKind>)>,
    /// In-progress partial write-back: `(client, dirty offsets)`.
    pub pending: Option<(u32, Vec<u64>)>,
    /// Recall rounds currently in flight.
    pub recalling: u32,
}

impl DelegationTable {
    /// Creates an empty table with the given policy.
    pub fn new(config: DelegationConfig) -> Self {
        DelegationTable {
            files: HashMap::new(),
            config,
            lease_revocations: 0,
            log_revocations: false,
            revocation_log: Vec::new(),
        }
    }

    /// Enables or disables per-event recording of in-table lease
    /// revocations (drained with [`DelegationTable::take_revocations`]).
    pub fn set_revocation_log(&mut self, enabled: bool) {
        self.log_revocations = enabled;
        if !enabled {
            self.revocation_log.clear();
        }
    }

    /// Drains the `(client, fh)` pairs revoked in-table since the last
    /// drain. Always empty unless recording was enabled.
    pub fn take_revocations(&mut self) -> Vec<(u32, Fh3)> {
        std::mem::take(&mut self.revocation_log)
    }

    /// The policy in effect.
    pub fn config(&self) -> &DelegationConfig {
        &self.config
    }

    /// Delegations revoked server-side by lease expiry (diagnostics).
    pub fn lease_revocations(&self) -> u64 {
        self.lease_revocations
    }

    /// Registers an access by `client` to `fh` and decides the grant.
    ///
    /// Returns the grant to piggyback on the reply plus any recalls the
    /// server must perform *before* serving the request. When recalls
    /// are returned the grant is [`DelegationGrant::NonCacheable`]; the
    /// caller executes the callbacks, reports outcomes via
    /// [`DelegationTable::recall_done`], and serves the request
    /// non-cached.
    ///
    /// `requested_offset` identifies the block a read/write is after, so
    /// a partial write-back in progress can be short-circuited for just
    /// that block.
    pub fn access(
        &mut self,
        fh: Fh3,
        client: u32,
        write: bool,
        requested_offset: Option<u64>,
        now: SimTime,
    ) -> (DelegationGrant, Vec<RecallAction>) {
        let entry = self.files.entry(fh).or_default();

        // A partial write-back in progress: if the requested block is
        // still dirty at the flusher, force its submission first.
        if let Some(pending) = &entry.pending {
            if pending.client != client {
                let hit = match requested_offset {
                    Some(off) => pending.blocks.contains(&off),
                    // Metadata access: any outstanding block matters only
                    // for reads of data; attribute reads proceed.
                    None => false,
                };
                if hit {
                    let recall = RecallAction {
                        client: pending.client,
                        fh,
                        kind: DelegationKind::Write,
                        requested_offset,
                    };
                    entry.sharers.insert(client, Sharer { delegation: None, last_access: now });
                    return (DelegationGrant::NonCacheable, vec![recall]);
                }
            }
        }

        // A recall round is in flight: stay out of its way — register
        // the open but grant nothing until the round completes.
        if entry.recalling > 0 {
            entry.sharers.insert(client, Sharer { delegation: None, last_access: now });
            return (DelegationGrant::NonCacheable, Vec::new());
        }

        // Collect conflicting delegations held by other clients. A
        // conflicting holder whose renewal lease has lapsed is revoked
        // on the spot instead of recalled (lease-based revocation): no
        // recall round trip is spent on a client that stopped renewing
        // — typically one that is partitioned — so a conflicting writer
        // is blocked for at most one lease period. The lease is at
        // least as long as the holder's renewal window, so a revoked
        // holder has already stopped serving from the delegation; it
        // learns of the revocation at re-promotion, when its dirty data
        // goes through the §4.3.4 reconciliation rules.
        let lease = self.config.lease;
        let mut recalls = Vec::new();
        let mut lapsed: Vec<u32> = Vec::new();
        for (&other, sharer) in &entry.sharers {
            if other == client {
                continue;
            }
            let conflict = match sharer.delegation {
                Some(DelegationKind::Write) => Some(RecallAction {
                    client: other,
                    fh,
                    kind: DelegationKind::Write,
                    requested_offset,
                }),
                Some(DelegationKind::Read) if write => Some(RecallAction {
                    client: other,
                    fh,
                    kind: DelegationKind::Read,
                    requested_offset: None,
                }),
                _ => None,
            };
            if let Some(recall) = conflict {
                if now.saturating_since(sharer.last_access) >= lease {
                    lapsed.push(other);
                } else {
                    recalls.push(recall);
                }
            }
        }
        for other in &lapsed {
            entry.sharers.remove(other);
        }
        self.lease_revocations += lapsed.len() as u64;
        if self.log_revocations {
            // Deterministic drain order regardless of map iteration.
            lapsed.sort_unstable();
            self.revocation_log.extend(lapsed.iter().map(|&c| (c, fh)));
        }

        if !recalls.is_empty() {
            // Deterministic callback order regardless of map iteration.
            recalls.sort_unstable_by_key(|r| r.client);
            // Conflict: recall existing delegations; the file is
            // temporarily non-cacheable for the requester (§4.3.1).
            for recall in &recalls {
                if let Some(s) = entry.sharers.get_mut(&recall.client) {
                    s.delegation = None;
                }
            }
            entry.sharers.insert(client, Sharer { delegation: None, last_access: now });
            return (DelegationGrant::NonCacheable, recalls);
        }

        // Does any *other* client have the file open (speculated)?
        let expiration = self.config.expiration;
        let others_open = entry
            .sharers
            .iter()
            .any(|(&c, s)| c != client && now.saturating_since(s.last_access) < expiration);

        // Drop speculated-closed sharers without delegations.
        entry.sharers.retain(|_, s| {
            s.delegation.is_some() || now.saturating_since(s.last_access) < expiration
        });

        let grant = if write {
            if others_open {
                // Write sharing: the write proceeds through the server
                // and nothing is delegated while others hold the file
                // open.
                entry.sharers.insert(client, Sharer { delegation: None, last_access: now });
                DelegationGrant::NonCacheable
            } else {
                entry.sharers.insert(
                    client,
                    Sharer { delegation: Some(DelegationKind::Write), last_access: now },
                );
                DelegationGrant::Write
            }
        } else {
            entry
                .sharers
                .entry(client)
                .and_modify(|s| {
                    s.last_access = now;
                    if s.delegation.is_none() {
                        s.delegation = Some(DelegationKind::Read);
                    }
                })
                .or_insert(Sharer { delegation: Some(DelegationKind::Read), last_access: now });
            match entry.sharers[&client].delegation {
                Some(DelegationKind::Write) => DelegationGrant::Write,
                _ => DelegationGrant::Read,
            }
        };
        (grant, Vec::new())
    }

    /// Marks the start of a recall round for `fh`: until the matching
    /// [`DelegationTable::end_recall`], accesses to the file are
    /// answered non-cacheable and no delegations are granted.
    pub fn begin_recall(&mut self, fh: Fh3) {
        self.files.entry(fh).or_default().recalling += 1;
    }

    /// Ends a recall round started with [`DelegationTable::begin_recall`].
    pub fn end_recall(&mut self, fh: Fh3) {
        if let Some(entry) = self.files.get_mut(&fh) {
            entry.recalling = entry.recalling.saturating_sub(1);
        }
    }

    /// Reports the outcome of a recall: for write recalls, the blocks
    /// the client still holds dirty (empty = fully flushed). The
    /// delegation is considered revoked either way (§4.3.2), and the
    /// recall also closes the holder's speculated open — its next access
    /// reopens through the server.
    pub fn recall_done(&mut self, fh: Fh3, client: u32, pending_blocks: Vec<u64>) {
        let Some(entry) = self.files.get_mut(&fh) else { return };
        if pending_blocks.is_empty() {
            entry.sharers.remove(&client);
            if entry.pending.as_ref().is_some_and(|p| p.client == client) {
                entry.pending = None;
            }
        } else {
            // Keep the sharer visible while its write-back trickles.
            if let Some(s) = entry.sharers.get_mut(&client) {
                s.delegation = None;
            }
            entry.pending =
                Some(PendingWriteback { client, blocks: pending_blocks.into_iter().collect() });
        }
    }

    /// Notes a write-back write from `client` covering `offset`,
    /// clearing it from the pending list. Returns `true` if this write
    /// belongs to a pending write-back (so the caller skips conflict
    /// processing for it).
    pub fn note_writeback(&mut self, fh: Fh3, client: u32, offset: u64) -> bool {
        let Some(entry) = self.files.get_mut(&fh) else { return false };
        let Some(pending) = &mut entry.pending else { return false };
        if pending.client != client {
            return false;
        }
        pending.blocks.remove(&offset);
        if pending.blocks.is_empty() {
            entry.pending = None;
            entry.sharers.remove(&client);
        }
        true
    }

    /// The pending write-back for a file, if any.
    pub fn pending_writeback(&self, fh: Fh3) -> Option<&PendingWriteback> {
        self.files.get(&fh).and_then(|e| e.pending.as_ref())
    }

    /// The delegation `client` holds on `fh`, if any.
    pub fn held(&self, fh: Fh3, client: u32) -> Option<DelegationKind> {
        self.files.get(&fh)?.sharers.get(&client)?.delegation
    }

    /// Sweeps for speculated-closed sharers (idle ≥ expiration) that
    /// still hold delegations; returns the callbacks needed to reclaim
    /// them. Entries without sharers are dropped. Also enforces the
    /// table size bound by recalling the least recently used entries.
    pub fn sweep(&mut self, now: SimTime) -> Vec<RecallAction> {
        let expiration = self.config.expiration;
        let mut actions = Vec::new();
        for (&fh, entry) in &mut self.files {
            for (&client, sharer) in &entry.sharers {
                if now.saturating_since(sharer.last_access) >= expiration {
                    if let Some(kind) = sharer.delegation {
                        actions.push(RecallAction { client, fh, kind, requested_offset: None });
                    }
                }
            }
            entry.sharers.retain(|_, s| {
                now.saturating_since(s.last_access) < expiration || s.delegation.is_some()
            });
        }
        self.files.retain(|_, e| !e.sharers.is_empty() || e.pending.is_some() || e.recalling > 0);
        actions.sort_unstable_by_key(|a| (a.fh, a.client));

        // LRU bound on tracked files (§4.3.3): proactively recall the
        // least recently accessed entries beyond the limit.
        if self.files.len() > self.config.max_tracked_files {
            let mut by_age: Vec<(SimTime, Fh3)> = self
                .files
                .iter()
                .map(|(&fh, e)| {
                    let newest =
                        e.sharers.values().map(|s| s.last_access).max().unwrap_or(SimTime::ZERO);
                    (newest, fh)
                })
                .collect();
            by_age.sort_unstable();
            let excess = self.files.len() - self.config.max_tracked_files;
            for &(_, fh) in by_age.iter().take(excess) {
                if let Some(entry) = self.files.get(&fh) {
                    for (&client, sharer) in &entry.sharers {
                        if let Some(kind) = sharer.delegation {
                            actions.push(RecallAction { client, fh, kind, requested_offset: None });
                        }
                    }
                }
                self.files.remove(&fh);
            }
        }
        actions
    }

    /// Marks a sharer's delegation dropped after a sweep recall
    /// completed.
    pub fn sweep_done(&mut self, fh: Fh3, client: u32) {
        if let Some(entry) = self.files.get_mut(&fh) {
            entry.sharers.remove(&client);
            if entry.sharers.is_empty() && entry.pending.is_none() {
                self.files.remove(&fh);
            }
        }
    }

    /// Rebuilds state after a server restart from clients' `RECOVER`
    /// replies: each dirty file reported by a client is re-entered with
    /// a write delegation so its delayed writes stay safe.
    pub fn recover_client(&mut self, client: u32, dirty_files: &[Fh3], now: SimTime) {
        for &fh in dirty_files {
            let entry = self.files.entry(fh).or_default();
            entry.sharers.insert(
                client,
                Sharer { delegation: Some(DelegationKind::Write), last_access: now },
            );
        }
    }

    /// Number of tracked files (diagnostics).
    pub fn tracked_files(&self) -> usize {
        self.files.len()
    }

    /// Total sharer entries across all tracked files (diagnostics; the
    /// per-client half of the table's cardinality).
    pub fn sharer_entries(&self) -> usize {
        self.files.values().map(|e| e.sharers.len()).sum()
    }

    /// Rough heap footprint of the table, for the scale bench's memory
    /// counter.
    pub fn approx_bytes(&self) -> usize {
        // Map-entry + FileEntry fixed overhead per file; a Sharer plus
        // its map slot per sharer; pending write-backs add their block
        // set.
        const PER_FILE: usize = 128;
        const PER_SHARER: usize = 48;
        const PER_PENDING_BLOCK: usize = 16;
        self.files
            .values()
            .map(|e| {
                PER_FILE
                    + e.sharers.len() * PER_SHARER
                    + e.pending.as_ref().map_or(0, |p| 32 + p.blocks.len() * PER_PENDING_BLOCK)
            })
            .sum()
    }

    /// `(files, sharer entries, approx bytes)` in one call, for the
    /// server's scale-stats dump (one guard acquisition per shard).
    pub fn scale_footprint(&self) -> (usize, usize, usize) {
        (self.files.len(), self.sharer_entries(), self.approx_bytes())
    }

    /// A canonical dump of the table, sorted by file handle, for
    /// diagnostics and the protocol model checker. Access times are
    /// deliberately omitted so snapshots of behaviourally-equal states
    /// compare equal.
    pub fn snapshot(&self) -> Vec<FileSnapshot> {
        let mut out: Vec<FileSnapshot> = self
            .files
            .iter()
            .map(|(&fh, e)| {
                let mut sharers: Vec<(u32, Option<DelegationKind>)> =
                    e.sharers.iter().map(|(&c, s)| (c, s.delegation)).collect();
                sharers.sort_unstable();
                FileSnapshot {
                    fh,
                    sharers,
                    pending: e
                        .pending
                        .as_ref()
                        .map(|p| (p.client, p.blocks.iter().copied().collect())),
                    recalling: e.recalling,
                }
            })
            .collect();
        out.sort_unstable_by_key(|s| s.fh);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn table() -> DelegationTable {
        DelegationTable::new(DelegationConfig::default())
    }

    fn fh(n: u64) -> Fh3 {
        Fh3::from_fileid(n)
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn first_reader_gets_read_delegation() {
        let mut t = table();
        let (grant, recalls) = t.access(fh(1), 1, false, None, T0);
        assert_eq!(grant, DelegationGrant::Read);
        assert!(recalls.is_empty());
        assert_eq!(t.held(fh(1), 1), Some(DelegationKind::Read));
    }

    #[test]
    fn multiple_readers_share_delegations() {
        let mut t = table();
        t.access(fh(1), 1, false, None, T0);
        let (grant, recalls) = t.access(fh(1), 2, false, None, T0);
        assert_eq!(grant, DelegationGrant::Read);
        assert!(recalls.is_empty());
        assert_eq!(t.held(fh(1), 1), Some(DelegationKind::Read));
        assert_eq!(t.held(fh(1), 2), Some(DelegationKind::Read));
    }

    #[test]
    fn sole_writer_gets_write_delegation() {
        let mut t = table();
        let (grant, _) = t.access(fh(1), 1, true, None, T0);
        assert_eq!(grant, DelegationGrant::Write);
        // Upgrades from read are allowed when alone.
        let mut t = table();
        t.access(fh(2), 1, false, None, T0);
        let (grant, recalls) = t.access(fh(2), 1, true, None, T0);
        assert_eq!(grant, DelegationGrant::Write);
        assert!(recalls.is_empty());
    }

    #[test]
    fn writer_conflicts_with_reader_recalls_and_uncaches() {
        let mut t = table();
        t.access(fh(1), 1, false, None, T0);
        let (grant, recalls) = t.access(fh(1), 2, true, None, T0);
        assert_eq!(grant, DelegationGrant::NonCacheable);
        assert_eq!(
            recalls,
            vec![RecallAction {
                client: 1,
                fh: fh(1),
                kind: DelegationKind::Read,
                requested_offset: None
            }]
        );
        assert_eq!(t.held(fh(1), 1), None, "read delegation revoked");
    }

    #[test]
    fn reader_conflicts_with_writer_recalls_write() {
        let mut t = table();
        t.access(fh(1), 1, true, None, T0);
        let (grant, recalls) = t.access(fh(1), 2, false, Some(32768), T0);
        assert_eq!(grant, DelegationGrant::NonCacheable);
        assert_eq!(recalls.len(), 1);
        assert_eq!(recalls[0].kind, DelegationKind::Write);
        assert_eq!(recalls[0].requested_offset, Some(32768));
    }

    #[test]
    fn read_write_ping_pong_uses_callbacks() {
        let mut t = table();
        t.access(fh(1), 1, false, None, T0);
        let (g, recalls) = t.access(fh(1), 2, true, None, T0); // conflict, recalls
        assert_eq!(g, DelegationGrant::NonCacheable);
        assert_eq!(recalls.len(), 1);
        t.recall_done(fh(1), 1, Vec::new());
        // The reader comes back: reads conflict only with *write
        // delegations* (the writer holds none), so it is re-delegated —
        // the writer's next write will recall it again.
        let (grant, recalls) = t.access(fh(1), 1, false, None, T0 + Duration::from_secs(1));
        assert_eq!(grant, DelegationGrant::Read);
        assert!(recalls.is_empty());
        let (grant, recalls) = t.access(fh(1), 2, true, None, T0 + Duration::from_secs(2));
        assert_eq!(grant, DelegationGrant::NonCacheable);
        assert_eq!(recalls.len(), 1, "next write recalls the fresh read delegation");
    }

    #[test]
    fn write_while_others_open_gets_no_delegation() {
        let mut t = table();
        t.access(fh(1), 1, false, None, T0);
        t.access(fh(1), 2, true, None, T0);
        t.recall_done(fh(1), 1, Vec::new());
        // Client 1 reopens (no delegation recalls needed after its next
        // read is granted and then dropped by a write)...
        t.access(fh(1), 1, false, None, T0 + Duration::from_secs(1));
        let (_, recalls) = t.access(fh(1), 2, true, None, T0 + Duration::from_secs(2));
        for r in &recalls {
            t.recall_done(r.fh, r.client, Vec::new());
        }
        // ...but while client 2 is speculatively open, client 1 cannot
        // take a *write* delegation.
        let (grant, recalls) = t.access(fh(1), 1, true, None, T0 + Duration::from_secs(3));
        assert!(recalls.is_empty());
        assert_eq!(grant, DelegationGrant::NonCacheable);
    }

    #[test]
    fn cacheability_returns_when_sharing_ends() {
        let mut t = table();
        t.access(fh(1), 1, false, None, T0);
        t.access(fh(1), 2, true, None, T0);
        t.recall_done(fh(1), 1, Vec::new());
        // Long after client 1's speculated close...
        let later = T0 + Duration::from_secs(700);
        let (grant, _) = t.access(fh(1), 2, true, None, later);
        assert_eq!(grant, DelegationGrant::Write, "sole opener regains delegation");
    }

    #[test]
    fn partial_writeback_tracks_blocks() {
        let mut t = table();
        t.access(fh(1), 1, true, None, T0);
        let (_, recalls) = t.access(fh(1), 2, false, Some(0), T0);
        assert_eq!(recalls.len(), 1);
        // Holder answers with a block list: delegation revoked, blocks tracked.
        t.recall_done(fh(1), 1, vec![0, 32768, 65536]);
        assert_eq!(t.pending_writeback(fh(1)).unwrap().blocks.len(), 3);
        // Write-back writes drain the list.
        assert!(t.note_writeback(fh(1), 1, 0));
        assert!(t.note_writeback(fh(1), 1, 32768));
        assert!(t.note_writeback(fh(1), 1, 65536));
        assert!(t.pending_writeback(fh(1)).is_none());
    }

    #[test]
    fn access_to_pending_block_forces_submission() {
        let mut t = table();
        t.access(fh(1), 1, true, None, T0);
        let (_, recalls) = t.access(fh(1), 2, false, Some(0), T0);
        t.recall_done(fh(1), 1, vec![32768, 65536]);
        assert_eq!(recalls.len(), 1);
        // Client 3 reads a still-dirty block: targeted recall.
        let (grant, recalls) = t.access(fh(1), 3, false, Some(65536), T0);
        assert_eq!(grant, DelegationGrant::NonCacheable);
        assert_eq!(recalls.len(), 1);
        assert_eq!(recalls[0].requested_offset, Some(65536));
        // A clean block does not.
        let (_, recalls) = t.access(fh(1), 3, false, Some(0), T0);
        assert!(recalls.is_empty());
    }

    #[test]
    fn writeback_from_other_client_is_not_confused() {
        let mut t = table();
        t.access(fh(1), 1, true, None, T0);
        t.access(fh(1), 2, false, Some(0), T0);
        t.recall_done(fh(1), 1, vec![0]);
        assert!(!t.note_writeback(fh(1), 2, 0), "only the flusher's writes count");
    }

    #[test]
    fn sweep_recalls_expired_delegations() {
        let mut t = table();
        t.access(fh(1), 1, false, None, T0);
        let late = T0 + Duration::from_secs(601);
        let actions = t.sweep(late);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].kind, DelegationKind::Read);
        t.sweep_done(fh(1), 1);
        assert_eq!(t.tracked_files(), 0);
    }

    #[test]
    fn sweep_keeps_active_sharers() {
        let mut t = table();
        t.access(fh(1), 1, false, None, T0);
        let actions = t.sweep(T0 + Duration::from_secs(10));
        assert!(actions.is_empty());
        assert_eq!(t.tracked_files(), 1);
    }

    #[test]
    fn renewal_extends_delegation() {
        let mut t = table();
        t.access(fh(1), 1, false, None, T0);
        // Renewed before expiration.
        t.access(fh(1), 1, false, None, T0 + Duration::from_secs(480));
        let actions = t.sweep(T0 + Duration::from_secs(700));
        assert!(actions.is_empty(), "renewed at 480s, expires at 1080s");
    }

    #[test]
    fn lru_eviction_bounds_state() {
        let mut t = DelegationTable::new(DelegationConfig {
            max_tracked_files: 4,
            ..DelegationConfig::default()
        });
        for i in 0..8 {
            t.access(fh(i), 1, false, None, T0 + Duration::from_secs(i));
        }
        let actions = t.sweep(T0 + Duration::from_secs(10));
        assert_eq!(t.tracked_files(), 4);
        assert_eq!(actions.len(), 4, "evicted entries are recalled first");
    }

    #[test]
    fn lease_expired_holder_revoked_without_recall() {
        let mut t = table();
        t.access(fh(1), 1, true, None, T0);
        assert_eq!(t.held(fh(1), 1), Some(DelegationKind::Write));
        // 550 s later the lease (540 s) has lapsed: a conflicting writer
        // proceeds immediately, no recall round trip, holder revoked.
        let late = T0 + Duration::from_secs(550);
        let (grant, recalls) = t.access(fh(1), 2, true, None, late);
        assert!(recalls.is_empty(), "lease lapsed: no recall round trip");
        assert_eq!(grant, DelegationGrant::Write, "writer unblocks within one lease period");
        assert_eq!(t.held(fh(1), 1), None, "stale delegation revoked server-side");
        assert_eq!(t.lease_revocations(), 1);
    }

    #[test]
    fn fresh_holder_still_recalled_not_lease_revoked() {
        let mut t = table();
        t.access(fh(1), 1, true, None, T0);
        // Well within the lease: the ordinary recall path applies.
        let (grant, recalls) = t.access(fh(1), 2, true, None, T0 + Duration::from_secs(100));
        assert_eq!(grant, DelegationGrant::NonCacheable);
        assert_eq!(recalls.len(), 1);
        assert_eq!(t.lease_revocations(), 0);
    }

    #[test]
    fn lease_revocation_only_hits_conflicting_holders() {
        let mut t = table();
        t.access(fh(1), 1, false, None, T0);
        // Another READ long past the holder's lease does not conflict
        // with a read delegation, so nothing is revoked.
        let late = T0 + Duration::from_secs(550);
        let (grant, recalls) = t.access(fh(1), 2, false, None, late);
        assert_eq!(grant, DelegationGrant::Read);
        assert!(recalls.is_empty());
        assert_eq!(t.lease_revocations(), 0);
        assert_eq!(t.held(fh(1), 1), Some(DelegationKind::Read));
    }

    #[test]
    fn recover_rebuilds_write_state() {
        let mut t = table();
        t.recover_client(3, &[fh(10), fh(11)], T0);
        assert_eq!(t.held(fh(10), 3), Some(DelegationKind::Write));
        assert_eq!(t.tracked_files(), 2);
    }
}
