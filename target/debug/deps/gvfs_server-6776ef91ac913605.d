/root/repo/target/debug/deps/gvfs_server-6776ef91ac913605.d: crates/server/src/lib.rs

/root/repo/target/debug/deps/gvfs_server-6776ef91ac913605: crates/server/src/lib.rs

crates/server/src/lib.rs:
