//! Repo-specific source lints for the GVFS workspace.
//!
//! Five rules, all keyed to the consistency protocol's concurrency
//! discipline (see `DESIGN.md`, "Checked invariants"):
//!
//! 1. **guard-across-send** — no named `MutexGuard`/`RwLock` guard may
//!    be live at an RPC send or callback invocation. The delegation
//!    protocol re-enters the proxy server from callback replies, so a
//!    guard held across the wire is a deadlock waiting for load. The
//!    rule is *interprocedural*: a guard live at a call to a workspace
//!    helper whose call chain reaches the wire is flagged too, with the
//!    chain spelled out.
//! 2. **unwrap-in-request-path** — no `unwrap()`/`expect()` in the
//!    proxy, server, or RPC request paths; a malformed request must
//!    surface as an error reply, not a panic that takes the session
//!    down.
//! 3. **protocol-match-exhaustive** — `match`es over the wire-protocol
//!    enums declared in `crates/core/src/protocol.rs` must not use a
//!    `_` arm, so adding a protocol variant fails to compile instead of
//!    silently taking a default path.
//! 4. **lock-order** — nested lock acquisitions in `crates/core` must
//!    follow the declared session → delegation → invalidation order
//!    (see [`LOCK_ORDER`]), including acquisitions made by callees
//!    (interprocedural, through the same call graph as rule 1). The
//!    table itself is drift-checked against the sources: an entry
//!    naming a lock no longer acquired anywhere in `crates/core`, or a
//!    lock receiver in `crates/core` missing from the table, fails the
//!    analysis.
//! 5. **blocking-in-actor** — actor-scoped code (`crates/core`) runs
//!    under the netsim virtual clock; real-time and thread-blocking std
//!    calls (`thread::sleep`/`park*`, `Instant::now`,
//!    `SystemTime::now`) would block a simulation actor or tear the
//!    deterministic clock, directly or through a workspace callee.
//!
//! The pass is textual (a token scan, not a type-checked analysis):
//! only *named* guards (`let g = x.lock();`) are tracked, and
//! `#[cfg(test)]` modules are skipped. That is deliberate — the
//! codebase's idiom for "release before the wire" is a named guard in a
//! scoped block, which is exactly the shape the scan verifies. The
//! interprocedural layer resolves calls by *name* against the `fn`s
//! defined in the same crate ([`CallGraph`]; sibling stacks such as the
//! legacy NFS client share too many method names for cross-crate
//! resolution to be sound), and common container/combinator names are
//! excluded from resolution so homonyms cannot poison chains.

use crate::lexer::{tokenize, Kind, Token};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};

/// The declared lock order for `crates/core`, outermost first. A lock
/// may only be acquired while holding locks of strictly lower rank.
///
/// Rank 0 is the session layer (callback routes, persisted client
/// list), then the client disk cache, then the proxy-client volatile
/// state, the server's per-shard delegation tables (`deleg`, one
/// mutex per file-handle shard; a thread holds at most one shard at a
/// time, so the shards share a rank) and the client readahead window,
/// then the persistent block store's extent index (`index`, reached
/// under the disk-cache guard — and, on the fill path, the readahead
/// guard too — so it must rank below both; it shares a rank with the
/// server's sharded invalidation tracker `buffers` because the client
/// store and the server tracker never interleave), then the store's
/// WAL appender (`wal`, taken under `index` to keep log order matching
/// index order), then the write-back/invalidation plumbing, then
/// actor handles (flusher/poller/supervisor/scrubber), the server's per-client
/// WAN-health registry (`health`, scoped to a breaker lookup, never
/// held across the wire), and counters beside the recall fan-out
/// window (`fanout`, a terminal lock: the semaphore guard is dropped
/// before the acquiring actor parks and nothing is acquired under it).
/// The peer-sourcing registry (`peers`) and advert map (`peer_hints`)
/// are likewise terminal: each guard scopes a single lookup / insert /
/// removal — candidate peers are collected and the guard dropped
/// before any `PEERREAD` goes on the wire — and `peer_hints` is taken
/// under the disk-cache guard on the invalidation path, so it must
/// rank below `disk`. Neither store lock may be held
/// across a WAN send: the store does disk I/O only, and its deferred
/// cost settlement happens after every guard is released.
pub const LOCK_ORDER: &[(&str, u32)] = &[
    ("callbacks", 0),
    ("persisted_clients", 0),
    ("disk", 1),
    ("state", 2),
    ("deleg", 2),
    ("readahead", 2),
    ("index", 3),
    ("buffers", 3),
    ("wal", 4),
    ("flush_queue", 5),
    ("flusher", 6),
    ("poller", 6),
    ("supervisor", 6),
    ("scrubber", 6),
    ("poll_ts", 7),
    ("health", 7),
    ("stats", 8),
    ("fanout", 8),
    ("peers", 8),
    ("peer_hints", 8),
    // The protocol-trace buffer is written under the deleg shard lock
    // (so per-file event order matches the table's linearization) and
    // must therefore rank below everything that may be held at an
    // emission point.
    ("tracebuf", 9),
];

/// Method names that send an RPC or invoke a callback (directly or as
/// the documented entry point of a path that does). `send` /
/// `send_with_cred` / `wait_pending` are the split halves of the
/// [`RpcChannel`] pipeline: issuing *or* awaiting a pending call parks
/// the actor, so a live guard at either point is held across the wire.
/// (`wait` itself is deliberately absent: `Condvar::wait(guard)` in the
/// TCP transport legitimately consumes a guard.)
///
/// [`RpcChannel`]: ../../rpc/src/channel.rs
const SEND_MARKERS: &[&str] = &[
    "call",
    "call_with_cred",
    "send",
    "send_with_cred",
    "wait_pending",
    "dispatch",
    "forward",
    "forward_wan",
    "perform_recall",
    "perform_recalls",
    "send_recall",
    "finish_recall",
    "flush_block",
    "flush_blocks",
    "flush_all",
    "drain_flush_queue",
    "poll_once",
    "read_from_cache",
    "fetch_missing",
    "maybe_prefetch",
    "crash_recover",
    "recover",
    "reconcile_dirty",
    "repromote",
    "run_supervisor",
    "repair_clean_range",
    "run_scrubber",
];

/// Callee names never followed through the call graph. Resolution is
/// by bare name, so a workspace method that happens to share its name
/// with a std container/combinator method would otherwise claim every
/// `.get(…)` or `.insert(…)` in the tree as an edge to itself. `sync`
/// is here for the same reason: it is the universal durability verb —
/// the netsim virtual disk, the block-store trait, and `std::fs::File`
/// all speak it — and following `disk.sync()` to the store's own
/// `sync` would make every WAL append look like a recursive
/// index-lock acquisition.
const EXCLUDED_CALLEES: &[&str] = &[
    "all",
    "and_modify",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "borrow",
    "borrow_mut",
    "chain",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "compare_exchange",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "default",
    "drain",
    "drop",
    "end",
    "entry",
    "eq",
    "err",
    "extend",
    "fetch_add",
    "fetch_sub",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_init",
    "hash",
    "index",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_none_or",
    "is_ok",
    "is_some",
    "is_some_and",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "map_err",
    "map_or",
    "max",
    "min",
    "ne",
    "new",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "push",
    "read",
    "remove",
    "replace",
    "retain",
    "rev",
    "rposition",
    "saturating_add",
    "saturating_sub",
    "set",
    "sort",
    "sort_unstable",
    "sort_unstable_by_key",
    "split",
    "starts_with",
    "store",
    "sum",
    "swap",
    "sync",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_lock",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "with_capacity",
    "wrapping_add",
    "write",
    "zip",
];

/// Identifiers that look like calls but are control-flow or binding
/// keywords.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while",
];

/// Real-time / thread-blocking std entry points, as `(qualifier,
/// name)` pairs: calling any of these inside actor-scoped code blocks
/// a simulation actor or reads the wall clock behind the virtual one.
const BLOCKING_CALLS: &[(&str, &str)] = &[
    ("thread", "sleep"),
    ("thread", "park"),
    ("thread", "park_timeout"),
    ("Instant", "now"),
    ("SystemTime", "now"),
];

/// Per-function facts extracted from one `fn` body, merged by name
/// across the scanned sources (conservative: homonyms union).
#[derive(Debug, Default, Clone)]
pub struct FnSummary {
    /// Where the (first) definition was seen.
    pub file: String,
    pub line: u32,
    /// Contains a direct send-marker method call.
    pub sends: bool,
    /// Contains a direct real-time/blocking std call.
    pub blocks: bool,
    /// Lock fields acquired directly in the body.
    pub acquires: BTreeSet<String>,
    /// Workspace-resolvable callee names.
    pub calls: BTreeSet<String>,
}

/// A name-resolved call graph over every `fn` in the scanned sources,
/// with transitive closures for the three interprocedural questions
/// the lints ask: does a callee reach the wire, does it block, and
/// which locks does it (transitively) acquire.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Name → merged summary.
    pub fns: HashMap<String, FnSummary>,
    /// Name → next hop towards a send marker (`None` = sends directly).
    send_via: HashMap<String, Option<String>>,
    /// Name → next hop towards a blocking call (`None` = blocks directly).
    block_via: HashMap<String, Option<String>>,
    /// Name → locks transitively acquired, with the callee hop that
    /// introduces each (`None` = acquired directly).
    acquires_closed: HashMap<String, BTreeMap<String, Option<String>>>,
}

impl CallGraph {
    /// Builds the graph from `(path, source)` pairs. `#[cfg(test)]`
    /// modules are stripped, matching the lint walks.
    pub fn build(sources: &[(String, String)]) -> CallGraph {
        let mut graph = CallGraph::default();
        for (file, src) in sources {
            let toks = strip_cfg_test(tokenize(src));
            collect_fn_summaries(file, &toks, &mut graph.fns);
        }
        graph.close();
        graph
    }

    /// Fixpoint over the merged summaries.
    fn close(&mut self) {
        for (name, s) in &self.fns {
            if s.sends {
                self.send_via.insert(name.clone(), None);
            }
            if s.blocks {
                self.block_via.insert(name.clone(), None);
            }
            if !s.acquires.is_empty() {
                let direct: BTreeMap<String, Option<String>> =
                    s.acquires.iter().map(|l| (l.clone(), None)).collect();
                self.acquires_closed.insert(name.clone(), direct);
            }
        }
        loop {
            let mut changed = false;
            for (name, s) in &self.fns {
                for callee in &s.calls {
                    if self.send_via.contains_key(callee) && !self.send_via.contains_key(name) {
                        self.send_via.insert(name.clone(), Some(callee.clone()));
                        changed = true;
                    }
                    if self.block_via.contains_key(callee) && !self.block_via.contains_key(name) {
                        self.block_via.insert(name.clone(), Some(callee.clone()));
                        changed = true;
                    }
                    if let Some(locks) = self.acquires_closed.get(callee).cloned() {
                        let mine = self.acquires_closed.entry(name.clone()).or_default();
                        for lock in locks.keys() {
                            if !mine.contains_key(lock) {
                                mine.insert(lock.clone(), Some(callee.clone()));
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// The call chain from `name` to a direct send marker, e.g.
    /// `["helper", "deeper"]` (the last element sends directly).
    /// `None` when `name` does not reach the wire.
    pub fn send_chain(&self, name: &str) -> Option<Vec<String>> {
        self.chain_of(&self.send_via, name)
    }

    /// The call chain from `name` to a direct blocking call.
    pub fn block_chain(&self, name: &str) -> Option<Vec<String>> {
        self.chain_of(&self.block_via, name)
    }

    /// Locks `name` transitively acquires.
    pub fn acquired_locks(&self, name: &str) -> Option<&BTreeMap<String, Option<String>>> {
        self.acquires_closed.get(name)
    }

    fn chain_of(&self, via: &HashMap<String, Option<String>>, name: &str) -> Option<Vec<String>> {
        if !via.contains_key(name) {
            return None;
        }
        let mut chain = vec![name.to_string()];
        let mut cur = name.to_string();
        while let Some(Some(next)) = via.get(&cur) {
            // Cycles cannot occur (a `Some` hop always points at a
            // node recorded earlier in the fixpoint), but stay bounded.
            if chain.len() > 32 || chain.contains(next) {
                break;
            }
            chain.push(next.clone());
            cur = next.clone();
        }
        Some(chain)
    }
}

/// Whether `toks[i]` is the name of a call site (`name(...)`,
/// `.name(...)`, or `Qualifier::name(...)`) that the graph should
/// resolve. Declarations (`fn name(`), macros (`name!(`), excluded and
/// keyword names, and capitalized names (types, variants) are not.
fn is_resolvable_call(toks: &[Token], i: usize) -> bool {
    let t = &toks[i];
    if t.kind != Kind::Ident
        || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        || KEYWORDS.contains(&t.text.as_str())
        || EXCLUDED_CALLEES.contains(&t.text.as_str())
        || t.text.starts_with(char::is_uppercase)
        || t.text.starts_with('_')
    {
        return false;
    }
    if i > 0 && toks[i - 1].is_ident("fn") {
        return false;
    }
    true
}

/// The `Qualifier` of a `Qualifier::name(...)` call at `toks[i]`, if
/// any.
fn call_qualifier(toks: &[Token], i: usize) -> Option<&str> {
    if i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].kind == Kind::Ident
    {
        Some(toks[i - 3].text.as_str())
    } else {
        None
    }
}

/// Whether `toks[i]` is a direct blocking/real-time std call.
fn is_blocking_call(toks: &[Token], i: usize) -> bool {
    let t = &toks[i];
    if t.kind != Kind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return false;
    }
    let Some(q) = call_qualifier(toks, i) else { return false };
    BLOCKING_CALLS.iter().any(|&(qual, name)| q == qual && t.text == name)
}

/// Scans `toks` for `fn` items and records a merged [`FnSummary`] per
/// name.
fn collect_fn_summaries(file: &str, toks: &[Token], out: &mut HashMap<String, FnSummary>) {
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != Kind::Ident {
            i += 1;
            continue;
        }
        // Find the body `{` (or a `;` for trait signatures) at bracket
        // depth 0. `<`/`>` generics are not tracked by the lexer as
        // brackets, so only parens and square brackets need balancing.
        let (mut parens, mut brackets) = (0i32, 0i32);
        let mut body_open = None;
        let mut j = i + 2;
        while j < toks.len() {
            let tk = &toks[j];
            if tk.kind == Kind::Punct {
                match tk.text.as_bytes()[0] {
                    b'(' => parens += 1,
                    b')' => parens -= 1,
                    b'[' => brackets += 1,
                    b']' => brackets -= 1,
                    b'{' if parens == 0 && brackets == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    b';' if parens == 0 && brackets == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        // Matched close brace.
        let mut depth = 0i32;
        let mut close = open;
        for (k, tk) in toks.iter().enumerate().skip(open) {
            if tk.is_punct('{') {
                depth += 1;
            } else if tk.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
        }
        let body = &toks[open + 1..close];
        let entry = out.entry(name_tok.text.clone()).or_insert_with(|| FnSummary {
            file: file.to_string(),
            line: name_tok.line,
            ..FnSummary::default()
        });
        for (k, tk) in body.iter().enumerate() {
            if tk.kind != Kind::Ident {
                continue;
            }
            // Direct send marker: method-call form, like rule 1.
            if SEND_MARKERS.contains(&tk.text.as_str())
                && k >= 1
                && body[k - 1].is_punct('.')
                && body.get(k + 1).is_some_and(|n| n.is_punct('('))
            {
                entry.sends = true;
            }
            if is_blocking_call(body, k) {
                entry.blocks = true;
            }
            // Direct lock acquisition: `<field> . lock|read|write ( )`.
            if matches!(tk.text.as_str(), "lock" | "read" | "write")
                && k >= 2
                && body[k - 1].is_punct('.')
                && body[k - 2].kind == Kind::Ident
                && body.get(k + 1).is_some_and(|n| n.is_punct('('))
                && body.get(k + 2).is_some_and(|n| n.is_punct(')'))
            {
                entry.acquires.insert(body[k - 2].text.clone());
            }
            if is_resolvable_call(body, k) && !SEND_MARKERS.contains(&tk.text.as_str()) {
                entry.calls.insert(tk.text.clone());
            }
        }
        i = close + 1;
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path of the offending file (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Extracts the names of `enum`s declared in protocol source text.
pub fn protocol_enum_names(protocol_source: &str) -> Vec<String> {
    let toks = tokenize(protocol_source);
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("enum") {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == Kind::Ident {
                    names.push(name.text.clone());
                }
            }
        }
    }
    names
}

/// Whether rule 2 (unwrap/expect) applies to this path.
fn in_request_path(file: &str) -> bool {
    let f = file.replace('\\', "/");
    f.contains("crates/core/src/proxy/")
        || f.contains("crates/server/src/")
        || f.contains("crates/rpc/src/")
}

/// Whether rule 4 (lock order) applies to this path.
fn in_lock_order_scope(file: &str) -> bool {
    file.replace('\\', "/").contains("crates/core/src/")
}

fn rank_of(lock: &str) -> Option<u32> {
    LOCK_ORDER.iter().find(|(n, _)| *n == lock).map(|&(_, r)| r)
}

/// Drops tokens belonging to `#[cfg(test)] mod … { … }` blocks.
fn strip_cfg_test(toks: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'));
        if !is_cfg_test {
            out.push(toks[i].clone());
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while j < toks.len() && toks[j].is_punct('#') {
            let mut depth = 0;
            j += 1; // consume '#'
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if toks.get(j).is_some_and(|t| t.is_ident("mod")) {
            // Skip to the matching close brace of the module body.
            let mut depth = 0;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            i = j;
        } else {
            // `#[cfg(test)]` on a non-module item: drop the attribute
            // only; the item itself is still scanned.
            i = j;
        }
    }
    out
}

#[derive(Debug)]
struct Guard {
    name: String,
    lock: String,
    depth: i32,
    line: u32,
    /// Token index of the declaring statement's `;` — the guard is only
    /// live *after* it, so its own initializer is not checked against it.
    born: usize,
}

/// Lints one file's source text. `protocol_enums` comes from
/// [`protocol_enum_names`] on `crates/core/src/protocol.rs`. The call
/// graph for the interprocedural checks is built from this file alone;
/// [`lint_workspace`] resolves calls across the whole workspace.
pub fn lint_source(file: &str, source: &str, protocol_enums: &[String]) -> Vec<Diagnostic> {
    let graph = CallGraph::build(&[(file.to_string(), source.to_string())]);
    lint_source_with_graph(file, source, protocol_enums, &graph)
}

/// Lints one file against an externally built (typically
/// workspace-wide) call graph.
pub fn lint_source_with_graph(
    file: &str,
    source: &str,
    protocol_enums: &[String],
    graph: &CallGraph,
) -> Vec<Diagnostic> {
    let toks = strip_cfg_test(tokenize(source));
    let mut diags = Vec::new();
    lint_guards_and_locks(file, &toks, graph, &mut diags);
    lint_protocol_matches(file, &toks, protocol_enums, &mut diags);
    lint_blocking(file, &toks, graph, &mut diags);
    diags
}

/// Rules 1, 2 and 4 share one walk with live-guard tracking.
fn lint_guards_and_locks(
    file: &str,
    toks: &[Token],
    graph: &CallGraph,
    diags: &mut Vec<Diagnostic>,
) {
    let request_path = in_request_path(file);
    let lock_scope = in_lock_order_scope(file);
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            guards.retain(|g| g.depth < depth);
            depth -= 1;
            continue;
        }
        if t.kind != Kind::Ident {
            continue;
        }

        // Acquisition event: `<field> . lock|read|write ( )`.
        let acquires = matches!(t.text.as_str(), "lock" | "read" | "write")
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == Kind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
        if acquires && lock_scope {
            let field = toks[i - 2].text.clone();
            for g in guards.iter().filter(|g| g.born < i) {
                match (rank_of(&g.lock), rank_of(&field)) {
                    (Some(held), Some(new)) if held < new => {}
                    (Some(_), Some(_)) => diags.push(Diagnostic {
                        file: file.into(),
                        line: t.line,
                        rule: "lock-order",
                        message: format!(
                            "acquiring `{field}` while guard `{}` holds `{}` (declared at line {}) \
                             violates the session → delegation → invalidation lock order",
                            g.name, g.lock, g.line
                        ),
                    }),
                    _ => diags.push(Diagnostic {
                        file: file.into(),
                        line: t.line,
                        rule: "lock-order",
                        message: format!(
                            "nested acquisition of `{field}` under `{}` but one of them is not in \
                             the declared lock-order table",
                            g.lock
                        ),
                    }),
                }
            }
        }

        // Send/callback marker (rule 1): method call on one of the
        // known wire entry points with a guard live.
        if SEND_MARKERS.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            for g in guards.iter().filter(|g| g.born < i) {
                diags.push(Diagnostic {
                    file: file.into(),
                    line: t.line,
                    rule: "guard-across-send",
                    message: format!(
                        "guard `{}` (lock `{}`, declared at line {}) is live across `.{}()`; \
                         release it (scoped block or drop) before the wire",
                        g.name, g.lock, g.line, t.text
                    ),
                });
            }
        }

        // Interprocedural forms of rules 1 and 4: a call to a workspace
        // fn whose chain reaches the wire, or whose transitive lock
        // acquisitions break the order, with a guard live. Names in
        // SEND_MARKERS are skipped here — the direct rule above already
        // owns them.
        if guards.iter().any(|g| g.born < i)
            && is_resolvable_call(toks, i)
            && !SEND_MARKERS.contains(&t.text.as_str())
        {
            let callee = t.text.as_str();
            if let Some(chain) = graph.send_chain(callee) {
                let path = chain.join(" -> ");
                for g in guards.iter().filter(|g| g.born < i) {
                    diags.push(Diagnostic {
                        file: file.into(),
                        line: t.line,
                        rule: "guard-across-send",
                        message: format!(
                            "guard `{}` (lock `{}`, declared at line {}) is live across \
                             `{callee}()`, which reaches the wire via `{path}`; release it \
                             before the call",
                            g.name, g.lock, g.line
                        ),
                    });
                }
            }
            if lock_scope {
                if let Some(locks) = graph.acquired_locks(callee) {
                    for (lock, via) in locks {
                        // Only ranked-vs-ranked pairs are judged here:
                        // callees elsewhere in the workspace may guard
                        // private state the core order does not rank.
                        for g in guards.iter().filter(|g| g.born < i) {
                            if let (Some(held), Some(new)) = (rank_of(&g.lock), rank_of(lock)) {
                                if held >= new {
                                    let hop = match via {
                                        Some(v) => format!("via `{v}`"),
                                        None => "directly".to_string(),
                                    };
                                    diags.push(Diagnostic {
                                        file: file.into(),
                                        line: t.line,
                                        rule: "lock-order",
                                        message: format!(
                                            "`{callee}()` acquires `{lock}` ({hop}) while guard \
                                             `{}` holds `{}` (declared at line {}); this violates \
                                             the session → delegation → invalidation lock order",
                                            g.name, g.lock, g.line
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        // Rule 2: unwrap/expect in request-path crates.
        if request_path
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            diags.push(Diagnostic {
                file: file.into(),
                line: t.line,
                rule: "unwrap-in-request-path",
                message: format!(
                    "`.{}()` in a proxy/server/RPC request path; propagate the error instead",
                    t.text
                ),
            });
        }

        // Explicit `drop(guard)`.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(name) = toks.get(i + 2) {
                if let Some(pos) = guards.iter().rposition(|g| g.name == name.text) {
                    guards.remove(pos);
                }
            }
        }

        // Guard registration: `let [mut] NAME = <recv>.lock();` (or
        // `.read()`/`.write()`).
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j) else { continue };
            if name.kind != Kind::Ident || name.text == "_" {
                continue;
            }
            if !toks.get(j + 1).is_some_and(|n| n.is_punct('=')) {
                continue; // pattern or type-annotated binding: not tracked
            }
            let init = j + 2;
            if toks.get(init).is_some_and(|n| n.is_punct('*')) {
                continue; // `let v = *x.lock();` copies out; guard is temporary
            }
            // Find the terminating `;` of the statement.
            let (mut braces, mut parens, mut brackets) = (0i32, 0i32, 0i32);
            let mut end = None;
            for (k, tk) in toks.iter().enumerate().skip(init) {
                if tk.kind == Kind::Punct {
                    match tk.text.as_bytes()[0] {
                        b'{' => braces += 1,
                        b'}' => braces -= 1,
                        b'(' => parens += 1,
                        b')' => parens -= 1,
                        b'[' => brackets += 1,
                        b']' => brackets -= 1,
                        b';' if braces == 0 && parens == 0 && brackets == 0 => {
                            end = Some(k);
                            break;
                        }
                        _ => {}
                    }
                }
            }
            let Some(end) = end else { continue };
            if end >= init + 5
                && toks[end - 1].is_punct(')')
                && toks[end - 2].is_punct('(')
                && matches!(toks[end - 3].text.as_str(), "lock" | "read" | "write")
                && toks[end - 3].kind == Kind::Ident
                && toks[end - 4].is_punct('.')
                && toks[end - 5].kind == Kind::Ident
            {
                // Shadowing at the same depth replaces the old guard.
                guards.retain(|g| !(g.name == name.text && g.depth == depth));
                guards.push(Guard {
                    name: name.text.clone(),
                    lock: toks[end - 5].text.clone(),
                    depth,
                    line: t.line,
                    born: end,
                });
            }
        }
    }
}

/// Rule 5: real-time / thread-blocking std calls in actor-scoped code
/// (`crates/core`), directly or through a workspace callee.
fn lint_blocking(file: &str, toks: &[Token], graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    if !in_lock_order_scope(file) {
        return;
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        if is_blocking_call(toks, i) {
            let q = call_qualifier(toks, i).unwrap_or("std");
            diags.push(Diagnostic {
                file: file.into(),
                line: t.line,
                rule: "blocking-in-actor",
                message: format!(
                    "`{q}::{}()` in actor-scoped code blocks the simulation actor / reads the \
                     wall clock; use the netsim virtual clock (`gvfs_netsim::now` / \
                     `park_timeout`) instead",
                    t.text
                ),
            });
            continue;
        }
        if is_resolvable_call(toks, i) && !SEND_MARKERS.contains(&t.text.as_str()) {
            if let Some(chain) = graph.block_chain(&t.text) {
                // When the blocking terminus is itself actor-scoped the
                // direct form above already flags it at its own site;
                // only chains escaping the scope need a report here.
                let Some(terminal) = chain.last() else { continue };
                let terminal_in_scope =
                    graph.fns.get(terminal).is_some_and(|s| in_lock_order_scope(&s.file));
                if !terminal_in_scope {
                    let path = chain.join(" -> ");
                    diags.push(Diagnostic {
                        file: file.into(),
                        line: t.line,
                        rule: "blocking-in-actor",
                        message: format!(
                            "`{}()` reaches a real-time/blocking std call via `{path}`; \
                             actor-scoped code must stay on the virtual clock",
                            t.text
                        ),
                    });
                }
            }
        }
    }
}

/// Rule 4's table is load-bearing, so it is drift-checked against the
/// sources both ways: a [`LOCK_ORDER`] entry naming a lock no longer
/// acquired anywhere in `crates/core`, or an acquisition receiver there
/// that the table does not rank, fails the analysis.
pub fn lint_lock_order_drift(sources: &[(String, String)], diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for (file, src) in sources {
        if !in_lock_order_scope(file) {
            continue;
        }
        let toks = strip_cfg_test(tokenize(src));
        for (i, t) in toks.iter().enumerate() {
            if matches!(t.text.as_str(), "lock" | "read" | "write")
                && t.kind == Kind::Ident
                && i >= 2
                && toks[i - 1].is_punct('.')
                && toks[i - 2].kind == Kind::Ident
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
            {
                seen.entry(toks[i - 2].text.clone()).or_insert_with(|| (file.clone(), t.line));
            }
        }
    }
    for (lock, _) in LOCK_ORDER {
        if !seen.contains_key(*lock) {
            diags.push(Diagnostic {
                file: "crates/analysis/src/lint.rs".into(),
                line: 1,
                rule: "lock-order-drift",
                message: format!(
                    "LOCK_ORDER ranks `{lock}` but nothing in crates/core acquires it; remove \
                     the stale entry"
                ),
            });
        }
    }
    for (recv, (file, line)) in &seen {
        if rank_of(recv).is_none() {
            diags.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: "lock-order-drift",
                message: format!(
                    "`{recv}` is acquired in crates/core but has no rank in LOCK_ORDER; add it \
                     to the table so nesting against it is checked"
                ),
            });
        }
    }
}

/// Rule 3: a `match` whose *patterns* reference a protocol enum must
/// not have a top-level `_` arm.
fn lint_protocol_matches(
    file: &str,
    toks: &[Token],
    protocol_enums: &[String],
    diags: &mut Vec<Diagnostic>,
) {
    if protocol_enums.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        if !toks[i].is_ident("match") || (i > 0 && toks[i - 1].is_punct('.')) {
            continue;
        }
        // Find the body `{` (scrutinees cannot contain bare braces).
        let (mut parens, mut brackets) = (0i32, 0i32);
        let mut body = None;
        for (k, tk) in toks.iter().enumerate().skip(i + 1) {
            if tk.kind == Kind::Punct {
                match tk.text.as_bytes()[0] {
                    b'(' => parens += 1,
                    b')' => parens -= 1,
                    b'[' => brackets += 1,
                    b']' => brackets -= 1,
                    b'{' if parens == 0 && brackets == 0 => {
                        body = Some(k);
                        break;
                    }
                    b';' if parens == 0 && brackets == 0 => break, // not a match expr
                    _ => {}
                }
            }
        }
        let Some(body) = body else { continue };
        let (mut braces, mut parens, mut brackets) = (0i32, 0i32, 0i32);
        let mut in_pattern = true;
        let mut refs_protocol_enum = false;
        let mut wildcard: Option<u32> = None;
        let mut k = body + 1;
        while k < toks.len() {
            let tk = &toks[k];
            let level = braces == 0 && parens == 0 && brackets == 0;
            if tk.kind == Kind::Punct {
                match tk.text.as_bytes()[0] {
                    b'{' => braces += 1,
                    b'}' => {
                        if braces == 0 {
                            break; // end of the match body
                        }
                        braces -= 1;
                        if braces == 0 && parens == 0 && brackets == 0 {
                            in_pattern = true; // block-bodied arm ended
                        }
                    }
                    b'(' => parens += 1,
                    b')' => parens -= 1,
                    b'[' => brackets += 1,
                    b']' => brackets -= 1,
                    b',' if level => in_pattern = true,
                    b'=' if level && toks.get(k + 1).is_some_and(|n| n.is_punct('>')) => {
                        in_pattern = false;
                        k += 1;
                    }
                    _ => {}
                }
            } else if tk.kind == Kind::Ident && in_pattern {
                if tk.text == "_"
                    && level
                    && toks.get(k + 1).is_some_and(|n| n.is_punct('='))
                    && toks.get(k + 2).is_some_and(|n| n.is_punct('>'))
                {
                    wildcard = Some(tk.line);
                } else if protocol_enums.contains(&tk.text)
                    && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                {
                    refs_protocol_enum = true;
                }
            }
            k += 1;
        }
        if refs_protocol_enum {
            if let Some(line) = wildcard {
                diags.push(Diagnostic {
                    file: file.into(),
                    line,
                    rule: "protocol-match-exhaustive",
                    message: "`_` arm in a match over a protocol enum; name every variant so new \
                              protocol states fail to compile here"
                        .into(),
                });
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every `crates/*/src/**/*.rs` file under `root` (the workspace
/// root). Vendored stand-ins under `vendor/` are never scanned.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let protocol_path = root.join("crates/core/src/protocol.rs");
    let protocol_src = std::fs::read_to_string(&protocol_path)
        .map_err(|e| format!("cannot read {}: {e}", protocol_path.display()))?;
    let enums = protocol_enum_names(&protocol_src);
    if enums.is_empty() {
        return Err(format!("no protocol enums found in {}", protocol_path.display()));
    }

    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return Err(format!("cannot read {}", crates_dir.display()));
    };
    let mut crate_dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for c in crate_dirs {
        collect_rs(&c.join("src"), &mut files);
    }
    if files.is_empty() {
        return Err(format!("no sources found under {}", crates_dir.display()));
    }

    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(path).display().to_string();
        sources.push((rel, source));
    }

    // One call graph per crate, so the interprocedural checks follow
    // helpers across module boundaries. Resolution is deliberately NOT
    // cross-crate: callee names are matched textually, and the
    // workspace carries whole sibling stacks (the legacy NFS client,
    // the AFS baseline) whose homonyms (`lookup`, `getattr`, `now`, …)
    // would otherwise poison every chain. Cross-crate wire entry
    // points are covered by name via [`SEND_MARKERS`] instead.
    let mut by_crate: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for (rel, source) in sources.iter().cloned() {
        by_crate.entry(crate_of(&rel)).or_default().push((rel, source));
    }
    let mut diags = Vec::new();
    for crate_sources in by_crate.values() {
        let graph = CallGraph::build(crate_sources);
        for (rel, source) in crate_sources {
            diags.extend(lint_source_with_graph(rel, source, &enums, &graph));
        }
    }
    lint_lock_order_drift(&sources, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}

/// The `crates/<name>` prefix of a workspace-relative path (the whole
/// path when it has none), used to scope call-graph resolution.
fn crate_of(rel: &str) -> String {
    let norm = rel.replace('\\', "/");
    let mut parts = norm.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        _ => norm,
    }
}
