//! Consistency model selection.

use std::time::Duration;

/// The cache-consistency model a GVFS session applies (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyModel {
    /// Forward every RPC unmodified; no proxy caching. Used to measure
    /// the interception overhead and as the baseline proxy mode.
    Passthrough,
    /// Relaxed consistency via invalidation polling (§4.2): proxy
    /// clients serve cached state and poll the proxy server's
    /// invalidation buffers.
    InvalidationPolling {
        /// The polling window (the paper's typical value is 30 s).
        period: Duration,
        /// When set, polling backs off exponentially from `period` up to
        /// this bound while no invalidations arrive, and resets to
        /// `period` when one does.
        backoff_max: Option<Duration>,
    },
    /// Strong consistency via delegation and callback (§4.3).
    DelegationCallback(DelegationConfig),
}

impl ConsistencyModel {
    /// The paper's default relaxed setup: fixed 30-second polling.
    pub fn polling_30s() -> Self {
        ConsistencyModel::InvalidationPolling { period: Duration::from_secs(30), backoff_max: None }
    }

    /// The paper's default strong setup.
    pub fn delegation() -> Self {
        ConsistencyModel::DelegationCallback(DelegationConfig::default())
    }

    /// Whether this model lets the proxy cache serve hits without
    /// per-access revalidation.
    pub fn caches(&self) -> bool {
        !matches!(self, ConsistencyModel::Passthrough)
    }
}

/// Parameters of the delegation/callback model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelegationConfig {
    /// Idle time after which the proxy server speculates that a client
    /// has closed a file (paper example: 10 minutes).
    pub expiration: Duration,
    /// Period after which the proxy client lets a request bypass its
    /// cache to renew the delegation (paper example: 8 minutes; must be
    /// shorter than `expiration`).
    pub renewal: Duration,
    /// Number of dirty blocks above which a recalled write delegation
    /// answers with a block list and writes back asynchronously instead
    /// of flushing inline (paper example: 1k blocks).
    pub partial_writeback_threshold: usize,
    /// Maximum files tracked in the server's open-file table before LRU
    /// entries are proactively called back and evicted.
    pub max_tracked_files: usize,
    /// Renewal lease carried by every delegation: a holder that has not
    /// accessed the file within this period may be revoked server-side
    /// *without a recall round trip*, so a partitioned holder blocks a
    /// conflicting writer for at most one lease period instead of a full
    /// callback timeout. Must be at least as long as `renewal`: the
    /// client stops trusting its delegation `renewal` after its last
    /// forwarded access, so by the time the lease lapses the holder is
    /// no longer serving from it.
    pub lease: Duration,
}

impl Default for DelegationConfig {
    fn default() -> Self {
        DelegationConfig {
            expiration: Duration::from_secs(600),
            renewal: Duration::from_secs(480),
            partial_writeback_threshold: 1024,
            max_tracked_files: 65536,
            lease: Duration::from_secs(540),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(matches!(
            ConsistencyModel::polling_30s(),
            ConsistencyModel::InvalidationPolling { period, backoff_max: None }
                if period == Duration::from_secs(30)
        ));
        assert!(ConsistencyModel::delegation().caches());
        assert!(!ConsistencyModel::Passthrough.caches());
    }

    #[test]
    fn delegation_defaults_match_paper() {
        let d = DelegationConfig::default();
        assert_eq!(d.expiration, Duration::from_secs(600));
        assert_eq!(d.renewal, Duration::from_secs(480));
        assert!(d.renewal < d.expiration);
        assert_eq!(d.partial_writeback_threshold, 1024);
        assert!(d.lease >= d.renewal, "lease-revocation safety needs lease >= renewal");
    }
}
