/root/repo/target/debug/deps/fig4-e962f411e0909ac3.d: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-e962f411e0909ac3.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
