//! Fault-plan shrinking: bisect a violating event list down to a
//! minimal reproducer.
//!
//! Because every run is a pure function of (scenario, event list), the
//! shrinker can simply re-run subsets: first the empty list (a run that
//! fails with *no* injected faults means the bug is in the protocol
//! logic itself, not fault handling — the suppressed-recall self-test
//! reduces to exactly this), then greedy single-event deletions until a
//! fixpoint. The result plus the seed is a complete reproducer.

use crate::chaos::driver::{run_with_events, ChaosReport, ScenarioConfig};
use crate::chaos::plan::FaultEvent;
use std::fmt::Write as _;

/// A minimized reproducer.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimal event subset that still violates.
    pub events: Vec<FaultEvent>,
    /// How many scenario re-runs the shrink took.
    pub runs: usize,
    /// The report of the final (minimal) failing run.
    pub report: ChaosReport,
}

/// Shrinks `events` to a minimal subset on which `cfg` still produces
/// violations. Returns `None` if the full list does not violate (there
/// is nothing to shrink).
pub fn shrink_failure(cfg: &ScenarioConfig, events: &[FaultEvent]) -> Option<Shrunk> {
    let mut runs = 0usize;
    let mut attempt = |subset: &[FaultEvent]| -> Option<ChaosReport> {
        runs += 1;
        let report = run_with_events(cfg, subset);
        if report.violations.is_empty() {
            None
        } else {
            Some(report)
        }
    };

    let mut report = attempt(events)?;
    let mut current = events.to_vec();

    // Fast path: does the failure even need the faults?
    if !current.is_empty() {
        if let Some(r) = attempt(&[]) {
            return Some(Shrunk { events: Vec::new(), runs, report: r });
        }
    }

    // Greedy deletion to a fixpoint: drop any single event whose removal
    // keeps the run failing, then start over.
    loop {
        let mut reduced = false;
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if let Some(r) = attempt(&candidate) {
                current = candidate;
                report = r;
                reduced = true;
                break;
            }
        }
        if !reduced {
            break;
        }
    }
    Some(Shrunk { events: current, runs, report })
}

/// Renders a reproducer block (seed, model, minimal plan, violations)
/// suitable for a CI artifact or a bug report.
pub fn format_reproducer(shrunk: &Shrunk) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos reproducer: seed={} model={} events={}",
        shrunk.report.seed,
        shrunk.report.model.name(),
        shrunk.events.len()
    );
    for ev in &shrunk.events {
        let _ = writeln!(out, "  plan: {ev}");
    }
    for v in &shrunk.report.violations {
        let _ = writeln!(out, "  violation: {v}");
    }
    out
}
