/root/repo/target/release/deps/fig4-27465caec3f62606.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-27465caec3f62606: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
