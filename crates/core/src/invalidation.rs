//! The proxy server's invalidation buffers (§4.2).
//!
//! The server keeps one bounded, logically-timestamped circular queue
//! per client. File modifications append invalidation entries to every
//! *other* client's buffer (the writer observed its own change), with
//! repeated invalidations of the same file coalesced. Clients drain
//! their buffer with `GETINV`; the server detects first contact, client
//! restart and wrap-around and answers with a `force-invalidate` flag in
//! those cases.

use crate::protocol::{GetinvRes, MAX_INVALIDATIONS_PER_REPLY};
use gvfs_nfs3::Fh3;
use std::collections::{HashMap, HashSet, VecDeque};

#[derive(Debug, Clone)]
struct ClientBuffer {
    entries: VecDeque<(u64, Fh3)>,
    members: HashSet<Fh3>,
    /// Timestamps at or below this value may have been discarded
    /// (buffer creation point or wrap-around).
    floor: u64,
}

/// One client's buffer as reported by [`InvalidationTracker::snapshot`]:
/// `(client, floor, queued (timestamp, handle) entries)`.
pub type BufferSnapshot = (u32, u64, Vec<(u64, Fh3)>);

/// Manages per-client invalidation buffers and the server's logical
/// clock.
///
/// # Examples
///
/// ```
/// use gvfs_core::invalidation::InvalidationTracker;
/// use gvfs_nfs3::Fh3;
///
/// let mut tracker = InvalidationTracker::new(128);
/// let boot = tracker.getinv(1, None); // bootstrap
/// assert!(boot.force_invalidate);
/// tracker.record_modification(Fh3::from_fileid(9), 2); // client 2 wrote
/// let res = tracker.getinv(1, Some(boot.timestamp));
/// assert_eq!(res.handles, vec![Fh3::from_fileid(9)]);
/// ```
#[derive(Debug, Clone)]
pub struct InvalidationTracker {
    buffers: HashMap<u32, ClientBuffer>,
    capacity: usize,
    clock: u64,
}

impl InvalidationTracker {
    /// Creates a tracker whose per-client buffers hold at most
    /// `capacity` entries before wrapping.
    pub fn new(capacity: usize) -> Self {
        InvalidationTracker { buffers: HashMap::new(), capacity: capacity.max(1), clock: 0 }
    }

    /// The current logical timestamp.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Records a file modification observed from `writer`: every other
    /// registered client gets an invalidation entry (coalesced per
    /// file).
    pub fn record_modification(&mut self, fh: Fh3, writer: u32) {
        self.clock += 1;
        let ts = self.clock;
        for (&client, buf) in &mut self.buffers {
            if client == writer {
                continue;
            }
            if buf.members.contains(&fh) {
                continue; // coalesced with a pending entry
            }
            buf.entries.push_back((ts, fh));
            buf.members.insert(fh);
            if buf.entries.len() > self.capacity {
                // Wrap-around: discard the oldest and remember how far
                // back the buffer is still complete.
                if let Some((lost_ts, lost_fh)) = buf.entries.pop_front() {
                    buf.members.remove(&lost_fh);
                    buf.floor = buf.floor.max(lost_ts);
                }
            }
        }
    }

    /// Processes one `GETINV` call (§4.2.1, server side).
    pub fn getinv(&mut self, client: u32, last_timestamp: Option<u64>) -> GetinvRes {
        let clock = self.clock;
        let capacity = self.capacity;
        // Rule 1 (§4.2.1): the first GETINV from a client — including
        // the first after a server restart lost all buffers — always
        // bootstraps with a force-invalidation.
        let first_contact = !self.buffers.contains_key(&client);
        let buf = self.buffers.entry(client).or_insert_with(|| ClientBuffer {
            entries: VecDeque::with_capacity(capacity),
            members: HashSet::new(),
            floor: clock,
        });
        let force = first_contact
            || match last_timestamp {
                // Client lost its timestamp: bootstrap.
                None => true,
                // Rule 2: the buffer has wrapped past what the client
                // has seen.
                Some(ts) if ts < buf.floor => true,
                Some(_) => false,
            };
        if force {
            buf.entries.clear();
            buf.members.clear();
            buf.floor = self.clock;
            return GetinvRes {
                timestamp: self.clock,
                force_invalidate: true,
                poll_again: false,
                handles: Vec::new(),
            };
        }
        if buf.entries.len() > MAX_INVALIDATIONS_PER_REPLY {
            // Partial drain: return the oldest slice and have the client
            // poll again immediately.
            let mut handles = Vec::with_capacity(MAX_INVALIDATIONS_PER_REPLY);
            let mut last_ts = self.clock;
            for _ in 0..MAX_INVALIDATIONS_PER_REPLY {
                let (ts, fh) = buf.entries.pop_front().expect("len checked");
                buf.members.remove(&fh);
                last_ts = ts;
                handles.push(fh);
            }
            buf.floor = last_ts;
            GetinvRes { timestamp: last_ts, force_invalidate: false, poll_again: true, handles }
        } else {
            let handles: Vec<Fh3> = buf.entries.drain(..).map(|(_, fh)| fh).collect();
            buf.members.clear();
            buf.floor = self.clock;
            GetinvRes { timestamp: self.clock, force_invalidate: false, poll_again: false, handles }
        }
    }

    /// Number of registered client buffers.
    pub fn client_count(&self) -> usize {
        self.buffers.len()
    }

    /// Entries pending for one client (diagnostics).
    pub fn pending(&self, client: u32) -> usize {
        self.buffers.get(&client).map_or(0, |b| b.entries.len())
    }

    /// A canonical dump of every client buffer, sorted by client id:
    /// `(client, floor, queued (timestamp, handle) entries)`. Used by
    /// diagnostics and the protocol model checker.
    pub fn snapshot(&self) -> Vec<BufferSnapshot> {
        let mut out: Vec<BufferSnapshot> = self
            .buffers
            .iter()
            .map(|(&c, b)| (c, b.floor, b.entries.iter().copied().collect()))
            .collect();
        out.sort_unstable_by_key(|&(c, _, _)| c);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh(n: u64) -> Fh3 {
        Fh3::from_fileid(n)
    }

    #[test]
    fn bootstrap_forces_invalidation() {
        let mut t = InvalidationTracker::new(8);
        let res = t.getinv(1, None);
        assert!(res.force_invalidate);
        assert!(res.handles.is_empty());
        // Second poll with the returned timestamp is clean.
        let res2 = t.getinv(1, Some(res.timestamp));
        assert!(!res2.force_invalidate);
        assert!(res2.handles.is_empty());
    }

    #[test]
    fn modifications_flow_to_other_clients_only() {
        let mut t = InvalidationTracker::new(8);
        let a = t.getinv(1, None);
        let b = t.getinv(2, None);
        t.record_modification(fh(7), 1);
        let to_writer = t.getinv(1, Some(a.timestamp));
        assert!(to_writer.handles.is_empty(), "writer does not self-invalidate");
        let to_other = t.getinv(2, Some(b.timestamp));
        assert_eq!(to_other.handles, vec![fh(7)]);
    }

    #[test]
    fn repeated_modifications_coalesce() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        for _ in 0..5 {
            t.record_modification(fh(7), 2);
        }
        t.record_modification(fh(8), 2);
        let res = t.getinv(1, Some(boot.timestamp));
        assert_eq!(res.handles, vec![fh(7), fh(8)]);
    }

    #[test]
    fn buffer_is_cleared_after_drain() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        let first = t.getinv(1, Some(boot.timestamp));
        assert_eq!(first.handles.len(), 1);
        let second = t.getinv(1, Some(first.timestamp));
        assert!(second.handles.is_empty());
    }

    #[test]
    fn wrap_around_forces_full_invalidation() {
        let mut t = InvalidationTracker::new(4);
        let boot = t.getinv(1, None);
        for i in 0..10 {
            t.record_modification(fh(100 + i), 2); // distinct files
        }
        // Entries were dropped; the client's timestamp predates the floor.
        let res = t.getinv(1, Some(boot.timestamp));
        assert!(res.force_invalidate);
        assert!(res.handles.is_empty());
        // After the force, polling resumes normally.
        t.record_modification(fh(55), 2);
        let next = t.getinv(1, Some(res.timestamp));
        assert!(!next.force_invalidate);
        assert_eq!(next.handles, vec![fh(55)]);
    }

    #[test]
    fn overflow_with_fresh_timestamp_still_delivers_remainder() {
        let mut t = InvalidationTracker::new(4);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        let mid = t.getinv(1, Some(boot.timestamp));
        assert_eq!(mid.handles.len(), 1);
        // Fewer than capacity new entries: no wrap, normal delivery.
        for i in 0..3 {
            t.record_modification(fh(10 + i), 2);
        }
        let res = t.getinv(1, Some(mid.timestamp));
        assert!(!res.force_invalidate);
        assert_eq!(res.handles.len(), 3);
    }

    #[test]
    fn poll_again_paginates_large_backlogs() {
        let mut t = InvalidationTracker::new(10_000);
        let boot = t.getinv(1, None);
        let total = MAX_INVALIDATIONS_PER_REPLY + 50;
        for i in 0..total {
            t.record_modification(fh(1000 + i as u64), 2);
        }
        let first = t.getinv(1, Some(boot.timestamp));
        assert!(first.poll_again);
        assert_eq!(first.handles.len(), MAX_INVALIDATIONS_PER_REPLY);
        let second = t.getinv(1, Some(first.timestamp));
        assert!(!second.poll_again);
        assert_eq!(second.handles.len(), 50);
        assert!(!second.force_invalidate);
    }

    #[test]
    fn server_restart_bootstrap() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        // Server "restarts": new tracker, no buffers.
        let mut t2 = InvalidationTracker::new(8);
        let res = t2.getinv(1, Some(boot.timestamp));
        assert!(res.force_invalidate, "unknown client after restart is re-bootstrapped");
    }

    #[test]
    fn client_crash_null_timestamp_rebootstraps() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        assert_eq!(t.pending(1), 1);
        // Client crashed, lost its timestamp, polls with null.
        let res = t.getinv(1, None);
        assert!(res.force_invalidate);
        assert_eq!(t.pending(1), 0, "buffer reset on bootstrap");
        let _ = boot;
    }

    #[test]
    fn timestamps_increase_monotonically() {
        let mut t = InvalidationTracker::new(8);
        t.getinv(1, None);
        let mut last = 0;
        for i in 0..20 {
            t.record_modification(fh(i), 2);
            assert!(t.now() > last);
            last = t.now();
        }
    }
}
