/root/repo/target/debug/deps/gvfs_integration-8e2c404c940e35d0.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/gvfs_integration-8e2c404c940e35d0: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
