/root/repo/target/release/deps/gvfs_nfs3-ba7cd2e7a183ec75.d: crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs

/root/repo/target/release/deps/libgvfs_nfs3-ba7cd2e7a183ec75.rlib: crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs

/root/repo/target/release/deps/libgvfs_nfs3-ba7cd2e7a183ec75.rmeta: crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs

crates/nfs3/src/lib.rs:
crates/nfs3/src/mount.rs:
crates/nfs3/src/procs.rs:
crates/nfs3/src/status.rs:
crates/nfs3/src/types.rs:
