/root/repo/target/debug/deps/consistency_matrix-56925a9456584682.d: /root/repo/clippy.toml crates/integration/../../tests/consistency_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libconsistency_matrix-56925a9456584682.rmeta: /root/repo/clippy.toml crates/integration/../../tests/consistency_matrix.rs Cargo.toml

/root/repo/clippy.toml:
crates/integration/../../tests/consistency_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
