/root/repo/target/release/deps/ablations-b340b6c79861208c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-b340b6c79861208c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
