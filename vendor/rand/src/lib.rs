//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset GVFS workloads use: a seedable deterministic
//! generator ([`rngs::StdRng`]), [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic across platforms,
//! which the benchmark drivers rely on for reproducible workloads.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every draw is valid.
                    return rng.next_u64() as $ty;
                }
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(draw) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// `StdRng`; the exact stream differs from upstream, which is fine
    /// for workload generation).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5i64..=6);
            assert!((5..=6).contains(&w));
        }
    }

    #[test]
    fn distribution_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(rng.gen_range(0u32..10));
        }
        assert_eq!(seen.len(), 10, "all buckets hit");
    }
}
