/root/repo/target/debug/deps/gvfs_server-8cea427a005ac48e.d: crates/server/src/lib.rs

/root/repo/target/debug/deps/libgvfs_server-8cea427a005ac48e.rlib: crates/server/src/lib.rs

/root/repo/target/debug/deps/libgvfs_server-8cea427a005ac48e.rmeta: crates/server/src/lib.rs

crates/server/src/lib.rs:
