//! The conservative virtual-time scheduler.
//!
//! Actors are OS threads; at most one executes at a time, and the one
//! allowed to run is always the one with the minimum local virtual clock
//! (ties broken by actor id, i.e. spawn order). This makes every
//! simulation fully deterministic while letting protocol code be written
//! in ordinary blocking style.

use crate::time::SimTime;

use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Duration;

type ActorId = u64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    /// Waiting for virtual time to reach `wake_at`; unparks are banked.
    Sleeping,
    /// Waiting for an unpark (optionally with a timeout).
    Parked,
}

#[derive(Debug)]
struct Block {
    kind: BlockKind,
    /// `None` means "until unparked".
    wake_at: Option<SimTime>,
    unparked: bool,
}

#[derive(Debug)]
struct ActorRec {
    name: String,
    block: Option<Block>,
    /// A banked unpark delivered while the actor was running or sleeping.
    permit: bool,
}

#[derive(Debug, Default)]
struct State {
    time: SimTime,
    running: Option<ActorId>,
    actors: HashMap<ActorId, ActorRec>,
    live: usize,
    next_id: ActorId,
    failed: Option<String>,
    started: bool,
    /// Pending wake-ups `(wake_at, actor)`, lazily invalidated: an entry
    /// is honored only while the actor's *current* block still wakes at
    /// exactly that time; anything else (finished actor, consumed
    /// block, rescheduled wake) is discarded on pop. Keeps picking the
    /// next actor O(log n) instead of a linear scan over all actors —
    /// the scheduling hot path once simulations carry thousands of
    /// actors.
    ready: BinaryHeap<Reverse<(SimTime, ActorId)>>,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

impl Scheduler {
    fn new() -> Arc<Self> {
        Arc::new(Scheduler { state: Mutex::new(State::default()), cv: Condvar::new() })
    }

    /// Picks the next actor to run. Must be called with `running == None`.
    ///
    /// Pops the minimum `(wake_at, actor)` entry — ties therefore still
    /// resolve by actor id, i.e. spawn order, exactly as the previous
    /// full scan did — skipping entries the lazy invalidation scheme
    /// has made stale.
    fn schedule_next(st: &mut State) {
        debug_assert!(st.running.is_none());
        while let Some(&Reverse((wake, id))) = st.ready.peek() {
            let current_wake =
                st.actors.get(&id).and_then(|rec| rec.block.as_ref()).and_then(|b| b.wake_at);
            st.ready.pop();
            if current_wake != Some(wake) {
                continue; // stale: finished, already woken, or re-timed
            }
            debug_assert!(wake >= st.time, "virtual time went backwards");
            st.time = st.time.max(wake);
            st.running = Some(id);
            return;
        }
        if st.live > 0 && st.failed.is_none() {
            let stuck: Vec<&str> = st.actors.values().map(|r| r.name.as_str()).collect();
            st.failed = Some(format!(
                "virtual-time deadlock at {}: all live actors parked: {stuck:?}",
                st.time
            ));
        }
    }

    /// Blocks the calling actor and waits to be rescheduled.
    /// Returns whether it was unparked (vs. woken by time).
    fn block_and_wait(&self, id: ActorId, kind: BlockKind, wake_at: Option<SimTime>) -> bool {
        let mut st = self.state.lock();
        debug_assert_eq!(st.running, Some(id), "only the running actor may block");
        {
            let rec = st.actors.get_mut(&id).expect("actor record");
            rec.block = Some(Block { kind, wake_at, unparked: false });
        }
        if let Some(wake) = wake_at {
            st.ready.push(Reverse((wake, id)));
        }
        st.running = None;
        Self::schedule_next(&mut st);
        self.cv.notify_all();
        loop {
            if let Some(msg) = st.failed.clone() {
                drop(st);
                panic!("{msg}");
            }
            if st.running == Some(id) {
                break;
            }
            self.cv.wait(&mut st);
        }
        let rec = st.actors.get_mut(&id).expect("actor record");
        rec.block.take().map(|b| b.unparked).unwrap_or(false)
    }

    fn spawn_inner(
        self: &Arc<Self>,
        name: &str,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> ActorHandle {
        let id;
        {
            let mut st = self.state.lock();
            if st.failed.is_some() {
                panic!("cannot spawn into a failed simulation");
            }
            id = st.next_id;
            st.next_id += 1;
            let birth = st.time;
            st.actors.insert(
                id,
                ActorRec {
                    name: name.to_string(),
                    block: Some(Block {
                        kind: BlockKind::Sleeping,
                        wake_at: Some(birth),
                        unparked: false,
                    }),
                    permit: false,
                },
            );
            st.ready.push(Reverse((birth, id)));
            st.live += 1;
        }
        let sched = Arc::clone(self);
        let tname = name.to_string();
        std::thread::Builder::new()
            .name(tname.clone())
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some(Ctx { sched: Arc::clone(&sched), id }));
                // Wait to be scheduled for the first time.
                {
                    let mut st = sched.state.lock();
                    loop {
                        if let Some(msg) = st.failed.clone() {
                            drop(st);
                            // Simulation already failed; just deregister.
                            sched.finish_actor(id, Some(msg));
                            return;
                        }
                        if st.running == Some(id) {
                            let rec = st.actors.get_mut(&id).expect("actor record");
                            rec.block = None;
                            break;
                        }
                        sched.cv.wait(&mut st);
                    }
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                let failure = result.err().map(|e| {
                    let detail = e
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    format!("actor '{tname}' panicked: {detail}")
                });
                sched.finish_actor(id, failure);
            })
            .expect("failed to spawn actor thread");
        ActorHandle { sched: Arc::clone(self), id }
    }

    fn finish_actor(&self, id: ActorId, failure: Option<String>) {
        let mut st = self.state.lock();
        if st.actors.remove(&id).is_some() {
            st.live -= 1;
        }
        if let Some(msg) = failure {
            if st.failed.is_none() {
                st.failed = Some(msg);
            }
        }
        if st.running == Some(id) {
            st.running = None;
            if st.failed.is_none() {
                Self::schedule_next(&mut st);
            }
        }
        self.cv.notify_all();
    }
}

struct Ctx {
    sched: Arc<Scheduler>,
    id: ActorId,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let ctx = borrow.as_ref().expect("this operation must run inside a simulation actor");
        f(ctx)
    })
}

/// Whether the calling thread is a simulation actor, i.e. whether
/// [`now`]/[`sleep`]/[`park`] may be called without panicking. Lets code
/// shared between actors and ordinary threads (tests, setup) charge
/// virtual-time costs only when there is a clock to charge.
pub fn in_actor() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// The calling actor's current virtual time.
///
/// # Panics
///
/// Panics when called from a thread that is not a simulation actor.
pub fn now() -> SimTime {
    with_ctx(|ctx| ctx.sched.state.lock().time)
}

/// Advances the calling actor's clock by `d`, yielding to any actor whose
/// clock is earlier. Unparks received while sleeping are banked as a
/// permit for the next [`park`].
///
/// # Panics
///
/// Panics outside an actor, or if the simulation has failed.
pub fn sleep(d: Duration) {
    with_ctx(|ctx| {
        let wake = {
            let st = ctx.sched.state.lock();
            st.time + d
        };
        ctx.sched.block_and_wait(ctx.id, BlockKind::Sleeping, Some(wake));
    });
}

/// Advances the calling actor's clock to `t` (no-op if `t` is in the past).
///
/// # Panics
///
/// Panics outside an actor, or if the simulation has failed.
pub fn advance_to(t: SimTime) {
    with_ctx(|ctx| {
        let wake = {
            let st = ctx.sched.state.lock();
            if t <= st.time {
                return;
            }
            t
        };
        ctx.sched.block_and_wait(ctx.id, BlockKind::Sleeping, Some(wake));
    });
}

/// Parks the calling actor until some other actor unparks it.
///
/// If an unpark permit is already banked, consumes it and returns
/// immediately without yielding.
///
/// # Panics
///
/// Panics outside an actor. A simulation in which every live actor is
/// parked is reported as a deadlock and fails.
pub fn park() {
    with_ctx(|ctx| {
        {
            let mut st = ctx.sched.state.lock();
            let rec = st.actors.get_mut(&ctx.id).expect("actor record");
            if rec.permit {
                rec.permit = false;
                return;
            }
        }
        ctx.sched.block_and_wait(ctx.id, BlockKind::Parked, None);
    });
}

/// Parks the calling actor until unparked or until `d` of virtual time
/// elapses. Returns `true` if it was unparked, `false` on timeout.
///
/// # Panics
///
/// Panics outside an actor.
pub fn park_timeout(d: Duration) -> bool {
    with_ctx(|ctx| {
        let wake = {
            let mut st = ctx.sched.state.lock();
            let rec = st.actors.get_mut(&ctx.id).expect("actor record");
            if rec.permit {
                rec.permit = false;
                return true;
            }
            st.time + d
        };
        ctx.sched.block_and_wait(ctx.id, BlockKind::Parked, Some(wake))
    })
}

/// Returns a handle to the calling actor (for handing to peers that will
/// unpark it).
///
/// # Panics
///
/// Panics outside an actor.
pub fn current_actor() -> ActorHandle {
    with_ctx(|ctx| ActorHandle { sched: Arc::clone(&ctx.sched), id: ctx.id })
}

/// A handle to a spawned actor.
#[derive(Clone)]
pub struct ActorHandle {
    sched: Arc<Scheduler>,
    id: ActorId,
}

impl std::fmt::Debug for ActorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorHandle").field("id", &self.id).finish()
    }
}

impl ActorHandle {
    /// Wakes the actor if it is parked; otherwise banks a permit that the
    /// actor's next [`park`] will consume. Unparking a finished actor is
    /// a no-op.
    pub fn unpark(&self) {
        let mut st = self.sched.state.lock();
        let time = st.time;
        let Some(rec) = st.actors.get_mut(&self.id) else { return };
        let mut woke_at = None;
        match rec.block.as_mut() {
            Some(b) if b.kind == BlockKind::Parked => {
                b.unparked = true;
                let wake = match b.wake_at {
                    Some(t) if t <= time => t,
                    _ => time,
                };
                b.wake_at = Some(wake);
                woke_at = Some(wake);
            }
            _ => rec.permit = true,
        }
        if let Some(wake) = woke_at {
            st.ready.push(Reverse((wake, self.id)));
        }
        // The unparker keeps running; the scheduler will consider the
        // woken actor at the unparker's next yield.
    }
}

/// A virtual-time simulation: spawn actors, then [`Sim::run`] to completion.
///
/// See the [crate docs](crate) for an example.
pub struct Sim {
    sched: Arc<Scheduler>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.sched.state.lock();
        f.debug_struct("Sim").field("time", &st.time).field("live_actors", &st.live).finish()
    }
}

impl Drop for Sim {
    /// Dropping a simulation that was never [run](Sim::run) releases any
    /// spawned actor threads (they observe the failure and exit) instead
    /// of leaving them blocked forever.
    fn drop(&mut self) {
        let mut st = self.sched.state.lock();
        if !st.started && st.live > 0 && st.failed.is_none() {
            st.failed = Some("simulation dropped without running".to_string());
            self.sched.cv.notify_all();
        }
    }
}

impl Sim {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Sim { sched: Scheduler::new() }
    }

    /// Spawns an actor. Actors spawned before [`Sim::run`] start at time
    /// zero; actors spawned by other actors start at their parent's
    /// current time.
    ///
    /// The closure runs on its own OS thread but only ever executes while
    /// it holds the virtual-time token.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, name: &str, f: F) -> ActorHandle {
        self.sched.spawn_inner(name, Box::new(f))
    }

    /// Runs the simulation until every actor has finished, returning the
    /// final virtual time.
    ///
    /// # Panics
    ///
    /// Panics if any actor panicked or if the simulation deadlocked
    /// (every live actor parked with no pending wake).
    pub fn run(self) -> SimTime {
        let mut st = self.sched.state.lock();
        assert!(!st.started, "run may only be called once");
        st.started = true;
        if st.running.is_none() {
            Scheduler::schedule_next(&mut st);
        }
        self.sched.cv.notify_all();
        loop {
            if let Some(msg) = st.failed.clone() {
                // Let stuck actor threads observe the failure and exit.
                self.sched.cv.notify_all();
                drop(st);
                panic!("{msg}");
            }
            if st.live == 0 {
                return st.time;
            }
            self.sched.cv.wait(&mut st);
        }
    }
}

/// Spawns an actor from within another actor, on the same scheduler.
///
/// Equivalent to [`Sim::spawn`] but callable where the [`Sim`] handle is
/// not available; the child starts at the parent's current virtual time.
///
/// # Panics
///
/// Panics when called from a thread that is not a simulation actor.
pub fn spawn_from_actor<F: FnOnce() + Send + 'static>(name: &str, f: F) -> ActorHandle {
    with_ctx(|ctx| ctx.sched.spawn_inner(name, Box::new(f)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;

    #[test]
    fn single_actor_advances_time() {
        let sim = Sim::new();
        sim.spawn("a", || {
            assert_eq!(now(), SimTime::ZERO);
            sleep(Duration::from_secs(3));
            assert_eq!(now(), SimTime::from_secs(3));
        });
        assert_eq!(sim.run(), SimTime::from_secs(3));
    }

    #[test]
    fn actors_interleave_by_virtual_time() {
        let sim = Sim::new();
        let log = Arc::new(PMutex::new(Vec::new()));
        for (name, step_ms) in [("a", 30u64), ("b", 20)] {
            let log = log.clone();
            sim.spawn(name, move || {
                for _ in 0..3 {
                    sleep(Duration::from_millis(step_ms));
                    log.lock().push((name, now().as_nanos() / 1_000_000));
                }
            });
        }
        sim.run();
        let log = log.lock();
        assert_eq!(*log, vec![("b", 20), ("a", 30), ("b", 40), ("a", 60), ("b", 60), ("a", 90)]);
    }

    #[test]
    fn ties_resolve_by_spawn_order() {
        let sim = Sim::new();
        let log = Arc::new(PMutex::new(Vec::new()));
        for name in ["first", "second"] {
            let log = log.clone();
            sim.spawn(name, move || {
                sleep(Duration::from_millis(5));
                log.lock().push(name);
            });
        }
        sim.run();
        assert_eq!(*log.lock(), vec!["first", "second"]);
    }

    #[test]
    fn park_and_unpark() {
        let sim = Sim::new();
        let result = Arc::new(PMutex::new(None));
        let r2 = result.clone();
        let waiter = sim.spawn("waiter", move || {
            park();
            *r2.lock() = Some(now());
        });
        sim.spawn("waker", move || {
            sleep(Duration::from_secs(1));
            waiter.unpark();
        });
        sim.run();
        assert_eq!(result.lock().unwrap(), SimTime::from_secs(1));
    }

    #[test]
    fn unpark_before_park_is_banked() {
        let sim = Sim::new();
        let sim2 = &sim;
        let handle = Arc::new(PMutex::new(None::<ActorHandle>));
        let h2 = handle.clone();
        let done = Arc::new(PMutex::new(false));
        let d2 = done.clone();
        let target = sim2.spawn("target", move || {
            sleep(Duration::from_secs(2)); // unpark arrives during this sleep
            park(); // consumes the banked permit, returns immediately
            *d2.lock() = true;
            assert_eq!(now(), SimTime::from_secs(2));
        });
        *handle.lock() = Some(target);
        let h3 = handle.clone();
        sim.spawn("poker", move || {
            sleep(Duration::from_secs(1));
            h3.lock().as_ref().unwrap().unpark();
        });
        sim.run();
        assert!(*done.lock());
        let _ = h2;
    }

    #[test]
    fn park_timeout_times_out() {
        let sim = Sim::new();
        let out = Arc::new(PMutex::new(None));
        let o = out.clone();
        sim.spawn("a", move || {
            let unparked = park_timeout(Duration::from_millis(100));
            *o.lock() = Some((unparked, now()));
        });
        sim.run();
        assert_eq!(out.lock().unwrap(), (false, SimTime::from_millis(100)));
    }

    #[test]
    fn park_timeout_unparked_early() {
        let sim = Sim::new();
        let out = Arc::new(PMutex::new(None));
        let o = out.clone();
        let waiter = sim.spawn("waiter", move || {
            let unparked = park_timeout(Duration::from_secs(60));
            *o.lock() = Some((unparked, now()));
        });
        sim.spawn("waker", move || {
            sleep(Duration::from_millis(250));
            waiter.unpark();
        });
        sim.run();
        assert_eq!(out.lock().unwrap(), (true, SimTime::from_millis(250)));
    }

    #[test]
    fn nested_spawn_starts_at_parent_time() {
        let sim = Sim::new();
        let out = Arc::new(PMutex::new(None));
        let o = out.clone();
        sim.spawn("parent", move || {
            sleep(Duration::from_secs(5));
            current_actor(); // smoke-test handle acquisition
            spawn_from_actor("child", move || {
                *o.lock() = Some(now());
            });
        });
        sim.run();
        assert_eq!(out.lock().unwrap(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn all_parked_is_deadlock() {
        let sim = Sim::new();
        sim.spawn("stuck", park);
        sim.run();
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn actor_panic_propagates() {
        let sim = Sim::new();
        sim.spawn("bad", || panic!("boom"));
        sim.spawn("good", || sleep(Duration::from_secs(1)));
        sim.run();
    }

    #[test]
    fn advance_to_past_is_noop() {
        let sim = Sim::new();
        sim.spawn("a", || {
            sleep(Duration::from_secs(1));
            advance_to(SimTime::ZERO);
            assert_eq!(now(), SimTime::from_secs(1));
            advance_to(SimTime::from_secs(2));
            assert_eq!(now(), SimTime::from_secs(2));
        });
        sim.run();
    }

    #[test]
    fn run_returns_zero_with_no_actors() {
        assert_eq!(Sim::new().run(), SimTime::ZERO);
    }

    #[test]
    fn dropping_an_unrun_sim_releases_its_actors() {
        let spawned = Arc::new(PMutex::new(false));
        {
            let sim = Sim::new();
            let s = spawned.clone();
            sim.spawn("never-scheduled", move || {
                *s.lock() = true; // must never execute
            });
            // sim dropped here without run()
        }
        // Give the actor thread a moment to observe the failure and exit;
        // the test process would hang at exit otherwise.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!*spawned.lock(), "the actor body never ran");
    }
}
