/root/repo/target/release/examples/failure_recovery-1c663f65da275bc6.d: crates/bench/../../examples/failure_recovery.rs

/root/repo/target/release/examples/failure_recovery-1c663f65da275bc6: crates/bench/../../examples/failure_recovery.rs

crates/bench/../../examples/failure_recovery.rs:
