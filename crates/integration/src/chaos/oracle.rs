//! Per-model consistency oracles over a recorded chaos history.
//!
//! The oracles only use *observable* facts — acknowledged writes, read
//! observations, crash markers, and the fault-event list — and judge
//! them against what each model promises:
//!
//! - **validity**: every read returns the initial content or the intact
//!   content of an acknowledged write (a torn mix or a never-dispatched
//!   value is always a violation);
//! - **read-your-writes**: a client never reads something older than its
//!   own last acknowledged write;
//! - **freshness**: a read may lag the newest acknowledged write by at
//!   most the model's staleness base, stretched by the fault windows
//!   overlapping the interval (a partitioned poller polls late; a
//!   crashed server answers late);
//! - **final state**: after shutdown flushes, the exported filesystem
//!   holds the last acknowledged write;
//! - **write exclusion**: the delegation table never shows two
//!   concurrent holders with a writer among them.
//!
//! Under delegation, a writer that was partitioned, dropped, or crashed
//! may *legitimately* lose acknowledged-but-unflushed data: an
//! unreachable recall is revoked with nothing recovered (§4.3.4). Those
//! writers are excluded from the strict checks; everything else stays
//! strict — which is exactly how the suppressed-recall breakage knob is
//! caught on a fault-free run.

use crate::chaos::driver::{ModelKind, DELEG_RENEWAL, MAX_STALENESS};
use crate::chaos::history::{Event, Observation};
use crate::chaos::plan::FaultEvent;
use gvfs_netsim::SimTime;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// The invariant class a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A read returned a torn mix of writes.
    TornRead,
    /// A read returned data that was never acknowledged into the system.
    InvalidValue,
    /// A read lagged an acknowledged write beyond the model's bound.
    StaleRead,
    /// A client read something older than its own acknowledged write.
    ReadYourWrites,
    /// The final filesystem state disagrees with the acknowledged
    /// history.
    FinalState,
    /// The delegation table showed concurrent holders with a writer.
    Exclusion,
}

/// One oracle rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated invariant.
    pub kind: ViolationKind,
    /// Human-readable specifics (file, tags, virtual times).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// An acknowledged write, in per-file acknowledgement order.
#[derive(Debug, Clone, Copy)]
struct AckedWrite {
    client: usize,
    tag: u64,
    started: SimTime,
    finished: SimTime,
}

fn secs(t: SimTime) -> f64 {
    t.as_secs_f64()
}

/// Sum of fault-window interference over `[from, to]`: each partition,
/// drop, or crash window overlapping the interval stretches the
/// staleness bound by twice its overlap (retry back-off can roughly
/// double a wait) plus a fixed re-sync allowance.
fn disturbed(from: SimTime, to: SimTime, events: &[FaultEvent]) -> Duration {
    if to <= from {
        return Duration::ZERO;
    }
    const RECOVERY_SLACK_MS: u64 = 10_000;
    let a = from.saturating_since(SimTime::ZERO);
    let b = to.saturating_since(SimTime::ZERO);
    let mut total = Duration::ZERO;
    for ev in events {
        let (start_ms, end_ms) = match *ev {
            FaultEvent::Partition { at_ms, dur_ms, .. }
            | FaultEvent::Drop { at_ms, dur_ms, .. } => (at_ms, at_ms + dur_ms),
            FaultEvent::ServerCrash { at_ms, down_ms } => {
                (at_ms, at_ms + down_ms + RECOVERY_SLACK_MS)
            }
            FaultEvent::ClientCrash { at_ms, down_ms, .. } => {
                (at_ms, at_ms + down_ms + RECOVERY_SLACK_MS)
            }
            // Jitter is micro-scale and duplicates are idempotent;
            // neither delays visibility.
            FaultEvent::Duplicate { .. } | FaultEvent::Jitter { .. } => continue,
        };
        let start = Duration::from_millis(start_ms);
        let end = Duration::from_millis(end_ms);
        let lo = start.max(a);
        let hi = end.min(b);
        if hi > lo {
            total += (hi - lo) * 2 + Duration::from_secs(10);
        }
    }
    total
}

/// Degraded-mode freshness cap (delegation only). While a client's WAN
/// link is partitioned or lossy its breaker opens and the degradation
/// ladder takes over: cached reads are served only while the cache was
/// validated against the server within [`MAX_STALENESS`], and a holder
/// may have served without revalidation for up to [`DELEG_RENEWAL`]
/// before that. So even though [`disturbed`] stretches the bound with
/// the fault window, a read *started inside the reading client's own
/// partition/drop window* must never lag an acknowledged write by more
/// than `base + DELEG_RENEWAL + MAX_STALENESS` — the ladder promises
/// bounded staleness, and this rule is what holds it to that promise
/// (without it, a long window would excuse arbitrarily stale degraded
/// serving).
fn degraded_cap(
    model: ModelKind,
    client: usize,
    started: SimTime,
    events: &[FaultEvent],
) -> Option<Duration> {
    if !matches!(model, ModelKind::Delegation) {
        return None;
    }
    let at = started.saturating_since(SimTime::ZERO);
    let in_own_window = events.iter().any(|ev| match *ev {
        FaultEvent::Partition { client: c, at_ms, dur_ms }
        | FaultEvent::Drop { client: c, at_ms, dur_ms, .. } => {
            c == client
                && at >= Duration::from_millis(at_ms)
                && at < Duration::from_millis(at_ms + dur_ms)
        }
        _ => false,
    });
    in_own_window.then(|| ModelKind::Delegation.staleness_base() + DELEG_RENEWAL + MAX_STALENESS)
}

/// Clients whose acknowledged writes the delegation oracles must not
/// trust: a crashed client discards its dirty data on restart, and a
/// partitioned or lossy client can be revoked while unreachable, losing
/// its unflushed writes by design.
fn untrusted_writers(model: ModelKind, events: &[FaultEvent]) -> HashSet<usize> {
    let mut set = HashSet::new();
    if !matches!(model, ModelKind::Delegation) {
        return set;
    }
    for ev in events {
        match *ev {
            FaultEvent::Partition { client, .. }
            | FaultEvent::Drop { client, .. }
            | FaultEvent::ClientCrash { client, .. } => {
                set.insert(client);
            }
            FaultEvent::Duplicate { .. }
            | FaultEvent::Jitter { .. }
            | FaultEvent::ServerCrash { .. } => {}
        }
    }
    set
}

/// Runs every oracle over one recorded run. `final_tags[f]` is the
/// out-of-band content of file `f` after shutdown.
pub fn check(
    model: ModelKind,
    events: &[FaultEvent],
    history: &[Event],
    final_tags: &[Observation],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let files = final_tags.len();

    // Per-file acknowledged writes in acknowledgement order; the rank of
    // a write is its index (the initial content ranks below everything).
    let mut acked: Vec<Vec<AckedWrite>> = vec![Vec::new(); files];
    for ev in history {
        if let Event::WriteAcked { client, file, tag, started, finished } = *ev {
            acked[file].push(AckedWrite { client, tag, started, finished });
        }
    }
    for writes in &mut acked {
        writes.sort_by_key(|w| (w.finished, w.tag));
    }
    let ranks: Vec<HashMap<u64, usize>> = acked
        .iter()
        .map(|writes| writes.iter().enumerate().map(|(i, w)| (w.tag, i)).collect())
        .collect();
    let rank_of = |file: usize, obs: Observation| -> Option<i64> {
        match obs {
            Observation::Initial => Some(-1),
            Observation::Tag(tag) => ranks[file].get(&tag).map(|&r| r as i64),
            Observation::Torn => None,
        }
    };

    let untrusted = untrusted_writers(model, events);
    let base = model.staleness_base();

    for ev in history {
        match *ev {
            Event::Read { client, file, observed, started, finished } => {
                let observed_rank = match observed {
                    Observation::Torn => {
                        violations.push(Violation {
                            kind: ViolationKind::TornRead,
                            detail: format!(
                                "client {client} read a torn mix of writes from file {file} at {:.3}s",
                                secs(finished)
                            ),
                        });
                        continue;
                    }
                    Observation::Tag(tag) if !ranks[file].contains_key(&tag) => {
                        violations.push(Violation {
                            kind: ViolationKind::InvalidValue,
                            detail: format!(
                                "client {client} read tag {tag:#x} from file {file} at {:.3}s, \
                                 but no such write was ever acknowledged",
                                secs(finished)
                            ),
                        });
                        continue;
                    }
                    obs => rank_of(file, obs).expect("tag rank checked above"),
                };

                // Read-your-writes: never older than the client's own
                // last acknowledged write (delegation excuses untrusted
                // writers — their dirty data may be legitimately gone).
                if !untrusted.contains(&client) {
                    let own_last = acked[file]
                        .iter()
                        .enumerate()
                        .filter(|(_, w)| w.client == client && w.finished <= started)
                        .map(|(i, _)| i as i64)
                        .max();
                    if let Some(own_rank) = own_last {
                        if observed_rank < own_rank {
                            let own = acked[file][own_rank as usize];
                            violations.push(Violation {
                                kind: ViolationKind::ReadYourWrites,
                                detail: format!(
                                    "client {client} acknowledged its own tag {:#x} on file \
                                     {file} at {:.3}s but read {observed:?} at {:.3}s",
                                    own.tag,
                                    secs(own.finished),
                                    secs(started)
                                ),
                            });
                            continue;
                        }
                    }
                }

                // Freshness: every newer acknowledged write must be
                // visible once its bound (base + fault interference) has
                // elapsed before the read even started. Interference is
                // measured from the write's *start*, because the recall
                // that makes the write visible runs inside the write —
                // a fault window that swallowed that recall must count.
                for (i, w) in acked[file].iter().enumerate() {
                    if (i as i64) <= observed_rank || untrusted.contains(&w.client) {
                        continue;
                    }
                    let mut bound = base + disturbed(w.started, started, events);
                    // Degraded mode promises *bounded* staleness: the
                    // reader's own fault window must not excuse more lag
                    // than the ladder's cap.
                    if let Some(cap) = degraded_cap(model, client, started, events) {
                        bound = bound.min(cap);
                    }
                    if w.finished + bound < started {
                        violations.push(Violation {
                            kind: ViolationKind::StaleRead,
                            detail: format!(
                                "client {client} read {observed:?} from file {file} at {:.3}s, \
                                 {:.3}s after tag {:#x} was acknowledged (bound {:.3}s)",
                                secs(started),
                                secs(started) - secs(w.finished),
                                w.tag,
                                bound.as_secs_f64()
                            ),
                        });
                        break;
                    }
                }
            }
            Event::ExclusionViolation { at, fh, sharers, writers } => {
                violations.push(Violation {
                    kind: ViolationKind::Exclusion,
                    detail: format!(
                        "delegation table held {sharers} concurrent sharers ({writers} \
                         writers) of file handle {fh} at {:.3}s",
                        secs(at)
                    ),
                });
            }
            _ => {}
        }
    }

    // Final state: shutdown flushed everything and healed every link, so
    // the exported filesystem must hold the last acknowledged write —
    // except writes by untrusted delegation writers, whose data may have
    // been revoked or discarded mid-run.
    for (file, &obs) in final_tags.iter().enumerate() {
        if obs == Observation::Torn {
            violations.push(Violation {
                kind: ViolationKind::FinalState,
                detail: format!("file {file} ended torn"),
            });
            continue;
        }
        let expected = acked[file].iter().rev().find(|w| !untrusted.contains(&w.client));
        let strict_ok = match (expected, obs) {
            (Some(w), Observation::Tag(tag)) => {
                // Any acknowledged write at or above the expected rank is
                // acceptable (an untrusted writer may still have landed
                // last).
                ranks[file].get(&tag).is_some_and(|&r| r >= ranks[file][&w.tag])
            }
            (Some(_), _) => false,
            (None, Observation::Tag(tag)) => ranks[file].contains_key(&tag),
            (None, Observation::Initial) => true,
            (_, Observation::Torn) => false,
        };
        if !strict_ok {
            let expected_tag = expected.map(|w| format!("{:#x}", w.tag));
            violations.push(Violation {
                kind: ViolationKind::FinalState,
                detail: format!(
                    "file {file} ended as {obs:?} but the last trusted acknowledged write \
                     was {}",
                    expected_tag.unwrap_or_else(|| "none (initial)".to_string())
                ),
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::history::make_tag;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn write(client: usize, file: usize, tag: u64, at: u64) -> Event {
        Event::WriteAcked { client, file, tag, started: ms(at), finished: ms(at + 100) }
    }

    fn read(client: usize, file: usize, observed: Observation, at: u64) -> Event {
        Event::Read { client, file, observed, started: ms(at), finished: ms(at + 100) }
    }

    #[test]
    fn clean_history_passes() {
        let t = make_tag(0, 1);
        let history = vec![write(0, 0, t, 1_000), read(1, 0, Observation::Tag(t), 50_000)];
        let v = check(ModelKind::Polling, &[], &history, &[Observation::Tag(t)]);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn stale_read_beyond_bound_is_flagged() {
        let t = make_tag(0, 1);
        // Polling bound is 40 s undisturbed; a 100 s-later Initial read
        // must be stale.
        let history = vec![write(0, 0, t, 1_000), read(1, 0, Observation::Initial, 101_000)];
        let v = check(ModelKind::Polling, &[], &history, &[Observation::Tag(t)]);
        assert!(v.iter().any(|x| x.kind == ViolationKind::StaleRead), "got: {v:?}");
    }

    #[test]
    fn fault_windows_stretch_the_bound() {
        let t = make_tag(0, 1);
        let history = vec![write(0, 0, t, 1_000), read(1, 0, Observation::Initial, 101_000)];
        // A 30 s partition inside the interval adds 2*30+10 s of slack:
        // 40 + 70 = 110 s bound, so the same read is no longer stale.
        let events = [FaultEvent::Partition { client: 1, at_ms: 20_000, dur_ms: 30_000 }];
        let v = check(ModelKind::Polling, &events, &history, &[Observation::Tag(t)]);
        assert!(!v.iter().any(|x| x.kind == ViolationKind::StaleRead), "got: {v:?}");
    }

    #[test]
    fn degraded_reads_are_held_to_the_staleness_cap() {
        let t = make_tag(0, 1);
        // Client 1 sits in a long partition window; the general rule
        // would stretch its bound far past the write, but a degraded
        // delegation client serves bounded-staleness reads, so an 83 s
        // lag must still be flagged (cap is 12 + 20 + 30 = 62 s).
        let history = vec![write(0, 0, t, 1_000), read(1, 0, Observation::Initial, 84_000)];
        let events = [FaultEvent::Partition { client: 1, at_ms: 5_000, dur_ms: 80_000 }];
        let v = check(ModelKind::Delegation, &events, &history, &[Observation::Tag(t)]);
        assert!(v.iter().any(|x| x.kind == ViolationKind::StaleRead), "got: {v:?}");
    }

    #[test]
    fn degraded_reads_within_the_cap_pass() {
        let t = make_tag(0, 1);
        // Same window, but the read lags by only ~29 s — inside the
        // ladder's bounded-staleness promise.
        let history = vec![write(0, 0, t, 1_000), read(1, 0, Observation::Initial, 30_000)];
        let events = [FaultEvent::Partition { client: 1, at_ms: 5_000, dur_ms: 80_000 }];
        let v = check(ModelKind::Delegation, &events, &history, &[Observation::Tag(t)]);
        assert!(!v.iter().any(|x| x.kind == ViolationKind::StaleRead), "got: {v:?}");
    }

    #[test]
    fn degraded_cap_only_binds_the_partitioned_reader() {
        let t = make_tag(0, 1);
        // A different client (2) reading equally late is judged by the
        // general stretched bound, not the degraded cap — it never
        // entered degraded mode.
        let history = vec![write(0, 0, t, 1_000), read(2, 0, Observation::Initial, 84_000)];
        let events = [FaultEvent::Partition { client: 1, at_ms: 5_000, dur_ms: 80_000 }];
        let v = check(ModelKind::Delegation, &events, &history, &[Observation::Tag(t)]);
        assert!(!v.iter().any(|x| x.kind == ViolationKind::StaleRead), "got: {v:?}");
    }

    #[test]
    fn read_your_writes_is_enforced() {
        let t = make_tag(1, 1);
        let history = vec![write(1, 0, t, 1_000), read(1, 0, Observation::Initial, 2_000)];
        let v = check(ModelKind::Delegation, &[], &history, &[Observation::Tag(t)]);
        assert!(v.iter().any(|x| x.kind == ViolationKind::ReadYourWrites), "got: {v:?}");
    }

    #[test]
    fn never_acknowledged_data_is_invalid() {
        let bogus = make_tag(2, 9);
        let history = vec![read(0, 0, Observation::Tag(bogus), 5_000)];
        let v = check(ModelKind::Passthrough, &[], &history, &[Observation::Initial]);
        assert!(v.iter().any(|x| x.kind == ViolationKind::InvalidValue), "got: {v:?}");
    }

    #[test]
    fn lost_final_write_is_flagged() {
        let t = make_tag(0, 1);
        let history = vec![write(0, 0, t, 1_000)];
        let v = check(ModelKind::Polling, &[], &history, &[Observation::Initial]);
        assert!(v.iter().any(|x| x.kind == ViolationKind::FinalState), "got: {v:?}");
    }

    #[test]
    fn untrusted_delegation_writers_are_excused() {
        let t = make_tag(0, 1);
        let history = vec![write(0, 0, t, 30_000)];
        // Client 0 crashed: its acknowledged-but-dirty write may be
        // legitimately discarded, so an Initial final state is fine.
        let events = [FaultEvent::ClientCrash { client: 0, at_ms: 40_000, down_ms: 5_000 }];
        let v = check(ModelKind::Delegation, &events, &history, &[Observation::Initial]);
        assert!(v.is_empty(), "got: {v:?}");
        // But under polling (write-through) the same loss is real.
        let v = check(ModelKind::Polling, &events, &history, &[Observation::Initial]);
        assert!(v.iter().any(|x| x.kind == ViolationKind::FinalState), "got: {v:?}");
    }
}
