//! The filesystem proper.

use crate::attr::{Attr, FileKind, SetAttr, Timestamp};
use crate::error::VfsError;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A stable identifier for a filesystem object.
///
/// Ids are never reused; a lookup with the id of a deleted object fails
/// with [`VfsError::Stale`], which is how stale NFS file handles are
/// detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(u64);

impl FileId {
    /// The raw id value (used to build NFS file handles).
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs an id from its raw value (from an NFS file handle).
    pub const fn from_u64(raw: u64) -> Self {
        FileId(raw)
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One entry of a [`Vfs::readdir`] page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// The entry's file id.
    pub fileid: FileId,
    /// The entry's name within the directory.
    pub name: String,
    /// Opaque cookie to resume reading after this entry.
    pub cookie: u64,
}

/// A page of directory entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadDirPage {
    /// Entries in stable order.
    pub entries: Vec<DirEntry>,
    /// `true` if the page reaches the end of the directory.
    pub eof: bool,
}

/// Aggregate filesystem statistics (NFS `FSSTAT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsStat {
    /// Bytes of file content stored.
    pub used_bytes: u64,
    /// Total object count (files, directories, symlinks).
    pub objects: u64,
}

#[derive(Debug)]
struct DirContent {
    by_name: HashMap<String, (u64, u64)>, // name -> (seq, fileid)
    by_seq: BTreeMap<u64, (String, u64)>, // seq -> (name, fileid)
    next_seq: u64,
}

impl DirContent {
    fn new() -> Self {
        DirContent { by_name: HashMap::new(), by_seq: BTreeMap::new(), next_seq: 1 }
    }

    fn insert(&mut self, name: &str, fileid: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_name.insert(name.to_string(), (seq, fileid));
        self.by_seq.insert(seq, (name.to_string(), fileid));
    }

    fn remove(&mut self, name: &str) -> Option<u64> {
        let (seq, fileid) = self.by_name.remove(name)?;
        self.by_seq.remove(&seq);
        Some(fileid)
    }

    fn get(&self, name: &str) -> Option<u64> {
        self.by_name.get(name).map(|&(_, id)| id)
    }

    fn len(&self) -> usize {
        self.by_name.len()
    }
}

#[derive(Debug)]
enum Content {
    File(Vec<u8>),
    Dir(DirContent),
    Symlink(String),
}

#[derive(Debug)]
struct Inode {
    kind: FileKind,
    mode: u32,
    nlink: u32,
    uid: u32,
    gid: u32,
    atime: Timestamp,
    mtime: Timestamp,
    ctime: Timestamp,
    content: Content,
}

impl Inode {
    fn attr(&self, fileid: u64) -> Attr {
        let size = match &self.content {
            Content::File(data) => data.len() as u64,
            Content::Dir(d) => 512 + 32 * d.len() as u64,
            Content::Symlink(target) => target.len() as u64,
        };
        Attr {
            kind: self.kind,
            mode: self.mode,
            nlink: self.nlink,
            uid: self.uid,
            gid: self.gid,
            size,
            fileid,
            atime: self.atime,
            mtime: self.mtime,
            ctime: self.ctime,
        }
    }

    fn dir(&self) -> Result<&DirContent, VfsError> {
        match &self.content {
            Content::Dir(d) => Ok(d),
            _ => Err(VfsError::NotDir),
        }
    }

    fn dir_mut(&mut self) -> Result<&mut DirContent, VfsError> {
        match &mut self.content {
            Content::Dir(d) => Ok(d),
            _ => Err(VfsError::NotDir),
        }
    }
}

#[derive(Debug)]
struct Inner {
    inodes: HashMap<u64, Inode>,
    parents: HashMap<u64, u64>, // directory id -> parent directory id
    next_id: u64,
    used_bytes: u64,
    quota_bytes: Option<u64>,
}

/// The in-memory filesystem. Thread-safe; cheap operations under one lock.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Vfs {
    inner: Mutex<Inner>,
}

const ROOT_ID: u64 = 1;

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates a filesystem containing only an empty root directory.
    pub fn new() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(
            ROOT_ID,
            Inode {
                kind: FileKind::Directory,
                mode: 0o755,
                nlink: 2,
                uid: 0,
                gid: 0,
                atime: Timestamp::default(),
                mtime: Timestamp::default(),
                ctime: Timestamp::default(),
                content: Content::Dir(DirContent::new()),
            },
        );
        let mut parents = HashMap::new();
        parents.insert(ROOT_ID, ROOT_ID);
        Vfs {
            inner: Mutex::new(Inner {
                inodes,
                parents,
                next_id: ROOT_ID + 1,
                used_bytes: 0,
                quota_bytes: None,
            }),
        }
    }

    /// Creates a filesystem with a byte quota on file content; writes
    /// that would exceed it fail with [`VfsError::NoSpace`].
    pub fn with_quota(quota_bytes: u64) -> Self {
        let vfs = Vfs::new();
        vfs.inner.lock().quota_bytes = Some(quota_bytes);
        vfs
    }

    /// The root directory id.
    pub fn root(&self) -> FileId {
        FileId(ROOT_ID)
    }

    /// Looks up `name` in directory `dir`.
    ///
    /// # Errors
    ///
    /// [`VfsError::Stale`] for a dead handle, [`VfsError::NotDir`] if `dir`
    /// is not a directory, [`VfsError::NotFound`] if absent.
    pub fn lookup(&self, dir: FileId, name: &str) -> Result<FileId, VfsError> {
        let inner = self.inner.lock();
        let inode = inner.inodes.get(&dir.0).ok_or(VfsError::Stale)?;
        inode.dir()?.get(name).map(FileId).ok_or(VfsError::NotFound)
    }

    /// Resolves a `/`-separated absolute path from the root.
    ///
    /// # Errors
    ///
    /// As for [`Vfs::lookup`] on each component.
    pub fn lookup_path(&self, path: &str) -> Result<FileId, VfsError> {
        let mut cur = self.root();
        for part in path.split('/').filter(|p| !p.is_empty()) {
            cur = self.lookup(cur, part)?;
        }
        Ok(cur)
    }

    /// Returns the attributes of `id`.
    ///
    /// # Errors
    ///
    /// [`VfsError::Stale`] for a dead handle.
    pub fn getattr(&self, id: FileId) -> Result<Attr, VfsError> {
        let inner = self.inner.lock();
        inner.inodes.get(&id.0).map(|i| i.attr(id.0)).ok_or(VfsError::Stale)
    }

    /// Applies a partial attribute update.
    ///
    /// # Errors
    ///
    /// [`VfsError::Stale`] for a dead handle; [`VfsError::IsDir`] when
    /// truncating a directory.
    pub fn setattr(&self, id: FileId, set: SetAttr, now: Timestamp) -> Result<Attr, VfsError> {
        let mut inner = self.inner.lock();
        let mut freed_or_used: i64 = 0;
        let inode = inner.inodes.get_mut(&id.0).ok_or(VfsError::Stale)?;
        if let Some(mode) = set.mode {
            inode.mode = mode & 0o7777;
        }
        if let Some(uid) = set.uid {
            inode.uid = uid;
        }
        if let Some(gid) = set.gid {
            inode.gid = gid;
        }
        if let Some(size) = set.size {
            match &mut inode.content {
                Content::File(data) => {
                    freed_or_used = size as i64 - data.len() as i64;
                    data.resize(size as usize, 0);
                    inode.mtime = now;
                }
                Content::Dir(_) => return Err(VfsError::IsDir),
                Content::Symlink(_) => return Err(VfsError::InvalidArgument),
            }
        }
        if let Some(atime) = set.atime {
            inode.atime = atime;
        }
        if let Some(mtime) = set.mtime {
            inode.mtime = mtime;
        }
        inode.ctime = now;
        let attr = inode.attr(id.0);
        inner.used_bytes = (inner.used_bytes as i64 + freed_or_used).max(0) as u64;
        Ok(attr)
    }

    fn alloc(&self, inner: &mut Inner, inode: Inode) -> u64 {
        let id = inner.next_id;
        inner.next_id += 1;
        inner.inodes.insert(id, inode);
        id
    }

    fn new_inode(kind: FileKind, mode: u32, now: Timestamp, content: Content) -> Inode {
        Inode {
            kind,
            mode,
            nlink: if matches!(kind, FileKind::Directory) { 2 } else { 1 },
            uid: 0,
            gid: 0,
            atime: now,
            mtime: now,
            ctime: now,
            content,
        }
    }

    fn validate_name(name: &str) -> Result<(), VfsError> {
        if name.is_empty() || name == "." || name == ".." || name.contains('/') {
            return Err(VfsError::InvalidArgument);
        }
        Ok(())
    }

    /// Creates a regular file (guarded: fails if the name exists).
    ///
    /// # Errors
    ///
    /// [`VfsError::Exists`] if present; [`VfsError::InvalidArgument`] for
    /// illegal names; [`VfsError::Stale`]/[`VfsError::NotDir`] on `dir`.
    pub fn create(
        &self,
        dir: FileId,
        name: &str,
        mode: u32,
        now: Timestamp,
    ) -> Result<FileId, VfsError> {
        Self::validate_name(name)?;
        let mut inner = self.inner.lock();
        {
            let d = inner.inodes.get(&dir.0).ok_or(VfsError::Stale)?.dir()?;
            if d.get(name).is_some() {
                return Err(VfsError::Exists);
            }
        }
        let id = self.alloc(
            &mut inner,
            Self::new_inode(FileKind::Regular, mode, now, Content::File(Vec::new())),
        );
        let d = inner.inodes.get_mut(&dir.0).expect("checked").dir_mut().expect("checked");
        d.insert(name, id);
        let dirnode = inner.inodes.get_mut(&dir.0).expect("checked");
        dirnode.mtime = now;
        dirnode.ctime = now;
        Ok(FileId(id))
    }

    /// Creates a regular file, or returns the existing file of that name
    /// (NFS `CREATE` with the `UNCHECKED` guard).
    ///
    /// # Errors
    ///
    /// [`VfsError::IsDir`] if the name is a directory; otherwise as for
    /// [`Vfs::create`].
    pub fn create_unchecked(
        &self,
        dir: FileId,
        name: &str,
        mode: u32,
        now: Timestamp,
    ) -> Result<FileId, VfsError> {
        match self.create(dir, name, mode, now) {
            Ok(id) => Ok(id),
            Err(VfsError::Exists) => {
                let existing = self.lookup(dir, name)?;
                match self.getattr(existing)?.kind {
                    FileKind::Regular => Ok(existing),
                    FileKind::Directory => Err(VfsError::IsDir),
                    FileKind::Symlink => Err(VfsError::InvalidArgument),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// As for [`Vfs::create`].
    pub fn mkdir(
        &self,
        dir: FileId,
        name: &str,
        mode: u32,
        now: Timestamp,
    ) -> Result<FileId, VfsError> {
        Self::validate_name(name)?;
        let mut inner = self.inner.lock();
        {
            let d = inner.inodes.get(&dir.0).ok_or(VfsError::Stale)?.dir()?;
            if d.get(name).is_some() {
                return Err(VfsError::Exists);
            }
        }
        let id = self.alloc(
            &mut inner,
            Self::new_inode(FileKind::Directory, mode, now, Content::Dir(DirContent::new())),
        );
        inner.parents.insert(id, dir.0);
        let parent = inner.inodes.get_mut(&dir.0).expect("checked");
        parent.dir_mut().expect("checked").insert(name, id);
        parent.nlink += 1; // the child's ".." reference
        parent.mtime = now;
        parent.ctime = now;
        Ok(FileId(id))
    }

    /// Creates a symbolic link containing `target`.
    ///
    /// # Errors
    ///
    /// As for [`Vfs::create`].
    pub fn symlink(
        &self,
        dir: FileId,
        name: &str,
        target: &str,
        now: Timestamp,
    ) -> Result<FileId, VfsError> {
        Self::validate_name(name)?;
        let mut inner = self.inner.lock();
        {
            let d = inner.inodes.get(&dir.0).ok_or(VfsError::Stale)?.dir()?;
            if d.get(name).is_some() {
                return Err(VfsError::Exists);
            }
        }
        let id = self.alloc(
            &mut inner,
            Self::new_inode(FileKind::Symlink, 0o777, now, Content::Symlink(target.to_string())),
        );
        let parent = inner.inodes.get_mut(&dir.0).expect("checked");
        parent.dir_mut().expect("checked").insert(name, id);
        parent.mtime = now;
        parent.ctime = now;
        Ok(FileId(id))
    }

    /// Reads a symbolic link's target.
    ///
    /// # Errors
    ///
    /// [`VfsError::InvalidArgument`] if `id` is not a symlink.
    pub fn readlink(&self, id: FileId) -> Result<String, VfsError> {
        let inner = self.inner.lock();
        match &inner.inodes.get(&id.0).ok_or(VfsError::Stale)?.content {
            Content::Symlink(target) => Ok(target.clone()),
            _ => Err(VfsError::InvalidArgument),
        }
    }

    /// Reads up to `count` bytes at `offset`. Returns the data and an
    /// EOF flag (true when the read reaches or passes end of file).
    ///
    /// # Errors
    ///
    /// [`VfsError::IsDir`] when reading a directory.
    pub fn read(&self, id: FileId, offset: u64, count: u32) -> Result<(Vec<u8>, bool), VfsError> {
        let inner = self.inner.lock();
        let inode = inner.inodes.get(&id.0).ok_or(VfsError::Stale)?;
        match &inode.content {
            Content::File(data) => {
                let len = data.len() as u64;
                if offset >= len {
                    return Ok((Vec::new(), true));
                }
                let end = (offset + count as u64).min(len);
                Ok((data[offset as usize..end as usize].to_vec(), end >= len))
            }
            Content::Dir(_) => Err(VfsError::IsDir),
            Content::Symlink(_) => Err(VfsError::InvalidArgument),
        }
    }

    /// Writes `data` at `offset`, zero-filling any gap (sparse write),
    /// and returns the post-write attributes.
    ///
    /// # Errors
    ///
    /// [`VfsError::IsDir`] when writing a directory.
    pub fn write(
        &self,
        id: FileId,
        offset: u64,
        data: &[u8],
        now: Timestamp,
    ) -> Result<Attr, VfsError> {
        let mut inner = self.inner.lock();
        // Quota check: how much would this write grow the file?
        if let Some(quota) = inner.quota_bytes {
            let current = match inner.inodes.get(&id.0).ok_or(VfsError::Stale)?.content {
                Content::File(ref c) => c.len() as u64,
                _ => 0,
            };
            let new_len = (offset + data.len() as u64).max(current);
            let growth = new_len - current;
            if inner.used_bytes + growth > quota {
                return Err(VfsError::NoSpace);
            }
        }
        let inode = inner.inodes.get_mut(&id.0).ok_or(VfsError::Stale)?;
        let grown;
        match &mut inode.content {
            Content::File(content) => {
                let end = offset as usize + data.len();
                let before = content.len();
                if end > content.len() {
                    content.resize(end, 0);
                }
                content[offset as usize..end].copy_from_slice(data);
                grown = content.len() - before;
                inode.mtime = now;
                inode.ctime = now;
            }
            Content::Dir(_) => return Err(VfsError::IsDir),
            Content::Symlink(_) => return Err(VfsError::InvalidArgument),
        }
        let attr = inode.attr(id.0);
        inner.used_bytes += grown as u64;
        Ok(attr)
    }

    /// Removes a non-directory entry, deleting the object when its link
    /// count reaches zero.
    ///
    /// # Errors
    ///
    /// [`VfsError::IsDir`] for directories (use [`Vfs::rmdir`]);
    /// [`VfsError::NotFound`] if absent.
    pub fn remove(&self, dir: FileId, name: &str, now: Timestamp) -> Result<(), VfsError> {
        let mut inner = self.inner.lock();
        let target_id = {
            let d = inner.inodes.get(&dir.0).ok_or(VfsError::Stale)?.dir()?;
            d.get(name).ok_or(VfsError::NotFound)?
        };
        if matches!(inner.inodes.get(&target_id).map(|i| i.kind), Some(FileKind::Directory)) {
            return Err(VfsError::IsDir);
        }
        let parent = inner.inodes.get_mut(&dir.0).expect("checked");
        parent.dir_mut().expect("checked").remove(name);
        parent.mtime = now;
        parent.ctime = now;
        let target = inner.inodes.get_mut(&target_id).expect("target inode");
        target.nlink -= 1;
        target.ctime = now;
        if target.nlink == 0 {
            let freed = match &target.content {
                Content::File(data) => data.len() as u64,
                _ => 0,
            };
            inner.inodes.remove(&target_id);
            inner.used_bytes -= freed;
        }
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotEmpty`] if it has entries; [`VfsError::NotDir`] if
    /// the name is not a directory.
    pub fn rmdir(&self, dir: FileId, name: &str, now: Timestamp) -> Result<(), VfsError> {
        let mut inner = self.inner.lock();
        let target_id = {
            let d = inner.inodes.get(&dir.0).ok_or(VfsError::Stale)?.dir()?;
            d.get(name).ok_or(VfsError::NotFound)?
        };
        {
            let target = inner.inodes.get(&target_id).expect("target inode");
            let content = target.dir()?;
            if content.len() > 0 {
                return Err(VfsError::NotEmpty);
            }
        }
        let parent = inner.inodes.get_mut(&dir.0).expect("checked");
        parent.dir_mut().expect("checked").remove(name);
        parent.nlink -= 1;
        parent.mtime = now;
        parent.ctime = now;
        inner.inodes.remove(&target_id);
        inner.parents.remove(&target_id);
        Ok(())
    }

    /// Creates a hard link `dir/name` to the existing file `id`.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotSupported`] for directories;
    /// [`VfsError::Exists`] if the name is taken.
    pub fn link(
        &self,
        id: FileId,
        dir: FileId,
        name: &str,
        now: Timestamp,
    ) -> Result<(), VfsError> {
        Self::validate_name(name)?;
        let mut inner = self.inner.lock();
        match inner.inodes.get(&id.0).ok_or(VfsError::Stale)?.kind {
            FileKind::Directory => return Err(VfsError::NotSupported),
            FileKind::Regular | FileKind::Symlink => {}
        }
        {
            let d = inner.inodes.get(&dir.0).ok_or(VfsError::Stale)?.dir()?;
            if d.get(name).is_some() {
                return Err(VfsError::Exists);
            }
        }
        let parent = inner.inodes.get_mut(&dir.0).expect("checked");
        parent.dir_mut().expect("checked").insert(name, id.0);
        parent.mtime = now;
        parent.ctime = now;
        let target = inner.inodes.get_mut(&id.0).expect("checked");
        target.nlink += 1;
        target.ctime = now;
        Ok(())
    }

    /// Atomically renames `from_dir/from_name` to `to_dir/to_name`,
    /// replacing a compatible existing target (file over file, empty
    /// directory over directory).
    ///
    /// # Errors
    ///
    /// [`VfsError::InvalidArgument`] when moving a directory under
    /// itself; [`VfsError::NotEmpty`], [`VfsError::IsDir`],
    /// [`VfsError::NotDir`] on incompatible replacement.
    pub fn rename(
        &self,
        from_dir: FileId,
        from_name: &str,
        to_dir: FileId,
        to_name: &str,
        now: Timestamp,
    ) -> Result<(), VfsError> {
        Self::validate_name(to_name)?;
        let mut inner = self.inner.lock();
        let moving_id = {
            let d = inner.inodes.get(&from_dir.0).ok_or(VfsError::Stale)?.dir()?;
            d.get(from_name).ok_or(VfsError::NotFound)?
        };
        inner.inodes.get(&to_dir.0).ok_or(VfsError::Stale)?.dir()?;
        let moving_is_dir =
            matches!(inner.inodes.get(&moving_id).map(|i| i.kind), Some(FileKind::Directory));

        if moving_is_dir {
            // Forbid moving a directory into its own subtree.
            let mut cur = to_dir.0;
            loop {
                if cur == moving_id {
                    return Err(VfsError::InvalidArgument);
                }
                let parent = *inner.parents.get(&cur).ok_or(VfsError::Stale)?;
                if parent == cur {
                    break;
                }
                cur = parent;
            }
        }

        if from_dir == to_dir && from_name == to_name {
            return Ok(());
        }

        // Handle an existing target.
        let existing =
            inner.inodes.get(&to_dir.0).expect("checked").dir().expect("checked").get(to_name);
        if let Some(existing_id) = existing {
            if existing_id == moving_id {
                return Ok(());
            }
            let existing_is_dir =
                matches!(inner.inodes.get(&existing_id).map(|i| i.kind), Some(FileKind::Directory));
            match (moving_is_dir, existing_is_dir) {
                (true, false) => return Err(VfsError::NotDir),
                (false, true) => return Err(VfsError::IsDir),
                (true, true) => {
                    let empty = inner
                        .inodes
                        .get(&existing_id)
                        .expect("checked")
                        .dir()
                        .expect("checked")
                        .len()
                        == 0;
                    if !empty {
                        return Err(VfsError::NotEmpty);
                    }
                    inner
                        .inodes
                        .get_mut(&to_dir.0)
                        .expect("checked")
                        .dir_mut()
                        .expect("checked")
                        .remove(to_name);
                    inner.inodes.remove(&existing_id);
                    inner.parents.remove(&existing_id);
                    inner.inodes.get_mut(&to_dir.0).expect("checked").nlink -= 1;
                }
                (false, false) => {
                    inner
                        .inodes
                        .get_mut(&to_dir.0)
                        .expect("checked")
                        .dir_mut()
                        .expect("checked")
                        .remove(to_name);
                    let target = inner.inodes.get_mut(&existing_id).expect("checked");
                    target.nlink -= 1;
                    target.ctime = now;
                    if target.nlink == 0 {
                        let freed = match &target.content {
                            Content::File(data) => data.len() as u64,
                            _ => 0,
                        };
                        inner.inodes.remove(&existing_id);
                        inner.used_bytes -= freed;
                    }
                }
            }
        }

        inner
            .inodes
            .get_mut(&from_dir.0)
            .expect("checked")
            .dir_mut()
            .expect("checked")
            .remove(from_name);
        inner
            .inodes
            .get_mut(&to_dir.0)
            .expect("checked")
            .dir_mut()
            .expect("checked")
            .insert(to_name, moving_id);
        if moving_is_dir && from_dir != to_dir {
            inner.inodes.get_mut(&from_dir.0).expect("checked").nlink -= 1;
            inner.inodes.get_mut(&to_dir.0).expect("checked").nlink += 1;
            inner.parents.insert(moving_id, to_dir.0);
        }
        for d in [from_dir.0, to_dir.0] {
            let dirnode = inner.inodes.get_mut(&d).expect("checked");
            dirnode.mtime = now;
            dirnode.ctime = now;
        }
        let moved = inner.inodes.get_mut(&moving_id).expect("checked");
        moved.ctime = now;
        Ok(())
    }

    /// Reads a page of directory entries starting after `cookie`
    /// (0 = from the beginning), returning at most `max_entries`.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotDir`] if `dir` is not a directory.
    pub fn readdir(
        &self,
        dir: FileId,
        cookie: u64,
        max_entries: usize,
    ) -> Result<ReadDirPage, VfsError> {
        let inner = self.inner.lock();
        let d = inner.inodes.get(&dir.0).ok_or(VfsError::Stale)?.dir()?;
        let mut entries = Vec::new();
        let mut iter = d.by_seq.range(cookie + 1..);
        for (&seq, (name, fileid)) in iter.by_ref() {
            if entries.len() >= max_entries {
                return Ok(ReadDirPage { entries, eof: false });
            }
            entries.push(DirEntry { fileid: FileId(*fileid), name: name.clone(), cookie: seq });
        }
        Ok(ReadDirPage { entries, eof: true })
    }

    /// Aggregate statistics.
    pub fn fsstat(&self) -> FsStat {
        let inner = self.inner.lock();
        FsStat { used_bytes: inner.used_bytes, objects: inner.inodes.len() as u64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Timestamp = Timestamp::from_nanos(0);
    const T1: Timestamp = Timestamp::from_nanos(1_000_000_000);
    const T2: Timestamp = Timestamp::from_nanos(2_000_000_000);

    fn fs() -> Vfs {
        Vfs::new()
    }

    #[test]
    fn create_lookup_getattr() {
        let fs = fs();
        let f = fs.create(fs.root(), "a", 0o644, T1).unwrap();
        assert_eq!(fs.lookup(fs.root(), "a").unwrap(), f);
        let attr = fs.getattr(f).unwrap();
        assert_eq!(attr.kind, FileKind::Regular);
        assert_eq!(attr.size, 0);
        assert_eq!(attr.nlink, 1);
        assert_eq!(attr.mtime, T1);
    }

    #[test]
    fn create_guarded_fails_on_existing() {
        let fs = fs();
        fs.create(fs.root(), "a", 0o644, T0).unwrap();
        assert_eq!(fs.create(fs.root(), "a", 0o644, T0).unwrap_err(), VfsError::Exists);
    }

    #[test]
    fn create_unchecked_returns_existing() {
        let fs = fs();
        let f = fs.create(fs.root(), "a", 0o644, T0).unwrap();
        fs.write(f, 0, b"data", T0).unwrap();
        let again = fs.create_unchecked(fs.root(), "a", 0o644, T1).unwrap();
        assert_eq!(again, f);
        assert_eq!(fs.getattr(f).unwrap().size, 4, "unchecked create must not truncate");
    }

    #[test]
    fn invalid_names_rejected() {
        let fs = fs();
        for name in ["", ".", "..", "a/b"] {
            assert_eq!(
                fs.create(fs.root(), name, 0o644, T0).unwrap_err(),
                VfsError::InvalidArgument
            );
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, T0).unwrap();
        fs.write(f, 0, b"hello world", T1).unwrap();
        let (data, eof) = fs.read(f, 0, 5).unwrap();
        assert_eq!(data, b"hello");
        assert!(!eof);
        let (data, eof) = fs.read(f, 6, 100).unwrap();
        assert_eq!(data, b"world");
        assert!(eof);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, T0).unwrap();
        fs.write(f, 10, b"x", T1).unwrap();
        let (data, _) = fs.read(f, 0, 11).unwrap();
        assert_eq!(data.len(), 11);
        assert!(data[..10].iter().all(|&b| b == 0));
        assert_eq!(data[10], b'x');
    }

    #[test]
    fn read_past_eof_is_empty_eof() {
        let fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, T0).unwrap();
        let (data, eof) = fs.read(f, 100, 10).unwrap();
        assert!(data.is_empty());
        assert!(eof);
    }

    #[test]
    fn write_updates_mtime_and_ctime() {
        let fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, T0).unwrap();
        fs.write(f, 0, b"x", T2).unwrap();
        let attr = fs.getattr(f).unwrap();
        assert_eq!(attr.mtime, T2);
        assert_eq!(attr.ctime, T2);
    }

    #[test]
    fn remove_deletes_when_last_link() {
        let fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, T0).unwrap();
        fs.remove(fs.root(), "f", T1).unwrap();
        assert_eq!(fs.getattr(f).unwrap_err(), VfsError::Stale);
        assert_eq!(fs.lookup(fs.root(), "f").unwrap_err(), VfsError::NotFound);
    }

    #[test]
    fn hard_link_shares_inode() {
        let fs = fs();
        let f = fs.create(fs.root(), "orig", 0o644, T0).unwrap();
        fs.write(f, 0, b"shared", T0).unwrap();
        fs.link(f, fs.root(), "alias", T1).unwrap();
        assert_eq!(fs.getattr(f).unwrap().nlink, 2);
        let alias = fs.lookup(fs.root(), "alias").unwrap();
        assert_eq!(alias, f);
        fs.remove(fs.root(), "orig", T2).unwrap();
        // Still alive through the alias.
        assert_eq!(fs.getattr(f).unwrap().nlink, 1);
        assert_eq!(fs.read(alias, 0, 100).unwrap().0, b"shared");
    }

    #[test]
    fn link_to_existing_name_fails() {
        let fs = fs();
        let f = fs.create(fs.root(), "a", 0o644, T0).unwrap();
        fs.create(fs.root(), "b", 0o644, T0).unwrap();
        assert_eq!(fs.link(f, fs.root(), "b", T1).unwrap_err(), VfsError::Exists);
    }

    #[test]
    fn link_directory_not_supported() {
        let fs = fs();
        let d = fs.mkdir(fs.root(), "d", 0o755, T0).unwrap();
        assert_eq!(fs.link(d, fs.root(), "d2", T0).unwrap_err(), VfsError::NotSupported);
    }

    #[test]
    fn mkdir_updates_parent_nlink() {
        let fs = fs();
        assert_eq!(fs.getattr(fs.root()).unwrap().nlink, 2);
        fs.mkdir(fs.root(), "d", 0o755, T0).unwrap();
        assert_eq!(fs.getattr(fs.root()).unwrap().nlink, 3);
        fs.rmdir(fs.root(), "d", T1).unwrap();
        assert_eq!(fs.getattr(fs.root()).unwrap().nlink, 2);
    }

    #[test]
    fn rmdir_nonempty_fails() {
        let fs = fs();
        let d = fs.mkdir(fs.root(), "d", 0o755, T0).unwrap();
        fs.create(d, "f", 0o644, T0).unwrap();
        assert_eq!(fs.rmdir(fs.root(), "d", T1).unwrap_err(), VfsError::NotEmpty);
    }

    #[test]
    fn remove_on_directory_is_isdir() {
        let fs = fs();
        fs.mkdir(fs.root(), "d", 0o755, T0).unwrap();
        assert_eq!(fs.remove(fs.root(), "d", T1).unwrap_err(), VfsError::IsDir);
    }

    #[test]
    fn rename_within_directory() {
        let fs = fs();
        let f = fs.create(fs.root(), "old", 0o644, T0).unwrap();
        fs.rename(fs.root(), "old", fs.root(), "new", T1).unwrap();
        assert_eq!(fs.lookup(fs.root(), "new").unwrap(), f);
        assert_eq!(fs.lookup(fs.root(), "old").unwrap_err(), VfsError::NotFound);
    }

    #[test]
    fn rename_replaces_existing_file() {
        let fs = fs();
        let a = fs.create(fs.root(), "a", 0o644, T0).unwrap();
        let b = fs.create(fs.root(), "b", 0o644, T0).unwrap();
        fs.rename(fs.root(), "a", fs.root(), "b", T1).unwrap();
        assert_eq!(fs.lookup(fs.root(), "b").unwrap(), a);
        assert_eq!(fs.getattr(b).unwrap_err(), VfsError::Stale);
    }

    #[test]
    fn rename_directory_across_parents_fixes_nlink() {
        let fs = fs();
        let d1 = fs.mkdir(fs.root(), "d1", 0o755, T0).unwrap();
        let d2 = fs.mkdir(fs.root(), "d2", 0o755, T0).unwrap();
        let sub = fs.mkdir(d1, "sub", 0o755, T0).unwrap();
        assert_eq!(fs.getattr(d1).unwrap().nlink, 3);
        fs.rename(d1, "sub", d2, "sub", T1).unwrap();
        assert_eq!(fs.getattr(d1).unwrap().nlink, 2);
        assert_eq!(fs.getattr(d2).unwrap().nlink, 3);
        assert_eq!(fs.lookup(d2, "sub").unwrap(), sub);
    }

    #[test]
    fn rename_into_own_subtree_fails() {
        let fs = fs();
        let d = fs.mkdir(fs.root(), "d", 0o755, T0).unwrap();
        let sub = fs.mkdir(d, "sub", 0o755, T0).unwrap();
        assert_eq!(fs.rename(fs.root(), "d", sub, "d", T1).unwrap_err(), VfsError::InvalidArgument);
    }

    #[test]
    fn rename_noop_same_name() {
        let fs = fs();
        fs.create(fs.root(), "a", 0o644, T0).unwrap();
        fs.rename(fs.root(), "a", fs.root(), "a", T1).unwrap();
        assert!(fs.lookup(fs.root(), "a").is_ok());
    }

    #[test]
    fn readdir_pagination_is_stable() {
        let fs = fs();
        for i in 0..10 {
            fs.create(fs.root(), &format!("f{i}"), 0o644, T0).unwrap();
        }
        let page1 = fs.readdir(fs.root(), 0, 4).unwrap();
        assert_eq!(page1.entries.len(), 4);
        assert!(!page1.eof);
        let page2 = fs.readdir(fs.root(), page1.entries.last().unwrap().cookie, 100).unwrap();
        assert_eq!(page2.entries.len(), 6);
        assert!(page2.eof);
        let names: Vec<_> =
            page1.entries.iter().chain(&page2.entries).map(|e| e.name.clone()).collect();
        assert_eq!(names, (0..10).map(|i| format!("f{i}")).collect::<Vec<_>>());
    }

    #[test]
    fn readdir_survives_concurrent_removal() {
        let fs = fs();
        for i in 0..6 {
            fs.create(fs.root(), &format!("f{i}"), 0o644, T0).unwrap();
        }
        let page1 = fs.readdir(fs.root(), 0, 3).unwrap();
        fs.remove(fs.root(), "f4", T1).unwrap();
        let page2 = fs.readdir(fs.root(), page1.entries.last().unwrap().cookie, 100).unwrap();
        let names: Vec<_> = page2.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["f3", "f5"]);
    }

    #[test]
    fn setattr_truncate_and_extend() {
        let fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, T0).unwrap();
        fs.write(f, 0, b"hello", T0).unwrap();
        fs.setattr(f, SetAttr { size: Some(2), ..Default::default() }, T1).unwrap();
        assert_eq!(fs.read(f, 0, 100).unwrap().0, b"he");
        fs.setattr(f, SetAttr { size: Some(4), ..Default::default() }, T2).unwrap();
        assert_eq!(fs.read(f, 0, 100).unwrap().0, b"he\0\0");
    }

    #[test]
    fn setattr_mode_masks_type_bits() {
        let fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, T0).unwrap();
        fs.setattr(f, SetAttr { mode: Some(0o100_777), ..Default::default() }, T1).unwrap();
        assert_eq!(fs.getattr(f).unwrap().mode, 0o777);
    }

    #[test]
    fn symlink_roundtrip() {
        let fs = fs();
        let l = fs.symlink(fs.root(), "l", "/target/path", T0).unwrap();
        assert_eq!(fs.readlink(l).unwrap(), "/target/path");
        assert_eq!(fs.getattr(l).unwrap().kind, FileKind::Symlink);
    }

    #[test]
    fn lookup_path_resolves_nested() {
        let fs = fs();
        let a = fs.mkdir(fs.root(), "a", 0o755, T0).unwrap();
        let b = fs.mkdir(a, "b", 0o755, T0).unwrap();
        let f = fs.create(b, "c", 0o644, T0).unwrap();
        assert_eq!(fs.lookup_path("/a/b/c").unwrap(), f);
        assert_eq!(fs.lookup_path("a/b/c").unwrap(), f);
        assert_eq!(fs.lookup_path("/").unwrap(), fs.root());
        assert_eq!(fs.lookup_path("/a/x").unwrap_err(), VfsError::NotFound);
    }

    #[test]
    fn fsstat_tracks_bytes_and_objects() {
        let fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, T0).unwrap();
        fs.write(f, 0, &[0u8; 1000], T0).unwrap();
        let stat = fs.fsstat();
        assert_eq!(stat.used_bytes, 1000);
        assert_eq!(stat.objects, 2); // root + file
        fs.remove(fs.root(), "f", T1).unwrap();
        assert_eq!(fs.fsstat().used_bytes, 0);
    }

    #[test]
    fn quota_rejects_oversized_writes() {
        let fs = Vfs::with_quota(1000);
        let f = fs.create(fs.root(), "f", 0o644, T0).unwrap();
        fs.write(f, 0, &[1u8; 900], T0).unwrap();
        assert_eq!(fs.write(f, 900, &[1u8; 200], T0).unwrap_err(), VfsError::NoSpace);
        // Overwriting in place needs no new space.
        fs.write(f, 0, &[2u8; 900], T0).unwrap();
        // Freeing space makes room again.
        fs.remove(fs.root(), "f", T1).unwrap();
        let g = fs.create(fs.root(), "g", 0o644, T1).unwrap();
        fs.write(g, 0, &[3u8; 1000], T1).unwrap();
    }

    #[test]
    fn fileids_are_never_reused() {
        let fs = fs();
        let a = fs.create(fs.root(), "a", 0o644, T0).unwrap();
        fs.remove(fs.root(), "a", T0).unwrap();
        let b = fs.create(fs.root(), "a", 0o644, T0).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn dir_mtime_changes_on_child_creation() {
        let fs = fs();
        let before = fs.getattr(fs.root()).unwrap().mtime;
        fs.create(fs.root(), "f", 0o644, T2).unwrap();
        let after = fs.getattr(fs.root()).unwrap().mtime;
        assert!(after > before);
    }
}
