//! An in-memory "disk" with deterministic seek/throughput costs and
//! crash semantics, for persistent caches living inside the simulation.
//!
//! Real disks would wreck the determinism the scheduler guarantees, so a
//! [`VirtualDisk`] keeps every file as two byte vectors: the *current*
//! content (what reads observe) and the *durable* content (what survives
//! a crash). [`VirtualDisk::sync`] promotes current to durable;
//! [`VirtualDisk::crash`] reverts to durable, except that the first
//! unsynced appended region of each file keeps a deterministic half-way
//! *torn prefix* — exactly the failure a write-ahead log must tolerate.
//!
//! I/O never blocks: each operation accrues virtual nanoseconds
//! (per-operation seek plus bytes ÷ throughput) into a pending-cost
//! accumulator. Callers drain it with [`VirtualDisk::take_pending_cost`]
//! and charge it to their own actor clock via [`crate::sleep`] at a
//! point where no locks are held — sleeping inside a store method would
//! deadlock the cooperative scheduler if the store's mutex is contended.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cost model for one simulated disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Fixed positioning cost charged once per operation.
    pub seek: Duration,
    /// Sequential read throughput, bytes per second.
    pub read_bps: u64,
    /// Sequential write throughput, bytes per second.
    pub write_bps: u64,
}

impl DiskConfig {
    /// A commodity SSD: 80 µs access, 500/450 MB/s read/write.
    #[must_use]
    pub fn ssd() -> Self {
        DiskConfig {
            seek: Duration::from_micros(80),
            read_bps: 500_000_000,
            write_bps: 450_000_000,
        }
    }

    /// A 7200 rpm hard drive: 8 ms seek, 120 MB/s both ways.
    #[must_use]
    pub fn hdd() -> Self {
        DiskConfig { seek: Duration::from_millis(8), read_bps: 120_000_000, write_bps: 120_000_000 }
    }

    /// A free disk for tests that only care about contents.
    #[must_use]
    pub fn instant() -> Self {
        DiskConfig { seek: Duration::ZERO, read_bps: u64::MAX, write_bps: u64::MAX }
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig::ssd()
    }
}

/// Operation counters, for benchmarks and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Read operations.
    pub reads: u64,
    /// Write operations (including appends and truncates).
    pub writes: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Bytes accepted by writes.
    pub bytes_written: u64,
    /// Completed [`VirtualDisk::sync`] barriers.
    pub syncs: u64,
    /// Simulated crashes.
    pub crashes: u64,
}

#[derive(Debug, Default, Clone)]
struct VFile {
    /// Current content, as in-flight writes left it.
    data: Vec<u8>,
    /// Content as of the last global [`VirtualDisk::sync`].
    durable: Vec<u8>,
    /// Removed since the last sync: invisible to reads, but the durable
    /// content must survive a crash (an unlink is only durable after a
    /// sync, like a POSIX unlink without a directory fsync).
    deleted: bool,
}

#[derive(Debug, Default)]
struct DiskInner {
    files: HashMap<String, VFile>,
    stats: DiskStats,
}

/// A deterministic in-memory disk; see the module docs.
///
/// Cloneable via `Arc`; a proxy client and a restarted successor share
/// the same `Arc<VirtualDisk>` to model one machine's platter.
#[derive(Debug)]
pub struct VirtualDisk {
    cfg: DiskConfig,
    inner: Mutex<DiskInner>,
    pending_ns: AtomicU64,
}

impl VirtualDisk {
    /// Creates an empty disk with the given cost model.
    #[must_use]
    pub fn new(cfg: DiskConfig) -> Arc<Self> {
        Arc::new(VirtualDisk {
            cfg,
            inner: Mutex::new(DiskInner::default()),
            pending_ns: AtomicU64::new(0),
        })
    }

    fn charge(&self, bytes: usize, bps: u64) {
        let mut ns = u64::try_from(self.cfg.seek.as_nanos()).unwrap_or(u64::MAX);
        if bps < u64::MAX && bytes > 0 {
            ns = ns.saturating_add((bytes as u64).saturating_mul(1_000_000_000) / bps.max(1));
        }
        self.pending_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Drains the accrued I/O cost. The caller should charge it to its
    /// actor clock (`gvfs_netsim::sleep`) while holding no locks; code
    /// running outside the simulation may simply drop it.
    pub fn take_pending_cost(&self) -> Duration {
        Duration::from_nanos(self.pending_ns.swap(0, Ordering::Relaxed))
    }

    /// Operation counters so far.
    pub fn stats(&self) -> DiskStats {
        self.inner.lock().stats
    }

    /// Writes `bytes` at `offset`, zero-extending any hole.
    pub fn write(&self, path: &str, offset: u64, bytes: &[u8]) {
        self.charge(bytes.len(), self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        let file = inner.files.entry(path.to_owned()).or_default();
        if file.deleted {
            // Re-creating a removed path: fresh content, but the durable
            // copy of the old file still governs what a crash restores.
            file.deleted = false;
            file.data.clear();
        }
        let off = usize::try_from(offset).expect("offset fits usize");
        let end = off + bytes.len();
        if file.data.len() < end {
            file.data.resize(end, 0);
        }
        file.data[off..end].copy_from_slice(bytes);
    }

    /// Appends `bytes`, returning the offset they landed at.
    pub fn append(&self, path: &str, bytes: &[u8]) -> u64 {
        self.charge(bytes.len(), self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        let file = inner.files.entry(path.to_owned()).or_default();
        if file.deleted {
            file.deleted = false;
            file.data.clear();
        }
        let off = file.data.len() as u64;
        file.data.extend_from_slice(bytes);
        off
    }

    /// Reads up to `len` bytes at `offset`; short at end of file, `None`
    /// if the file does not exist.
    pub fn read(&self, path: &str, offset: u64, len: usize) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        let file = inner.files.get(path).filter(|f| !f.deleted)?;
        let off = usize::try_from(offset).expect("offset fits usize");
        let end = off.saturating_add(len).min(file.data.len());
        let out = if off >= file.data.len() { Vec::new() } else { file.data[off..end].to_vec() };
        inner.stats.reads += 1;
        inner.stats.bytes_read += out.len() as u64;
        drop(inner);
        self.charge(out.len(), self.cfg.read_bps);
        Some(out)
    }

    /// Current length of `path`, or `None` if absent.
    pub fn len(&self, path: &str) -> Option<u64> {
        self.inner.lock().files.get(path).filter(|f| !f.deleted).map(|f| f.data.len() as u64)
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.lock().files.get(path).is_some_and(|f| !f.deleted)
    }

    /// All paths starting with `prefix`, sorted (a readdir stand-in for
    /// garbage collection).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let inner = self.inner.lock();
        let mut v: Vec<String> = inner
            .files
            .iter()
            .filter(|(p, f)| p.starts_with(prefix) && !f.deleted)
            .map(|(p, _)| p.clone())
            .collect();
        v.sort_unstable();
        v
    }

    /// Truncates `path` to `len` bytes (creating it if absent).
    pub fn truncate(&self, path: &str, len: u64) {
        self.charge(0, self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        let file = inner.files.entry(path.to_owned()).or_default();
        if file.deleted {
            file.deleted = false;
            file.data.clear();
        }
        file.data.truncate(usize::try_from(len).expect("len fits usize"));
    }

    /// Removes `path` if present. Durable only after the next
    /// [`VirtualDisk::sync`]: a crash before it resurrects the durable
    /// content.
    pub fn remove(&self, path: &str) {
        self.charge(0, self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        if let Some(f) = inner.files.get_mut(path) {
            if f.durable.is_empty() {
                inner.files.remove(path);
            } else {
                f.deleted = true;
                f.data.clear();
            }
        }
    }

    /// Atomically renames `old` to `new` (replacing `new`). The rename
    /// itself is durable only after the next [`VirtualDisk::sync`], like
    /// a POSIX `rename` without a directory fsync — but a crash keeps
    /// whichever of the two contents was durable, never a mix.
    pub fn rename(&self, old: &str, new: &str) {
        self.charge(0, self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        if let Some(mut f) = inner.files.remove(old) {
            // The moved file carries its durable copy; if the target had
            // one it is replaced wholesale (no torn mix across a rename).
            if let Some(prev) = inner.files.get(new) {
                if !prev.durable.is_empty() && f.durable.is_empty() {
                    f.durable = prev.durable.clone();
                }
            }
            inner.files.insert(new.to_owned(), f);
        }
    }

    /// Durability barrier: everything written so far survives a crash.
    pub fn sync(&self) {
        self.charge(0, self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.syncs += 1;
        inner.files.retain(|_, f| !f.deleted);
        for f in inner.files.values_mut() {
            f.durable = f.data.clone();
        }
    }

    /// Simulates a machine crash: every file reverts to its durable
    /// content, except that a file that grew since the last sync keeps a
    /// deterministic **torn prefix** — half (rounded down) of the
    /// unsynced appended bytes. In-place overwrites of durable bytes are
    /// reverted entirely. Files never synced keep only their torn half.
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        inner.stats.crashes += 1;
        inner.files.retain(|_, f| {
            if f.deleted {
                // Unsynced removal: the unlink is lost with the crash.
                f.deleted = false;
                f.data = f.durable.clone();
            } else if f.data.len() > f.durable.len() {
                let torn = (f.data.len() - f.durable.len()) / 2;
                f.data.truncate(f.durable.len() + torn);
                f.data[..f.durable.len()].copy_from_slice(&f.durable);
            } else {
                f.data = f.durable.clone();
            }
            !f.data.is_empty() || !f.durable.is_empty()
        });
        // A crash forgets queued I/O cost along with the dirty pages.
        self.pending_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip_and_holes() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("a", 4, b"xyz");
        assert_eq!(d.read("a", 0, 8).unwrap(), vec![0, 0, 0, 0, b'x', b'y', b'z']);
        assert_eq!(d.len("a"), Some(7));
        assert_eq!(d.read("missing", 0, 1), None);
    }

    #[test]
    fn crash_reverts_unsynced_overwrites() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("f", 0, b"aaaa");
        d.sync();
        d.write("f", 0, b"bbbb");
        d.crash();
        assert_eq!(d.read("f", 0, 4).unwrap(), b"aaaa");
    }

    #[test]
    fn crash_keeps_torn_prefix_of_unsynced_append() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.append("log", b"aaaa");
        d.sync();
        d.append("log", b"bbbbbb");
        d.crash();
        // 6 unsynced bytes -> 3 survive.
        assert_eq!(d.read("log", 0, 16).unwrap(), b"aaaabbb");
    }

    #[test]
    fn sync_then_crash_is_lossless() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.append("log", b"abcdef");
        d.write("data", 8, b"zz");
        d.sync();
        d.crash();
        assert_eq!(d.read("log", 0, 16).unwrap(), b"abcdef");
        assert_eq!(d.read("data", 6, 4).unwrap(), vec![0, 0, b'z', b'z']);
    }

    #[test]
    fn costs_accrue_and_drain() {
        let d = VirtualDisk::new(DiskConfig {
            seek: Duration::from_millis(1),
            read_bps: 1_000_000,
            write_bps: 1_000_000,
        });
        d.write("f", 0, &[0u8; 1000]); // 1 ms seek + 1 ms transfer
        let cost = d.take_pending_cost();
        assert_eq!(cost, Duration::from_millis(2));
        assert_eq!(d.take_pending_cost(), Duration::ZERO);
    }

    #[test]
    fn unsynced_remove_is_resurrected_by_crash() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("f", 0, b"keep");
        d.sync();
        d.remove("f");
        assert!(!d.exists("f"));
        assert_eq!(d.read("f", 0, 4), None);
        d.crash();
        assert_eq!(d.read("f", 0, 4).unwrap(), b"keep", "unlink was not durable");
        // A synced removal is final.
        d.remove("f");
        d.sync();
        d.crash();
        assert!(!d.exists("f"));
    }

    #[test]
    fn recreate_after_remove_starts_fresh() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("f", 0, b"oldcontent");
        d.sync();
        d.remove("f");
        d.write("f", 0, b"nw");
        assert_eq!(d.read("f", 0, 16).unwrap(), b"nw", "no stale tail from the removed file");
    }

    #[test]
    fn rename_replaces_target() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("new", 0, b"vvvv");
        d.write("old", 0, b"ww");
        d.rename("old", "new");
        assert_eq!(d.read("new", 0, 8).unwrap(), b"ww");
        assert!(!d.exists("old"));
    }
}
