/root/repo/target/debug/deps/gvfs_vfs-d1e1047a58ff7507.d: /root/repo/clippy.toml crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_vfs-d1e1047a58ff7507.rmeta: /root/repo/clippy.toml crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs Cargo.toml

/root/repo/clippy.toml:
crates/vfs/src/lib.rs:
crates/vfs/src/attr.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
