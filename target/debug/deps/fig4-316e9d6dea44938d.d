/root/repo/target/debug/deps/fig4-316e9d6dea44938d.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-316e9d6dea44938d: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
