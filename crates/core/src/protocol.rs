//! GVFS wire-protocol extensions.
//!
//! Three pieces ride on ONC RPC alongside native NFS:
//!
//! * The **proxy program** ([`GVFS_PROXY_PROGRAM`]): proxy clients send
//!   NFSv3 procedures (same procedure numbers, same argument encodings)
//!   to the proxy server, which replies with the native NFS result
//!   prefixed by a piggybacked [`DelegationGrant`] — the paper's
//!   "delegation and cacheability decisions piggybacked on the native
//!   NFS reply message". Procedure [`proc_ext::GETINV`] implements the
//!   invalidation poll.
//! * The **callback program** ([`GVFS_CALLBACK_PROGRAM`]) served by each
//!   proxy *client*: per-file delegation recalls ([`CallbackArgs`]) and
//!   the cache-wide recovery callback after a server restart.

use gvfs_nfs3::Fh3;
use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};

/// RPC program number of the GVFS proxy service (proxy client → proxy
/// server). Sits in the transient range.
pub const GVFS_PROXY_PROGRAM: u32 = 0x4000_0100;
/// RPC program number of the proxy client's callback service (proxy
/// server → proxy client).
pub const GVFS_CALLBACK_PROGRAM: u32 = 0x4000_0101;
/// Version of both GVFS programs.
pub const GVFS_VERSION: u32 = 1;

/// Extension procedure numbers (NFS procedures keep their RFC 1813
/// numbers on the proxy program).
pub mod proc_ext {
    /// Poll the proxy server's invalidation buffer (§4.2).
    pub const GETINV: u32 = 100;
    /// Per-file delegation recall (callback program).
    pub const CALLBACK: u32 = 1;
    /// Cache-wide recovery callback after proxy-server restart
    /// (callback program).
    pub const RECOVER: u32 = 2;
    /// Peer block fetch (callback program): one proxy *client* asks
    /// another for a clean cached block range it was advertised as
    /// holding. The origin keeps sole authority over attributes and
    /// invalidation; the peer only moves verified bytes.
    pub const PEERREAD: u32 = 3;
}

/// Maximum invalidation handles carried in a single `GETINV` reply; more
/// pending entries set the `poll_again` flag (§4.2.1 step 3). At 512
/// handles (~6 KiB of payload) a 14 K-entry update drains in ~28 calls,
/// matching the paper's "about 30 GETINV calls" for the MATLAB update.
pub const MAX_INVALIDATIONS_PER_REPLY: usize = 512;

/// Maximum peer client ids carried in one [`PeerAdvert`]. Enough for a
/// useful next-best list after breaker skips without bloating every
/// reply; the origin picks the advertised subset.
pub const MAX_PEER_HOLDERS: usize = 8;

/// The change attribute peer sourcing attests blocks against: a
/// monotone `u64` folding of the file's NFSv3 modification time (v3
/// has no `change` attribute; mtime is what the attribute cache keys
/// freshness on, so it is what a peer's copy must match exactly).
pub fn change_of(mtime: gvfs_nfs3::NfsTime3) -> u64 {
    (u64::from(mtime.seconds) << 32) | u64::from(mtime.nseconds)
}

/// The delegation/cacheability decision piggybacked on every proxy
/// reply (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u32)]
pub enum DelegationGrant {
    /// No delegation; cache per the session's relaxed model.
    #[default]
    None = 0,
    /// Read delegation: cached reads need no revalidation.
    Read = 1,
    /// Write delegation: reads and delayed writes served from cache.
    Write = 2,
    /// The file is temporarily non-cacheable (a sharing conflict is
    /// being resolved); bypass the cache for it.
    NonCacheable = 3,
}

impl Xdr for DelegationGrant {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self as u32);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(DelegationGrant::None),
            1 => Ok(DelegationGrant::Read),
            2 => Ok(DelegationGrant::Write),
            3 => Ok(DelegationGrant::NonCacheable),
            value => Err(XdrError::InvalidDiscriminant { type_name: "DelegationGrant", value }),
        }
    }
}

/// A proxy-program reply: the piggybacked grant plus the raw native NFS
/// reply bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrappedReply {
    /// Piggybacked delegation decision.
    pub grant: DelegationGrant,
    /// Piggybacked invalidation drain (§4.2 extension): the reply the
    /// client's next `GETINV` would have produced, riding on this call
    /// so a steady-state poll costs zero extra messages. `None` when
    /// the client has no pending invalidations.
    pub inv: Option<GetinvRes>,
    /// Piggybacked peer advertisement: which live clients hold a clean
    /// copy of the file this reply served, so a `peer_read` client can
    /// source the bytes over the LAN instead of the origin WAN. Rides
    /// as a *second* trailing optional, so `peers` may only be present
    /// when `inv` is — the server synthesizes an empty drain when it
    /// has an advert but nothing pending.
    pub peers: Option<PeerAdvert>,
    /// The unmodified NFSv3 result encoding.
    pub nfs_bytes: Vec<u8>,
}

impl Xdr for WrappedReply {
    // `inv` rides as a *trailing* optional — present iff bytes follow
    // the opaque NFS reply — so a reply with nothing to piggyback is
    // byte-identical (and therefore wire-time identical) to the
    // pre-piggyback format. The encoding stays unambiguous because
    // `nfs_bytes` is length-prefixed. `peers` extends the same trick
    // one level: present iff bytes follow the drain, which is why the
    // encoder refuses to write an advert without a drain in front of
    // it (the decoder could not tell the two apart).
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.grant.encode(enc)?;
        enc.put_opaque(&self.nfs_bytes)?;
        match &self.inv {
            Some(inv) => {
                inv.encode(enc)?;
                match &self.peers {
                    Some(peers) => peers.encode(enc),
                    None => Ok(()),
                }
            }
            // Invariant: peers ⟹ inv. An advert with no drain is
            // undecodable, so it is dropped rather than mis-framed.
            None => Ok(()),
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let grant = DelegationGrant::decode(dec)?;
        let nfs_bytes = dec.get_opaque()?;
        let inv = if dec.remaining() > 0 { Some(GetinvRes::decode(dec)?) } else { None };
        let peers = if inv.is_some() && dec.remaining() > 0 {
            Some(PeerAdvert::decode(dec)?)
        } else {
            None
        };
        Ok(WrappedReply { grant, inv, peers, nfs_bytes })
    }
}

/// A peer advertisement: live clients known by the origin to hold a
/// clean copy of `fh`, plus the origin-attested attributes the reader
/// must verify any peer-served bytes against. The origin de-advertises
/// eagerly — under the same invalidation stripe lock that condemns the
/// handle — so an advert never outlives the data's validity *at the
/// origin*; the `change` check catches the remaining races end-to-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerAdvert {
    /// The advertised file.
    pub fh: Fh3,
    /// Origin-attested change attribute the peer's copy must match.
    pub change: u64,
    /// Origin-attested file length (guards truncated peer copies).
    pub len: u64,
    /// Client ids holding clean copies, capped at
    /// [`MAX_PEER_HOLDERS`].
    pub holders: Vec<u32>,
}

impl Xdr for PeerAdvert {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.fh.encode(enc)?;
        enc.put_u64(self.change);
        enc.put_u64(self.len);
        self.holders.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(PeerAdvert {
            fh: Fh3::decode(dec)?,
            change: dec.get_u64()?,
            len: dec.get_u64()?,
            holders: Vec::<u32>::decode(dec)?,
        })
    }
}

/// `PEERREAD` arguments: the block range wanted and the origin-attested
/// change attribute the peer's cached copy must match exactly — a peer
/// holding any other version answers [`PeerReadRes::Miss`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerReadArgs {
    /// The file to read.
    pub fh: Fh3,
    /// Byte offset of the wanted range.
    pub offset: u64,
    /// Byte count of the wanted range.
    pub count: u32,
    /// Origin-attested change attribute the copy must carry.
    pub change: u64,
}

impl Xdr for PeerReadArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.fh.encode(enc)?;
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
        enc.put_u64(self.change);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(PeerReadArgs {
            fh: Fh3::decode(dec)?,
            offset: dec.get_u64()?,
            count: dec.get_u32()?,
            change: dec.get_u64()?,
        })
    }
}

/// `PEERREAD` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerReadRes {
    /// The peer holds a clean, change-matched copy of the range.
    Ok {
        /// The change attribute of the served copy (echoes the
        /// request's on a well-behaved peer; the reader re-checks).
        change: u64,
        /// The peer's cached file length.
        len: u64,
        /// FNV-1a content hash of `data` (the store's content-address
        /// form), verified end-to-end by the reader.
        hash: u64,
        /// The block bytes.
        data: Vec<u8>,
    },
    /// The peer no longer holds a clean matching copy; the reader
    /// falls back to the origin.
    Miss,
}

impl Xdr for PeerReadRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            PeerReadRes::Ok { change, len, hash, data } => {
                enc.put_u32(0);
                enc.put_u64(*change);
                enc.put_u64(*len);
                enc.put_u64(*hash);
                enc.put_opaque(data)?;
                Ok(())
            }
            PeerReadRes::Miss => {
                enc.put_u32(1);
                Ok(())
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(PeerReadRes::Ok {
                change: dec.get_u64()?,
                len: dec.get_u64()?,
                hash: dec.get_u64()?,
                data: dec.get_opaque()?,
            }),
            1 => Ok(PeerReadRes::Miss),
            value => Err(XdrError::InvalidDiscriminant { type_name: "PeerReadRes", value }),
        }
    }
}

/// `GETINV` arguments: the client's last known server timestamp, or
/// `None` to bootstrap (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetinvArgs {
    /// Last invalidation timestamp the client has applied.
    pub last_timestamp: Option<u64>,
}

impl Xdr for GetinvArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.last_timestamp.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(GetinvArgs { last_timestamp: Option::<u64>::decode(dec)? })
    }
}

/// `GETINV` result (§4.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetinvRes {
    /// The server's current logical timestamp.
    pub timestamp: u64,
    /// When set, the client must invalidate its entire attribute cache
    /// (first contact, wrap-around, or server restart).
    pub force_invalidate: bool,
    /// When set, more invalidations are pending than fit this reply;
    /// poll again immediately.
    pub poll_again: bool,
    /// File handles whose cached attributes must be invalidated.
    pub handles: Vec<Fh3>,
}

impl Xdr for GetinvRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u64(self.timestamp);
        enc.put_bool(self.force_invalidate);
        enc.put_bool(self.poll_again);
        self.handles.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(GetinvRes {
            timestamp: dec.get_u64()?,
            force_invalidate: dec.get_bool()?,
            poll_again: dec.get_bool()?,
            handles: Vec::<Fh3>::decode(dec)?,
        })
    }
}

/// Which delegation a callback recalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum CallbackKind {
    /// Recall a read delegation: invalidate the file's cached
    /// attributes.
    RecallRead = 1,
    /// Recall a write delegation: write dirty data back (fully, or
    /// partially with a block list).
    RecallWrite = 2,
}

impl Xdr for CallbackKind {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self as u32);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            1 => Ok(CallbackKind::RecallRead),
            2 => Ok(CallbackKind::RecallWrite),
            value => Err(XdrError::InvalidDiscriminant { type_name: "CallbackKind", value }),
        }
    }
}

/// `CALLBACK` arguments: the file being recalled and, when another
/// client is waiting on a specific block, that block's offset — "the
/// requested block's offset is sent along with the file's handle in the
/// callback" (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallbackArgs {
    /// The recalled file.
    pub fh: Fh3,
    /// What is being recalled.
    pub kind: CallbackKind,
    /// Block offset another client is blocked on, if any.
    pub requested_offset: Option<u64>,
}

impl Xdr for CallbackArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.fh.encode(enc)?;
        self.kind.encode(enc)?;
        self.requested_offset.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(CallbackArgs {
            fh: Fh3::decode(dec)?,
            kind: CallbackKind::decode(dec)?,
            requested_offset: Option::<u64>::decode(dec)?,
        })
    }
}

/// `CALLBACK` result: when the client elects partial write-back, the
/// offsets of blocks still dirty (to be submitted asynchronously);
/// empty when everything is already flushed or the recall was for a
/// read delegation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CallbackRes {
    /// Offsets (in bytes) of blocks not yet written back.
    pub pending_blocks: Vec<u64>,
}

impl Xdr for CallbackRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.pending_blocks.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(CallbackRes { pending_blocks: Vec::<u64>::decode(dec)? })
    }
}

/// `RECOVER` result: a recovering proxy server multicasts this
/// cache-wide callback; clients invalidate all cached attributes and
/// write-delegation holders return the files they hold dirty so the
/// server can rebuild its open-file table (§4.3.4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoverRes {
    /// Files for which this client holds locally modified data.
    pub dirty_files: Vec<Fh3>,
}

impl Xdr for RecoverRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.dirty_files.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(RecoverRes { dirty_files: Vec::<Fh3>::decode(dec)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Xdr + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = gvfs_xdr::to_bytes(v).unwrap();
        assert_eq!(&gvfs_xdr::from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn grants_roundtrip() {
        for g in [
            DelegationGrant::None,
            DelegationGrant::Read,
            DelegationGrant::Write,
            DelegationGrant::NonCacheable,
        ] {
            rt(&g);
        }
        assert!(gvfs_xdr::from_bytes::<DelegationGrant>(&[0, 0, 0, 9]).is_err());
    }

    #[test]
    fn wrapped_reply_roundtrip() {
        rt(&WrappedReply {
            grant: DelegationGrant::Read,
            inv: None,
            peers: None,
            nfs_bytes: vec![0, 0, 0, 0],
        });
        rt(&WrappedReply {
            grant: DelegationGrant::None,
            inv: None,
            peers: None,
            nfs_bytes: vec![],
        });
        rt(&WrappedReply {
            grant: DelegationGrant::None,
            inv: Some(GetinvRes {
                timestamp: 17,
                force_invalidate: false,
                poll_again: true,
                handles: vec![Fh3::from_fileid(3)],
            }),
            peers: None,
            nfs_bytes: vec![1, 2, 3, 4],
        });
        rt(&WrappedReply {
            grant: DelegationGrant::Read,
            inv: Some(GetinvRes {
                timestamp: 99,
                force_invalidate: false,
                poll_again: false,
                handles: vec![],
            }),
            peers: Some(PeerAdvert {
                fh: Fh3::from_fileid(7),
                change: 3,
                len: 65536,
                holders: vec![0, 2, 5],
            }),
            nfs_bytes: vec![9, 9],
        });
    }

    #[test]
    fn wrapped_reply_without_peers_is_byte_identical_to_pre_peer_format() {
        // A reply carrying no advert must encode to exactly the bytes
        // the pre-PEERREAD format produced: grant + opaque + optional
        // drain, nothing more. This is the wire-compat half of the
        // trailing-optional discipline.
        let reply = WrappedReply {
            grant: DelegationGrant::Write,
            inv: Some(GetinvRes {
                timestamp: 5,
                force_invalidate: false,
                poll_again: false,
                handles: vec![Fh3::from_fileid(1)],
            }),
            peers: None,
            nfs_bytes: vec![1, 2, 3, 4],
        };
        let bytes = gvfs_xdr::to_bytes(&reply).unwrap();
        let mut manual = gvfs_xdr::Encoder::new();
        reply.grant.encode(&mut manual).unwrap();
        manual.put_opaque(&reply.nfs_bytes).unwrap();
        reply.inv.as_ref().unwrap().encode(&mut manual).unwrap();
        assert_eq!(bytes, manual.into_bytes());
    }

    #[test]
    fn wrapped_reply_advert_without_drain_is_dropped_not_misframed() {
        // peers ⟹ inv: an advert without a drain in front of it would
        // be undecodable, so the encoder drops it entirely.
        let reply = WrappedReply {
            grant: DelegationGrant::None,
            inv: None,
            peers: Some(PeerAdvert {
                fh: Fh3::from_fileid(9),
                change: 1,
                len: 10,
                holders: vec![4],
            }),
            nfs_bytes: vec![8, 8, 8, 8],
        };
        let bytes = gvfs_xdr::to_bytes(&reply).unwrap();
        let decoded = gvfs_xdr::from_bytes::<WrappedReply>(&bytes).unwrap();
        assert_eq!(decoded.inv, None);
        assert_eq!(decoded.peers, None);
        assert_eq!(decoded.nfs_bytes, reply.nfs_bytes);
    }

    #[test]
    fn peer_types_roundtrip() {
        rt(&PeerAdvert { fh: Fh3::from_fileid(11), change: 7, len: 1 << 20, holders: vec![1, 3] });
        rt(&PeerAdvert { fh: Fh3::from_fileid(11), change: 0, len: 0, holders: vec![] });
        rt(&PeerReadArgs { fh: Fh3::from_fileid(2), offset: 32768, count: 32768, change: 4 });
        rt(&PeerReadRes::Ok { change: 4, len: 65536, hash: 0xdead_beef, data: vec![5; 128] });
        rt(&PeerReadRes::Miss);
        assert!(gvfs_xdr::from_bytes::<PeerReadRes>(&[0, 0, 0, 7]).is_err());
    }

    #[test]
    fn getinv_roundtrip() {
        rt(&GetinvArgs { last_timestamp: None });
        rt(&GetinvArgs { last_timestamp: Some(42) });
        rt(&GetinvRes {
            timestamp: 99,
            force_invalidate: true,
            poll_again: false,
            handles: vec![Fh3::from_fileid(1), Fh3::from_fileid(2)],
        });
    }

    #[test]
    fn callback_roundtrip() {
        rt(&CallbackArgs {
            fh: Fh3::from_fileid(7),
            kind: CallbackKind::RecallWrite,
            requested_offset: Some(65536),
        });
        rt(&CallbackArgs {
            fh: Fh3::from_fileid(7),
            kind: CallbackKind::RecallRead,
            requested_offset: None,
        });
        rt(&CallbackRes { pending_blocks: vec![0, 32768, 65536] });
        rt(&RecoverRes { dirty_files: vec![Fh3::from_fileid(3)] });
    }

    #[test]
    fn programs_are_distinct_and_transient() {
        assert_ne!(GVFS_PROXY_PROGRAM, GVFS_CALLBACK_PROGRAM);
        // The transient program-number range starts at 0x4000_0000.
        let transient_floor: u32 = 0x4000_0000;
        assert!(GVFS_PROXY_PROGRAM >= transient_floor);
    }
}
