//! The persistent content-addressed block store.
//!
//! On-disk layout over one [`VirtualDisk`] (one per proxy machine):
//!
//! ```text
//! wal.log                      append-only redo log (framed XDR records)
//! index.snap                   checkpoint snapshot of the extent index
//! data/<2hex>/<16hex>          per-handle sparse file (dirty bytes and
//!                              bytes cleaned in place after write-back),
//!                              keyed by the FNV hash of the Fh3
//! chunks/<2hex>/<16hex>-<8hex> refcounted clean chunks, keyed by
//!                              (content hash, length) — duplicate
//!                              blocks across files are stored once
//! ```
//!
//! **Write-ahead log.** Every mutation appends one framed record
//! (`[u32 len][XDR payload][u64 FNV]`). `WriteDirty` records carry the
//! written bytes inline — the WAL is a *redo* log, so replay never
//! depends on the data file having survived for dirty bytes. Clean
//! inserts reference chunk files by content hash instead of inlining
//! (clean data is refetchable; dirty data is not).
//!
//! **Recovery.** On open (and after [`BlockStore::crash_reopen`]) the
//! store loads `index.snap` if its trailing checksum verifies, then
//! replays `wal.log` record by record, *stopping at the first record
//! that fails verification* — a torn frame, an undecodable payload, or
//! an `InsertClean` whose chunk is absent or fails its content hash.
//! Everything the durability barrier ([`BlockStore::sync`], charged to
//! the virtual disk) covered is guaranteed to verify, so the recovered
//! state is always the exact live state at some instant at or after the
//! last sync: no torn dirty record is ever applied, and no clean block
//! is served whose content hash does not match its index entry.
//!
//! **Chunking.** A clean insert is split at absolute `block_size`
//! boundaries — unless the file's last known size is at or below
//! `file_threshold`, in which case the whole insert is one chunk
//! (full-file mode: small files dedup and restore as a unit, the
//! MosaicFS split). A chunk whose `(hash, len)` already exists is not
//! rewritten: its refcount rises and `dedup_hits` is counted, after a
//! byte-compare guards against hash collisions (a colliding insert
//! falls back to a raw WAL record). Refcounts are not persisted; they
//! are recomputed by replay. Dead chunk files are garbage-collected at
//! checkpoint time, never between checkpoints — earlier WAL records may
//! still reference them.
//!
//! **Checkpoint.** Every `checkpoint_every` records the index is
//! snapshotted (`index.snap.new` → sync → rename → sync), the WAL is
//! truncated, and unreferenced chunk files are removed.
//!
//! **Eviction.** Clean extents of least-recently-used files are dropped
//! (with an `Evict` record) until within capacity; dirty bytes are
//! never evicted. The LRU clock is volatile: after a restart, recency
//! is WAL replay order.
//!
//! Lock order: `index` before `wal`, both ranked in the analysis
//! crate's `LOCK_ORDER` table; neither may be held across a WAN send.

use super::{BlockStore, StoreStats};
use gvfs_netsim::disk::VirtualDisk;
use gvfs_nfs3::{Fh3, NfsTime3};
use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

const WAL_PATH: &str = "wal.log";
const SNAP_PATH: &str = "index.snap";
const SNAP_NEW_PATH: &str = "index.snap.new";
const SNAP_MAGIC: u32 = 0x6776_7353; // "gvsS"

/// Tuning for a [`PersistentStore`].
#[derive(Debug, Clone, Copy)]
pub struct PersistConfig {
    /// Cached-content byte budget (clean data beyond it is evicted).
    pub capacity: usize,
    /// Chunking granularity for clean data, normally the transfer size.
    pub block_size: u64,
    /// Files whose known size is at or below this are stored as one
    /// whole-file chunk per insert instead of per-block chunks.
    pub file_threshold: u64,
    /// WAL records between checkpoints (snapshot + WAL truncate + GC).
    pub checkpoint_every: usize,
    /// WAL records between implicit durability barriers.
    pub sync_every: usize,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            capacity: 4 << 30,
            block_size: 32 * 1024,
            file_threshold: 64 * 1024,
            checkpoint_every: 8192,
            sync_every: 64,
        }
    }
}

/// Content address of a clean chunk: (FNV-1a hash, length).
type ChunkId = (u64, u32);

/// 64-bit FNV-1a; the content hash, record checksum and handle shard
/// function (stable across processes, unlike `DefaultHasher`). Also the
/// end-to-end integrity hash on `PEERREAD` transfers, so a peer-served
/// block is checked with the same machinery that checks the on-disk
/// chunks it came from.
pub fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn data_path(fh: Fh3) -> String {
    let h = fnv(&fh.fileid().to_be_bytes());
    format!("data/{:02x}/{:016x}", h & 0xff, h)
}

fn chunk_path(id: ChunkId) -> String {
    format!("chunks/{:02x}/{:016x}-{:08x}", id.0 & 0xff, id.0, id.1)
}

fn parse_chunk_path(path: &str) -> Option<ChunkId> {
    let name = path.rsplit('/').next()?;
    let (h, l) = name.split_once('-')?;
    Some((u64::from_str_radix(h, 16).ok()?, u32::from_str_radix(l, 16).ok()?))
}

/// Where an extent's bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// Clean bytes inside a content chunk, starting `off` bytes in.
    Chunk { id: ChunkId, off: u32 },
    /// Bytes in the handle's own data file at the extent's absolute
    /// offset; dirty, or cleaned in place after write-back.
    Data { dirty: bool },
}

#[derive(Debug, Clone, Copy)]
struct Ext {
    len: usize,
    src: Src,
}

impl Ext {
    fn dirty(&self) -> bool {
        matches!(self.src, Src::Data { dirty: true })
    }

    /// Splits at `at` bytes in, returning the tail.
    fn split_off(&mut self, at: usize) -> Ext {
        let tail_len = self.len - at;
        self.len = at;
        let tail_src = match self.src {
            Src::Chunk { id, off } => {
                Src::Chunk { id, off: off + u32::try_from(at).expect("extent fits u32") }
            }
            Src::Data { dirty } => Src::Data { dirty },
        };
        Ext { len: tail_len, src: tail_src }
    }
}

#[derive(Debug, Default)]
struct Entry {
    tag: Option<NfsTime3>,
    size_hint: Option<u64>,
    extents: BTreeMap<u64, Ext>,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.extents.values().map(|e| e.len).sum()
    }
}

/// One clean segment of an `InsertClean` record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SegRec {
    /// A refcounted content chunk.
    Chunk { id: ChunkId },
    /// Raw bytes (hash-collision fallback), carried in the record and
    /// stored in the handle's data file.
    Raw { bytes: Vec<u8> },
}

impl SegRec {
    fn len(&self) -> usize {
        match self {
            SegRec::Chunk { id } => id.1 as usize,
            SegRec::Raw { bytes } => bytes.len(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum WalRecord {
    Retag { fh: Fh3, mtime: NfsTime3, drop: bool },
    InsertClean { fh: Fh3, offset: u64, segs: Vec<SegRec> },
    WriteDirty { fh: Fh3, offset: u64, bytes: Vec<u8> },
    CleanRange { fh: Fh3, offset: u64, len: u64 },
    DropClean { fh: Fh3 },
    Evict { fh: Fh3 },
    Forget { fh: Fh3 },
}

impl Xdr for WalRecord {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            WalRecord::Retag { fh, mtime, drop } => {
                enc.put_u32(1);
                enc.put_u64(fh.fileid());
                mtime.encode(enc)?;
                enc.put_bool(*drop);
            }
            WalRecord::InsertClean { fh, offset, segs } => {
                enc.put_u32(2);
                enc.put_u64(fh.fileid());
                enc.put_u64(*offset);
                enc.put_u32(u32::try_from(segs.len()).map_err(|_| XdrError::LengthOverflow)?);
                for seg in segs {
                    match seg {
                        SegRec::Chunk { id } => {
                            enc.put_u32(0);
                            enc.put_u64(id.0);
                            enc.put_u32(id.1);
                        }
                        SegRec::Raw { bytes } => {
                            enc.put_u32(1);
                            enc.put_opaque(bytes)?;
                        }
                    }
                }
            }
            WalRecord::WriteDirty { fh, offset, bytes } => {
                enc.put_u32(3);
                enc.put_u64(fh.fileid());
                enc.put_u64(*offset);
                enc.put_opaque(bytes)?;
            }
            WalRecord::CleanRange { fh, offset, len } => {
                enc.put_u32(4);
                enc.put_u64(fh.fileid());
                enc.put_u64(*offset);
                enc.put_u64(*len);
            }
            WalRecord::DropClean { fh } => {
                enc.put_u32(5);
                enc.put_u64(fh.fileid());
            }
            WalRecord::Evict { fh } => {
                enc.put_u32(6);
                enc.put_u64(fh.fileid());
            }
            WalRecord::Forget { fh } => {
                enc.put_u32(7);
                enc.put_u64(fh.fileid());
            }
        }
        Ok(())
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let disc = dec.get_u32()?;
        let fh = Fh3::from_fileid(dec.get_u64()?);
        Ok(match disc {
            1 => WalRecord::Retag { fh, mtime: NfsTime3::decode(dec)?, drop: dec.get_bool()? },
            2 => {
                let offset = dec.get_u64()?;
                let n = dec.get_u32()?;
                let mut segs = Vec::new();
                for _ in 0..n {
                    segs.push(match dec.get_u32()? {
                        0 => SegRec::Chunk { id: (dec.get_u64()?, dec.get_u32()?) },
                        1 => SegRec::Raw { bytes: dec.get_opaque()? },
                        other => {
                            return Err(XdrError::InvalidDiscriminant {
                                type_name: "SegRec",
                                value: other,
                            })
                        }
                    });
                }
                WalRecord::InsertClean { fh, offset, segs }
            }
            3 => WalRecord::WriteDirty { fh, offset: dec.get_u64()?, bytes: dec.get_opaque()? },
            4 => WalRecord::CleanRange { fh, offset: dec.get_u64()?, len: dec.get_u64()? },
            5 => WalRecord::DropClean { fh },
            6 => WalRecord::Evict { fh },
            7 => WalRecord::Forget { fh },
            other => {
                return Err(XdrError::InvalidDiscriminant { type_name: "WalRecord", value: other })
            }
        })
    }
}

#[derive(Debug, Default)]
struct Idx {
    files: HashMap<Fh3, Entry>,
    chunk_refs: HashMap<ChunkId, u32>,
    /// Chunks whose refcount hit zero; files removed at checkpoint.
    dead_chunks: HashSet<ChunkId>,
    lru: BTreeMap<u64, Fh3>,
    lru_seq: HashMap<Fh3, u64>,
    next_seq: u64,
    used: usize,
    evictions: u64,
    dedup_hits: u64,
    warm_blocks: u64,
    replaying: bool,
}

impl Idx {
    fn touch(&mut self, fh: Fh3) {
        if let Some(old) = self.lru_seq.remove(&fh) {
            self.lru.remove(&old);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lru.insert(seq, fh);
        self.lru_seq.insert(fh, seq);
    }

    fn add_ref(&mut self, id: ChunkId) {
        *self.chunk_refs.entry(id).or_insert(0) += 1;
        self.dead_chunks.remove(&id);
    }

    fn drop_ref(&mut self, id: ChunkId) {
        if let Some(rc) = self.chunk_refs.get_mut(&id) {
            *rc -= 1;
            if *rc == 0 {
                self.chunk_refs.remove(&id);
                self.dead_chunks.insert(id);
            }
        }
    }

    fn insert_ext(&mut self, fh: Fh3, offset: u64, ext: Ext) {
        if ext.len == 0 {
            return;
        }
        if let Src::Chunk { id, .. } = ext.src {
            self.add_ref(id);
        }
        self.files.entry(fh).or_default().extents.insert(offset, ext);
    }

    /// Removes every extent overlapping `[start, end)`, reinserting the
    /// parts outside the range and returning the *dirty* sub-ranges
    /// inside it (whose data-file bytes are untouched).
    fn remove_overlaps(&mut self, fh: Fh3, start: u64, end: u64) -> Vec<(u64, usize)> {
        let Some(entry) = self.files.get_mut(&fh) else { return Vec::new() };
        let overlapping: Vec<u64> = entry
            .extents
            .range(..end)
            .filter(|(s, e)| *s + e.len as u64 > start)
            .map(|(k, _)| *k)
            .collect();
        let mut dirty_kept = Vec::new();
        let mut reinsert = Vec::new();
        let mut derefs = Vec::new();
        for key in overlapping {
            let mut ext = entry.extents.remove(&key).expect("listed key");
            if let Src::Chunk { id, .. } = ext.src {
                derefs.push(id);
            }
            let ext_end = key + ext.len as u64;
            let mut seg_start = key;
            if key < start {
                let tail = ext.split_off((start - key) as usize);
                reinsert.push((key, ext));
                ext = tail;
                seg_start = start;
            }
            if ext_end > end {
                let tail = ext.split_off(ext.len - (ext_end - end) as usize);
                reinsert.push((end, tail));
            }
            if ext.dirty() {
                dirty_kept.push((seg_start, ext.len));
            }
        }
        for (k, e) in reinsert {
            self.insert_ext(fh, k, e);
        }
        for id in derefs {
            self.drop_ref(id);
        }
        dirty_kept.sort_unstable();
        dirty_kept
    }

    /// Merges adjacent extents with compatible sources, mirroring
    /// `FileCache::coalesce` so dirty-range tilings agree exactly.
    fn coalesce(&mut self, fh: Fh3) {
        let Some(entry) = self.files.get_mut(&fh) else { return };
        let keys: Vec<u64> = entry.extents.keys().copied().collect();
        let mut derefs = Vec::new();
        let mut prev: Option<u64> = None;
        for key in keys {
            if let Some(p) = prev {
                let prev_ext = entry.extents[&p];
                let cur = entry.extents[&key];
                let adjacent = p + prev_ext.len as u64 == key;
                let merge = adjacent
                    && match (prev_ext.src, cur.src) {
                        (Src::Data { dirty: a }, Src::Data { dirty: b }) => a == b,
                        (Src::Chunk { id: a, off: ao }, Src::Chunk { id: b, off: bo }) => {
                            a == b && ao as usize + prev_ext.len == bo as usize
                        }
                        _ => false,
                    };
                if merge {
                    let ext = entry.extents.remove(&key).expect("key");
                    if let Src::Chunk { id, .. } = ext.src {
                        derefs.push(id);
                    }
                    entry.extents.get_mut(&p).expect("prev").len += ext.len;
                    continue;
                }
            }
            prev = Some(key);
        }
        for id in derefs {
            self.drop_ref(id);
        }
    }

    fn recount_used(&mut self, fh: Fh3, before: usize) {
        let after = self.files.get(&fh).map_or(0, Entry::bytes);
        self.used = self.used + after - before;
    }

    fn entry_bytes(&self, fh: Fh3) -> usize {
        self.files.get(&fh).map_or(0, Entry::bytes)
    }

    fn apply_insert_clean(&mut self, fh: Fh3, offset: u64, segs: &[SegRec]) {
        let total: u64 = segs.iter().map(|s| s.len() as u64).sum();
        if total == 0 {
            return;
        }
        let before = self.entry_bytes(fh);
        let end = offset + total;
        let dirty_kept = self.remove_overlaps(fh, offset, end);
        // Insert the incoming clean segments, skipping dirty sub-ranges.
        let mut seg_start = offset;
        for seg in segs {
            let seg_len = seg.len() as u64;
            let seg_end = seg_start + seg_len;
            // Uncovered pieces of [seg_start, seg_end) w.r.t. dirty_kept.
            let mut pos = seg_start;
            for &(d_off, d_len) in &dirty_kept {
                let d_end = d_off + d_len as u64;
                if d_end <= pos || d_off >= seg_end {
                    continue;
                }
                if d_off > pos {
                    self.insert_clean_piece(fh, seg, seg_start, pos, (d_off - pos) as usize);
                }
                pos = d_end.min(seg_end);
            }
            if pos < seg_end {
                self.insert_clean_piece(fh, seg, seg_start, pos, (seg_end - pos) as usize);
            }
            seg_start = seg_end;
        }
        for (d_off, d_len) in dirty_kept {
            self.insert_ext(fh, d_off, Ext { len: d_len, src: Src::Data { dirty: true } });
        }
        self.coalesce(fh);
        self.recount_used(fh, before);
    }

    fn insert_clean_piece(&mut self, fh: Fh3, seg: &SegRec, seg_start: u64, at: u64, len: usize) {
        let src = match seg {
            SegRec::Chunk { id } => Src::Chunk {
                id: *id,
                off: u32::try_from(at - seg_start).expect("chunk offset fits u32"),
            },
            SegRec::Raw { .. } => Src::Data { dirty: false },
        };
        self.insert_ext(fh, at, Ext { len, src });
    }

    fn apply_write_dirty(&mut self, fh: Fh3, offset: u64, len: usize) {
        if len == 0 {
            return;
        }
        let before = self.entry_bytes(fh);
        let end = offset + len as u64;
        self.remove_overlaps(fh, offset, end);
        self.insert_ext(fh, offset, Ext { len, src: Src::Data { dirty: true } });
        self.coalesce(fh);
        self.recount_used(fh, before);
    }

    fn apply_clean_range(&mut self, fh: Fh3, offset: u64, len: u64) {
        let Some(entry) = self.files.get_mut(&fh) else { return };
        let end = offset + len;
        let overlapping: Vec<u64> = entry
            .extents
            .range(..end)
            .filter(|(s, e)| e.dirty() && *s + e.len as u64 > offset)
            .map(|(k, _)| *k)
            .collect();
        for key in overlapping {
            let mut ext = entry.extents.remove(&key).expect("listed key");
            let ext_end = key + ext.len as u64;
            let mut seg_start = key;
            if key < offset {
                let tail = ext.split_off((offset - key) as usize);
                entry.extents.insert(key, ext);
                ext = tail;
                seg_start = offset;
            }
            if ext_end > end {
                let tail = ext.split_off(ext.len - (ext_end - end) as usize);
                entry.extents.insert(end, tail);
            }
            ext.src = Src::Data { dirty: false };
            entry.extents.insert(seg_start, ext);
        }
        self.coalesce(fh);
    }

    fn apply_drop_clean(&mut self, fh: Fh3) {
        let Some(entry) = self.files.get_mut(&fh) else { return };
        let before = entry.bytes();
        let clean: Vec<u64> =
            entry.extents.iter().filter(|(_, e)| !e.dirty()).map(|(k, _)| *k).collect();
        let mut derefs = Vec::new();
        for key in clean {
            if let Some(ext) = entry.extents.remove(&key) {
                if let Src::Chunk { id, .. } = ext.src {
                    derefs.push(id);
                }
            }
        }
        for id in derefs {
            self.drop_ref(id);
        }
        self.recount_used(fh, before);
    }

    fn apply_forget(&mut self, fh: Fh3) {
        let before = self.entry_bytes(fh);
        if let Some(entry) = self.files.remove(&fh) {
            let ids: Vec<ChunkId> = entry
                .extents
                .values()
                .filter_map(|e| match e.src {
                    Src::Chunk { id, .. } => Some(id),
                    Src::Data { .. } => None,
                })
                .collect();
            for id in ids {
                self.drop_ref(id);
            }
        }
        if let Some(seq) = self.lru_seq.remove(&fh) {
            self.lru.remove(&seq);
        }
        self.used -= before;
    }

    fn apply_record(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::Retag { fh, mtime, drop } => {
                if *drop {
                    self.apply_drop_clean(*fh);
                }
                self.files.entry(*fh).or_default().tag = Some(*mtime);
            }
            WalRecord::InsertClean { fh, offset, segs } => {
                self.apply_insert_clean(*fh, *offset, segs);
                self.touch(*fh);
            }
            WalRecord::WriteDirty { fh, offset, bytes } => {
                self.apply_write_dirty(*fh, *offset, bytes.len());
                self.touch(*fh);
            }
            WalRecord::CleanRange { fh, offset, len } => self.apply_clean_range(*fh, *offset, *len),
            WalRecord::DropClean { fh } | WalRecord::Evict { fh } => self.apply_drop_clean(*fh),
            WalRecord::Forget { fh } => self.apply_forget(*fh),
        }
    }
}

#[derive(Debug, Default)]
struct WalState {
    since_sync: usize,
    since_checkpoint: usize,
}

/// The persistent store; see the module docs.
#[derive(Debug)]
pub struct PersistentStore {
    cfg: PersistConfig,
    disk: Arc<VirtualDisk>,
    index: Mutex<Idx>,
    wal: Mutex<WalState>,
}

impl PersistentStore {
    /// Opens (or creates) the store on `disk`, replaying any index
    /// snapshot and WAL left by a previous incarnation. Replay I/O is
    /// treated as mount-time work: its simulated cost is discarded.
    #[must_use]
    pub fn open(disk: Arc<VirtualDisk>, cfg: PersistConfig) -> Self {
        let store = PersistentStore {
            cfg,
            disk,
            index: Mutex::new(Idx::default()),
            wal: Mutex::new(WalState::default()),
        };
        store.replay(0, 0);
        let _ = store.disk.take_pending_cost();
        store
    }

    /// The underlying disk (shared with a restarted successor).
    #[must_use]
    pub fn disk(&self) -> Arc<VirtualDisk> {
        Arc::clone(&self.disk)
    }

    // --- WAL ---

    fn log(&self, idx: &mut Idx, rec: &WalRecord) {
        if idx.replaying {
            return;
        }
        let payload = gvfs_xdr::to_bytes(rec).expect("WAL records always encode");
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(
            &u32::try_from(payload.len()).expect("record fits u32").to_be_bytes(),
        );
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv(&payload).to_be_bytes());
        let mut wal = self.wal.lock();
        self.disk.append(WAL_PATH, &frame);
        wal.since_sync += 1;
        wal.since_checkpoint += 1;
        if wal.since_checkpoint >= self.cfg.checkpoint_every {
            self.checkpoint(idx, &mut wal);
        } else if wal.since_sync >= self.cfg.sync_every {
            self.disk.sync();
            wal.since_sync = 0;
        }
    }

    /// Snapshot + sync + WAL truncate + dead-chunk GC.
    fn checkpoint(&self, idx: &mut Idx, wal: &mut WalState) {
        let snap = encode_snapshot(idx);
        self.disk.remove(SNAP_NEW_PATH);
        self.disk.write(SNAP_NEW_PATH, 0, &snap);
        self.disk.sync();
        self.disk.rename(SNAP_NEW_PATH, SNAP_PATH);
        self.disk.sync();
        self.disk.truncate(WAL_PATH, 0);
        // Chunk files no WAL record references any more and no extent
        // holds: safe to delete only now that the WAL is empty.
        for path in self.disk.list("chunks/") {
            match parse_chunk_path(&path) {
                Some(id) if !idx.chunk_refs.contains_key(&id) => self.disk.remove(&path),
                _ => {}
            }
        }
        idx.dead_chunks.clear();
        self.disk.sync();
        wal.since_sync = 0;
        wal.since_checkpoint = 0;
    }

    /// Loads the snapshot and replays the WAL, stopping at the first
    /// record that fails verification. Carries over lifetime counters.
    fn replay(&self, evictions: u64, dedup_hits: u64) {
        let mut idx = Idx { replaying: true, evictions, dedup_hits, ..Idx::default() };
        if let Some(snap) = self.disk.read(SNAP_PATH, 0, usize::MAX) {
            decode_snapshot(&snap, &mut idx);
        }
        let wal_bytes = self.disk.read(WAL_PATH, 0, usize::MAX).unwrap_or_default();
        let mut pos = 0usize;
        let mut valid = 0usize;
        while pos + 12 <= wal_bytes.len() {
            let len =
                u32::from_be_bytes(wal_bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let Some(frame_end) = pos.checked_add(4 + len + 8) else { break };
            if frame_end > wal_bytes.len() {
                break; // torn tail
            }
            let payload = &wal_bytes[pos + 4..pos + 4 + len];
            let stored = u64::from_be_bytes(
                wal_bytes[pos + 4 + len..frame_end].try_into().expect("8 bytes"),
            );
            if fnv(payload) != stored {
                break; // torn or corrupt frame
            }
            let Ok(rec) = gvfs_xdr::from_bytes::<WalRecord>(payload) else { break };
            if !self.verify_record(&rec) {
                break; // e.g. chunk lost with the crash
            }
            match &rec {
                WalRecord::WriteDirty { fh, offset, bytes } => {
                    // Redo: the WAL carries the dirty bytes.
                    self.disk.write(&data_path(*fh), *offset, bytes);
                }
                WalRecord::InsertClean { fh, offset, segs } => {
                    // Raw segments (hash-collision fallback) live in the
                    // data file; redo them from the inline copy.
                    let mut abs = *offset;
                    for seg in segs {
                        if let SegRec::Raw { bytes } = seg {
                            self.disk.write(&data_path(*fh), abs, bytes);
                        }
                        abs += seg.len() as u64;
                    }
                }
                _ => {}
            }
            idx.apply_record(&rec);
            pos = frame_end;
            valid = frame_end;
        }
        if valid < wal_bytes.len() {
            self.disk.truncate(WAL_PATH, valid as u64);
        }
        // Everything replayed clean is servable warm.
        idx.warm_blocks = count_clean_blocks(&idx, self.cfg.block_size);
        idx.used = idx.files.values().map(Entry::bytes).sum();
        idx.replaying = false;
        *self.index.lock() = idx;
        let mut wal = self.wal.lock();
        wal.since_sync = 0;
        wal.since_checkpoint = 0;
    }

    /// A record may only be applied if every chunk it references is
    /// present with matching content hash.
    fn verify_record(&self, rec: &WalRecord) -> bool {
        let WalRecord::InsertClean { segs, .. } = rec else { return true };
        segs.iter().all(|seg| match seg {
            SegRec::Chunk { id } => self
                .disk
                .read(&chunk_path(*id), 0, id.1 as usize)
                .is_some_and(|b| b.len() == id.1 as usize && fnv(&b) == id.0),
            SegRec::Raw { .. } => true,
        })
    }

    /// Stores one clean segment, dedup-ing against existing chunks.
    fn store_segment(&self, idx: &mut Idx, fh: Fh3, abs_off: u64, bytes: &[u8]) -> SegRec {
        let id: ChunkId = (fnv(bytes), u32::try_from(bytes.len()).expect("segment fits u32"));
        let path = chunk_path(id);
        if let Some(existing) = self.disk.read(&path, 0, bytes.len() + 1) {
            if existing == bytes {
                idx.dedup_hits += 1;
                return SegRec::Chunk { id };
            }
            // Content-hash collision: fall back to raw bytes in the
            // handle's data file, carried inline by the WAL record.
            self.disk.write(&data_path(fh), abs_off, bytes);
            return SegRec::Raw { bytes: bytes.to_vec() };
        }
        self.disk.write(&path, 0, bytes);
        SegRec::Chunk { id }
    }

    fn evict_over_capacity(&self, idx: &mut Idx) {
        while idx.used > self.cfg.capacity {
            let Some((&seq, &fh)) = idx.lru.iter().next() else { break };
            idx.lru.remove(&seq);
            idx.lru_seq.remove(&fh);
            if !idx.files.contains_key(&fh) {
                continue;
            }
            let before = idx.entry_bytes(fh);
            idx.apply_drop_clean(fh);
            let dropped = before - idx.entry_bytes(fh);
            if dropped > 0 {
                idx.evictions += 1;
                self.log(idx, &WalRecord::Evict { fh });
            }
            if idx.files.get(&fh).is_some_and(|e| !e.extents.is_empty()) {
                // Still dirty: keep hot so the loop can make progress.
                idx.touch(fh);
                if idx.lru.len() <= 1 {
                    break;
                }
            }
        }
    }

    fn read_ext(
        &self,
        fh: Fh3,
        start: u64,
        ext: &Ext,
        from: usize,
        take: usize,
    ) -> Option<Vec<u8>> {
        let bytes = match ext.src {
            Src::Chunk { id, off } => {
                self.disk.read(&chunk_path(id), u64::from(off) + from as u64, take)?
            }
            Src::Data { .. } => self.disk.read(&data_path(fh), start + from as u64, take)?,
        };
        (bytes.len() == take).then_some(bytes)
    }
}

fn count_clean_blocks(idx: &Idx, block_size: u64) -> u64 {
    let mut total = 0u64;
    for entry in idx.files.values() {
        let mut blocks: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for (off, ext) in &entry.extents {
            if ext.dirty() {
                continue;
            }
            let mut b = off / block_size * block_size;
            let end = off + ext.len as u64;
            while b < end {
                blocks.insert(b);
                b += block_size;
            }
        }
        total += blocks.len() as u64;
    }
    total
}

fn encode_snapshot(idx: &Idx) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(SNAP_MAGIC);
    enc.put_u32(1); // version
    let mut fhs: Vec<Fh3> = idx.files.keys().copied().collect();
    fhs.sort_unstable();
    enc.put_u32(u32::try_from(fhs.len()).expect("file count fits u32"));
    for fh in fhs {
        let entry = &idx.files[&fh];
        enc.put_u64(fh.fileid());
        match entry.tag {
            Some(t) => {
                enc.put_bool(true);
                enc.put_u32(t.seconds);
                enc.put_u32(t.nseconds);
            }
            None => enc.put_bool(false),
        }
        enc.put_u32(u32::try_from(entry.extents.len()).expect("extent count fits u32"));
        for (off, ext) in &entry.extents {
            enc.put_u64(*off);
            enc.put_u32(u32::try_from(ext.len).expect("extent len fits u32"));
            match ext.src {
                Src::Chunk { id, off: coff } => {
                    enc.put_u32(0);
                    enc.put_u64(id.0);
                    enc.put_u32(id.1);
                    enc.put_u32(coff);
                }
                Src::Data { dirty } => {
                    enc.put_u32(1);
                    enc.put_bool(dirty);
                }
            }
        }
    }
    enc.put_u64(idx.next_seq);
    let mut bytes = enc.into_bytes();
    let sum = fnv(&bytes);
    bytes.extend_from_slice(&sum.to_be_bytes());
    bytes
}

/// Populates `idx` from a snapshot if it verifies; a torn or corrupt
/// snapshot is ignored (the WAL alone still recovers a valid prefix).
fn decode_snapshot(bytes: &[u8], idx: &mut Idx) {
    if bytes.len() < 8 {
        return;
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_be_bytes(trailer.try_into().expect("8 bytes"));
    if fnv(payload) != stored {
        return;
    }
    let mut dec = Decoder::new(payload);
    let ok = (|| -> Result<(), XdrError> {
        if dec.get_u32()? != SNAP_MAGIC || dec.get_u32()? != 1 {
            return Err(XdrError::InvalidDiscriminant { type_name: "snapshot", value: 0 });
        }
        let nfiles = dec.get_u32()?;
        for _ in 0..nfiles {
            let fh = Fh3::from_fileid(dec.get_u64()?);
            let tag = if dec.get_bool()? {
                Some(NfsTime3 { seconds: dec.get_u32()?, nseconds: dec.get_u32()? })
            } else {
                None
            };
            let mut entry = Entry { tag, ..Entry::default() };
            let nexts = dec.get_u32()?;
            for _ in 0..nexts {
                let off = dec.get_u64()?;
                let len = dec.get_u32()? as usize;
                let src = match dec.get_u32()? {
                    0 => {
                        let hash = dec.get_u64()?;
                        let clen = dec.get_u32()?;
                        let coff = dec.get_u32()?;
                        Src::Chunk { id: (hash, clen), off: coff }
                    }
                    _ => Src::Data { dirty: dec.get_bool()? },
                };
                entry.extents.insert(off, Ext { len, src });
            }
            idx.files.insert(fh, entry);
        }
        idx.next_seq = dec.get_u64()?;
        Ok(())
    })();
    if ok.is_err() {
        idx.files.clear();
        idx.next_seq = 0;
        return;
    }
    // Rebuild refcounts and the LRU (recency order is volatile; seed it
    // with snapshot order).
    let fhs: Vec<Fh3> = {
        let mut v: Vec<Fh3> = idx.files.keys().copied().collect();
        v.sort_unstable();
        v
    };
    for fh in fhs {
        let ids: Vec<ChunkId> = idx.files[&fh]
            .extents
            .values()
            .filter_map(|e| match e.src {
                Src::Chunk { id, .. } => Some(id),
                Src::Data { .. } => None,
            })
            .collect();
        for id in ids {
            idx.add_ref(id);
        }
        idx.touch(fh);
    }
}

impl BlockStore for PersistentStore {
    fn read(&mut self, fh: Fh3, offset: u64, len: usize) -> Option<Vec<u8>> {
        let mut idx = self.index.lock();
        idx.files.get(&fh)?;
        if len == 0 {
            return Some(Vec::new());
        }
        let end = offset + len as u64;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while pos < end {
            let entry = idx.files.get(&fh)?;
            let (start, ext) = entry.extents.range(..=pos).next_back()?;
            let ext_end = start + ext.len as u64;
            if pos >= ext_end {
                return None; // gap
            }
            let from = (pos - start) as usize;
            let to = ((end.min(ext_end)) - start) as usize;
            out.extend_from_slice(&self.read_ext(fh, *start, ext, from, to - from)?);
            pos = start + to as u64;
        }
        idx.touch(fh);
        Some(out)
    }

    fn missing_ranges(&self, fh: Fh3, offset: u64, len: usize) -> Vec<(u64, usize)> {
        let idx = self.index.lock();
        let Some(entry) = idx.files.get(&fh) else {
            return if len == 0 { Vec::new() } else { vec![(offset, len)] };
        };
        let mut gaps = Vec::new();
        if len == 0 {
            return gaps;
        }
        let end = offset + len as u64;
        let mut pos = offset;
        let head = entry.extents.range(..=pos).next_back();
        let tail = entry.extents.range(pos + 1..end);
        for (start, ext) in head.into_iter().chain(tail) {
            let ext_end = start + ext.len as u64;
            if ext_end <= pos {
                continue;
            }
            if *start > pos {
                gaps.push((pos, (*start - pos) as usize));
            }
            pos = ext_end;
            if pos >= end {
                return gaps;
            }
        }
        gaps.push((pos, (end - pos) as usize));
        gaps
    }

    fn insert_clean(&mut self, fh: Fh3, offset: u64, data: Vec<u8>) {
        if data.is_empty() {
            return;
        }
        let mut idx = self.index.lock();
        // Full-file mode below the size threshold, else absolute
        // block_size-aligned chunks (maximizes cross-file dedup).
        let full_file = idx
            .files
            .get(&fh)
            .and_then(|e| e.size_hint)
            .is_some_and(|s| s <= self.cfg.file_threshold);
        let mut segs = Vec::new();
        let mut rel = 0usize;
        while rel < data.len() {
            let abs = offset + rel as u64;
            let piece_len = if full_file {
                data.len() - rel
            } else {
                let next_boundary = (abs / self.cfg.block_size + 1) * self.cfg.block_size;
                ((next_boundary - abs) as usize).min(data.len() - rel)
            };
            segs.push(self.store_segment(&mut idx, fh, abs, &data[rel..rel + piece_len]));
            rel += piece_len;
        }
        idx.apply_insert_clean(fh, offset, &segs);
        idx.touch(fh);
        self.log(&mut idx, &WalRecord::InsertClean { fh, offset, segs });
        self.evict_over_capacity(&mut idx);
    }

    fn write_dirty(&mut self, fh: Fh3, offset: u64, data: Vec<u8>) {
        if data.is_empty() {
            return;
        }
        let mut idx = self.index.lock();
        self.disk.write(&data_path(fh), offset, &data);
        idx.apply_write_dirty(fh, offset, data.len());
        idx.touch(fh);
        self.log(&mut idx, &WalRecord::WriteDirty { fh, offset, bytes: data });
        self.evict_over_capacity(&mut idx);
    }

    fn clean_range(&mut self, fh: Fh3, offset: u64, len: u64) {
        let mut idx = self.index.lock();
        if idx.files.contains_key(&fh) {
            idx.apply_clean_range(fh, offset, len);
            self.log(&mut idx, &WalRecord::CleanRange { fh, offset, len });
        }
        drop(idx);
        // The server holds the data now; make the clean marking (and the
        // write-back it records) durable so a restart serves it warm
        // instead of re-flushing. Unconditional: clean_range is always a
        // durability barrier, whether or not the handle was cached.
        self.disk.sync();
        self.wal.lock().since_sync = 0;
    }

    fn drop_clean(&mut self, fh: Fh3) {
        let mut idx = self.index.lock();
        if !idx.files.contains_key(&fh) {
            return;
        }
        idx.apply_drop_clean(fh);
        self.log(&mut idx, &WalRecord::DropClean { fh });
    }

    fn forget(&mut self, fh: Fh3) {
        let mut idx = self.index.lock();
        if !idx.files.contains_key(&fh) && !idx.lru_seq.contains_key(&fh) {
            return;
        }
        idx.apply_forget(fh);
        self.disk.remove(&data_path(fh));
        self.log(&mut idx, &WalRecord::Forget { fh });
    }

    fn dirty_ranges(&self, fh: Fh3) -> Vec<(u64, usize)> {
        let idx = self.index.lock();
        idx.files.get(&fh).map_or_else(Vec::new, |e| {
            e.extents.iter().filter(|(_, x)| x.dirty()).map(|(o, x)| (*o, x.len)).collect()
        })
    }

    fn dirty_blocks(&self, fh: Fh3, block_size: u64) -> Vec<u64> {
        let mut blocks = std::collections::BTreeSet::new();
        for (offset, len) in self.dirty_ranges(fh) {
            let mut b = offset / block_size * block_size;
            let end = offset + len as u64;
            while b < end {
                blocks.insert(b);
                b += block_size;
            }
        }
        blocks.into_iter().collect()
    }

    fn dirty_in_block(&self, fh: Fh3, block_offset: u64, block_size: u64) -> Vec<(u64, Vec<u8>)> {
        let idx = self.index.lock();
        let Some(entry) = idx.files.get(&fh) else { return Vec::new() };
        let block_end = block_offset + block_size;
        let mut out = Vec::new();
        for (start, ext) in &entry.extents {
            if !ext.dirty() {
                continue;
            }
            let ext_end = start + ext.len as u64;
            if ext_end <= block_offset || *start >= block_end {
                continue;
            }
            let from = block_offset.max(*start);
            let to = block_end.min(ext_end);
            let bytes = self
                .disk
                .read(&data_path(fh), from, (to - from) as usize)
                .expect("dirty extent bytes are present in the data file");
            out.push((from, bytes));
        }
        out
    }

    fn has_dirty(&self, fh: Fh3) -> bool {
        let idx = self.index.lock();
        idx.files.get(&fh).is_some_and(|e| e.extents.values().any(Ext::dirty))
    }

    fn dirty_files(&self) -> Vec<Fh3> {
        let idx = self.index.lock();
        let mut v: Vec<Fh3> = idx
            .files
            .iter()
            .filter(|(_, e)| e.extents.values().any(Ext::dirty))
            .map(|(fh, _)| *fh)
            .collect();
        v.sort_unstable();
        v
    }

    fn revalidate(&mut self, fh: Fh3, mtime: NfsTime3) {
        let mut idx = self.index.lock();
        let changed = idx.files.get(&fh).and_then(|e| e.tag).is_some_and(|t| t != mtime);
        if changed {
            idx.apply_drop_clean(fh);
        }
        let had_entry = idx.files.contains_key(&fh);
        let prev_tag = idx.files.get(&fh).and_then(|e| e.tag);
        idx.files.entry(fh).or_default().tag = Some(mtime);
        // Only log when something durable changed: first sight of the
        // handle, a tag move, or a clean drop.
        if changed || !had_entry || prev_tag != Some(mtime) {
            self.log(&mut idx, &WalRecord::Retag { fh, mtime, drop: changed });
        }
    }

    fn retag(&mut self, fh: Fh3, mtime: NfsTime3) {
        let mut idx = self.index.lock();
        let prev = idx.files.get(&fh).and_then(|e| e.tag);
        idx.files.entry(fh).or_default().tag = Some(mtime);
        if prev != Some(mtime) {
            self.log(&mut idx, &WalRecord::Retag { fh, mtime, drop: false });
        }
    }

    fn note_size(&mut self, fh: Fh3, size: u64) {
        self.index.lock().files.entry(fh).or_default().size_hint = Some(size);
    }

    fn used_bytes(&self) -> usize {
        self.index.lock().used
    }

    fn stats(&self) -> StoreStats {
        let idx = self.index.lock();
        StoreStats {
            bytes: idx.used as u64,
            evictions: idx.evictions,
            dedup_hits: idx.dedup_hits,
            restart_warm_blocks: idx.warm_blocks,
        }
    }

    fn sync(&mut self) {
        let idx = self.index.lock();
        let mut wal = self.wal.lock();
        drop(idx);
        self.disk.sync();
        wal.since_sync = 0;
    }

    fn crash_reopen(&mut self) {
        let (evictions, dedup_hits) = {
            let idx = self.index.lock();
            (idx.evictions, idx.dedup_hits)
        };
        self.disk.crash();
        self.replay(evictions, dedup_hits);
    }

    fn take_cost(&mut self) -> Duration {
        self.disk.take_pending_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvfs_netsim::disk::DiskConfig;

    fn store() -> PersistentStore {
        PersistentStore::open(
            VirtualDisk::new(DiskConfig::instant()),
            PersistConfig { capacity: 1 << 20, ..PersistConfig::default() },
        )
    }

    fn t(s: u32) -> NfsTime3 {
        NfsTime3 { seconds: s, nseconds: 0 }
    }

    #[test]
    fn read_write_roundtrip_with_gaps() {
        let mut s = store();
        let fh = Fh3::from_fileid(1);
        s.insert_clean(fh, 0, vec![1; 4]);
        s.insert_clean(fh, 8, vec![2; 4]);
        assert_eq!(s.read(fh, 0, 4).unwrap(), vec![1; 4]);
        assert!(s.read(fh, 0, 12).is_none(), "gap at [4,8)");
        assert_eq!(s.missing_ranges(fh, 0, 12), vec![(4, 4)]);
        s.write_dirty(fh, 4, vec![9; 4]);
        assert_eq!(s.read(fh, 0, 12).unwrap(), [vec![1; 4], vec![9; 4], vec![2; 4]].concat());
        assert_eq!(s.dirty_ranges(fh), vec![(4, 4)]);
    }

    #[test]
    fn dirty_beats_incoming_clean() {
        let mut s = store();
        let fh = Fh3::from_fileid(1);
        s.write_dirty(fh, 2, vec![7; 4]);
        s.insert_clean(fh, 0, vec![0; 8]);
        assert_eq!(s.read(fh, 0, 8).unwrap(), vec![0, 0, 7, 7, 7, 7, 0, 0]);
        assert_eq!(s.dirty_ranges(fh), vec![(2, 4)]);
    }

    #[test]
    fn warm_restart_serves_clean_blocks() {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let cfg = PersistConfig { capacity: 1 << 20, ..PersistConfig::default() };
        let fh = Fh3::from_fileid(7);
        {
            let mut s = PersistentStore::open(Arc::clone(&disk), cfg);
            s.revalidate(fh, t(5));
            s.insert_clean(fh, 0, vec![3; 1000]);
            s.sync();
        }
        let mut s2 = PersistentStore::open(disk, cfg);
        assert_eq!(s2.read(fh, 0, 1000).unwrap(), vec![3; 1000]);
        assert_eq!(s2.stats().restart_warm_blocks, 1);
        // The tag survived: revalidating with the same mtime keeps data.
        s2.revalidate(fh, t(5));
        assert!(s2.read(fh, 0, 1000).is_some());
        s2.revalidate(fh, t(9));
        assert!(s2.read(fh, 0, 1000).is_none(), "tag moved: clean dropped");
    }

    #[test]
    fn unsynced_dirty_tail_is_discarded_after_crash() {
        let mut s = store();
        let fh = Fh3::from_fileid(1);
        s.write_dirty(fh, 0, vec![1; 100]);
        s.sync();
        s.write_dirty(fh, 200, vec![2; 100]); // never synced
        s.crash_reopen();
        assert_eq!(s.read(fh, 0, 100).unwrap(), vec![1; 100], "synced dirty survives");
        assert_eq!(s.dirty_ranges(fh), vec![(0, 100)], "torn record discarded");
    }

    #[test]
    fn dedup_stores_identical_chunks_once() {
        let mut s = store();
        let a = Fh3::from_fileid(1);
        let b = Fh3::from_fileid(2);
        let block = vec![42u8; 32 * 1024];
        s.insert_clean(a, 0, block.clone());
        assert_eq!(s.stats().dedup_hits, 0);
        s.insert_clean(b, 0, block.clone());
        assert_eq!(s.stats().dedup_hits, 1);
        assert_eq!(s.read(b, 0, block.len()).unwrap(), block);
        // One chunk file backs both.
        assert_eq!(s.disk.list("chunks/").len(), 1);
        s.forget(a);
        assert_eq!(s.read(b, 0, block.len()).unwrap(), block, "refcount keeps the chunk");
    }

    #[test]
    fn eviction_spares_dirty_and_counts() {
        let mut s = PersistentStore::open(
            VirtualDisk::new(DiskConfig::instant()),
            PersistConfig { capacity: 100, ..PersistConfig::default() },
        );
        let dirty = Fh3::from_fileid(1);
        let clean = Fh3::from_fileid(2);
        s.write_dirty(dirty, 0, vec![1; 80]);
        s.insert_clean(clean, 0, vec![2; 80]);
        assert!(s.used_bytes() <= 160);
        assert_eq!(s.dirty_files(), vec![dirty]);
        assert!(s.read(dirty, 0, 80).is_some(), "dirty survives eviction");
        assert!(s.stats().evictions >= 1);
    }

    #[test]
    fn checkpoint_snapshots_and_truncates_wal() {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let cfg = PersistConfig {
            capacity: 1 << 20,
            checkpoint_every: 4,
            sync_every: usize::MAX,
            ..PersistConfig::default()
        };
        let fh = Fh3::from_fileid(1);
        let mut s = PersistentStore::open(Arc::clone(&disk), cfg);
        for i in 0..6u64 {
            s.write_dirty(fh, i * 10, vec![i as u8 + 1; 10]);
        }
        assert!(disk.exists(SNAP_PATH), "checkpoint wrote a snapshot");
        s.sync();
        drop(s);
        let mut s2 = PersistentStore::open(disk, cfg);
        let got = s2.read(fh, 0, 60).unwrap();
        let want: Vec<u8> = (0..6u64).flat_map(|i| vec![i as u8 + 1; 10]).collect();
        assert_eq!(got, want);
        assert_eq!(s2.dirty_ranges(fh), vec![(0, 60)]);
    }

    #[test]
    fn clean_range_is_durable_and_restores_warm() {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let cfg = PersistConfig { capacity: 1 << 20, ..PersistConfig::default() };
        let fh = Fh3::from_fileid(3);
        {
            let mut s = PersistentStore::open(Arc::clone(&disk), cfg);
            s.write_dirty(fh, 0, vec![5; 512]);
            s.clean_range(fh, 0, 512); // implies a durability barrier
        }
        let mut s2 = PersistentStore::open(disk, cfg);
        assert_eq!(s2.read(fh, 0, 512).unwrap(), vec![5; 512]);
        assert!(!s2.has_dirty(fh), "cleaned-in-place bytes restore clean");
        assert_eq!(s2.stats().restart_warm_blocks, 1);
    }
}
