//! A simplified AFS-like distributed file system.
//!
//! The paper's Figure 6(b) includes OpenAFS 1.2.11 as a reference point
//! for a traditional DFS with strong consistency. This crate implements
//! the essence of that design — **whole-file caching with callback
//! promises**:
//!
//! * a client fetches whole files (and directory status) from the
//!   server, which registers a *callback promise*;
//! * while the promise stands, the client uses its cache without any
//!   server traffic;
//! * any mutation breaks the other clients' promises with server→client
//!   callback RPCs.
//!
//! It speaks its own RPC program over the same simulated transport as
//! everything else, so its traffic and timing are directly comparable.
//! Only the operations the lock benchmark needs are implemented
//! (lookup/stat, whole-file read/write, create, hard-link, remove); the
//! rest of AFS (volumes, ACLs, tokens) is out of scope.

mod client;
mod proto;
mod server;

pub use client::{AfsCallbackService, AfsClient, AfsError};
pub use proto::{AfsStatus, AFS_CALLBACK_PROGRAM, AFS_PROGRAM, AFS_VERSION};
pub use server::AfsServer;

#[cfg(test)]
mod tests {
    use super::*;
    use gvfs_netsim::link::{Link, LinkConfig};
    use gvfs_netsim::transport::{ServerNode, SimRpcClient};
    use gvfs_netsim::Sim;
    use gvfs_rpc::dispatch::Dispatcher;
    use gvfs_rpc::stats::RpcStats;
    use gvfs_vfs::Vfs;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::time::Duration;

    struct Cell {
        server: Arc<AfsServer>,
        node: Arc<ServerNode>,
        stats: RpcStats,
    }

    fn cell() -> Cell {
        let server = AfsServer::new(Arc::new(Vfs::new()));
        let mut d = Dispatcher::new();
        d.register_arc(Arc::clone(&server) as Arc<dyn gvfs_rpc::dispatch::RpcService>);
        let node = ServerNode::new("afs", d, Duration::from_micros(300));
        Cell { server, node, stats: RpcStats::new() }
    }

    fn client(cell: &Cell, id: u32) -> Arc<AfsClient> {
        let link = Link::new(LinkConfig::wan());
        let transport =
            SimRpcClient::new(link.forward(), Arc::clone(&cell.node), cell.stats.clone());
        let c = AfsClient::new(id, transport);
        let mut d = Dispatcher::new();
        d.register(client::AfsCallbackService(Arc::clone(&c)));
        let cb_node = ServerNode::new(&format!("afs-cb-{id}"), d, Duration::from_micros(300));
        cell.server
            .register_callback(id, SimRpcClient::new(link.reverse(), cb_node, cell.stats.clone()));
        c
    }

    #[test]
    fn whole_file_roundtrip() {
        let cell = cell();
        let c = client(&cell, 1);
        let sim = Sim::new();
        sim.spawn("a", move || {
            c.write_file("/f", b"afs data").unwrap();
            assert_eq!(c.read_file("/f").unwrap(), b"afs data");
        });
        sim.run();
    }

    #[test]
    fn promise_serves_stats_locally() {
        let cell = cell();
        let c = client(&cell, 1);
        let stats = cell.stats.clone();
        let sim = Sim::new();
        sim.spawn("a", move || {
            c.write_file("/f", b"x").unwrap();
            c.stat("/f").unwrap();
            let before = stats.snapshot().total_calls();
            for _ in 0..50 {
                c.stat("/f").unwrap();
            }
            assert_eq!(stats.snapshot().total_calls(), before, "promise absorbs stats");
        });
        sim.run();
    }

    #[test]
    fn mutation_breaks_other_clients_promises() {
        let cell = cell();
        let c1 = client(&cell, 1);
        let c2 = client(&cell, 2);
        let sim = Sim::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        sim.spawn("reader", move || {
            gvfs_netsim::sleep(Duration::from_secs(1));
            s2.lock().push(c2.read_file("/f").unwrap());
            gvfs_netsim::sleep(Duration::from_secs(10));
            // The writer's second version arrives via a broken promise.
            s2.lock().push(c2.read_file("/f").unwrap());
        });
        sim.spawn("writer", move || {
            c1.write_file("/f", b"v1").unwrap();
            gvfs_netsim::sleep(Duration::from_secs(5));
            c1.write_file("/f", b"v2").unwrap();
        });
        sim.run();
        assert_eq!(*seen.lock(), vec![b"v1".to_vec(), b"v2".to_vec()]);
    }

    #[test]
    fn link_is_atomic_between_clients() {
        let cell = cell();
        let c1 = client(&cell, 1);
        let c2 = client(&cell, 2);
        let sim = Sim::new();
        let wins = Arc::new(Mutex::new(0u32));
        for (name, c) in [("a", c1), ("b", c2)] {
            let wins = wins.clone();
            sim.spawn(name, move || {
                c.write_file(&format!("/tmp-{name}"), b"t").unwrap();
                if c.link(&format!("/tmp-{name}"), "/lockfile").is_ok() {
                    *wins.lock() += 1;
                }
            });
        }
        sim.run();
        assert_eq!(*wins.lock(), 1);
    }

    #[test]
    fn remove_then_stat_is_not_found() {
        let cell = cell();
        let c = client(&cell, 1);
        let sim = Sim::new();
        sim.spawn("a", move || {
            c.write_file("/f", b"x").unwrap();
            c.remove("/f").unwrap();
            assert!(c.stat("/f").unwrap().is_none());
        });
        sim.run();
    }
}
