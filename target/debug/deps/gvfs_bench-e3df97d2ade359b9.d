/root/repo/target/debug/deps/gvfs_bench-e3df97d2ade359b9.d: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_bench-e3df97d2ade359b9.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
