/root/repo/target/debug/deps/self_check-a73677b36abbf061.d: crates/analysis/tests/self_check.rs

/root/repo/target/debug/deps/self_check-a73677b36abbf061: crates/analysis/tests/self_check.rs

crates/analysis/tests/self_check.rs:
