/root/repo/target/debug/deps/gvfs_nfs3-a62657e91fdd3ed8.d: crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs

/root/repo/target/debug/deps/gvfs_nfs3-a62657e91fdd3ed8: crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs

crates/nfs3/src/lib.rs:
crates/nfs3/src/mount.rs:
crates/nfs3/src/procs.rs:
crates/nfs3/src/status.rs:
crates/nfs3/src/types.rs:
