/root/repo/target/debug/deps/proptest_invalidation-d6b39590a65f2e62.d: crates/core/tests/proptest_invalidation.rs

/root/repo/target/debug/deps/proptest_invalidation-d6b39590a65f2e62: crates/core/tests/proptest_invalidation.rs

crates/core/tests/proptest_invalidation.rs:
