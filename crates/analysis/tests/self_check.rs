//! Proves the analysis pass actually detects what it claims to detect:
//! each lint rule is fed a minimal fixture containing a seeded
//! violation (and a clean twin), and the model checkers are run to
//! confirm they really explore and hold on the shipped implementation.

use gvfs_analysis::lint::{lint_source, Diagnostic};
use gvfs_analysis::model;

const PROTOCOL_ENUMS: &[&str] = &["DelegationGrant", "SessionOp"];

fn lint(file: &str, src: &str) -> Vec<Diagnostic> {
    let enums: Vec<String> = PROTOCOL_ENUMS.iter().map(|s| s.to_string()).collect();
    lint_source(file, src, &enums)
}

fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn detects_guard_across_send() {
    let src = r#"
        fn recall(&self) {
            let st = self.state.lock();
            self.transport.call(proc, args);
        }
    "#;
    let diags = lint("crates/core/src/proxy/server.rs", src);
    assert_eq!(rules(&diags), ["guard-across-send"], "{diags:?}");
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains("`st`"));
}

#[test]
fn guard_released_by_scope_or_drop_is_clean() {
    let src = r#"
        fn recall(&self) {
            let actions = {
                let st = self.state.lock();
                st.deleg.access(fh)
            };
            self.transport.call(proc, actions);
            let st2 = self.state.lock();
            drop(st2);
            self.transport.call(proc, args);
        }
    "#;
    let diags = lint("crates/core/src/proxy/server.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn detects_lock_order_inversion() {
    // `state` (rank 2) is held while `disk` (rank 1) is acquired.
    let src = r#"
        fn op(&self) {
            let st = self.state.lock();
            let d = self.disk.lock();
        }
    "#;
    let diags = lint("crates/core/src/proxy/client.rs", src);
    assert_eq!(rules(&diags), ["lock-order"], "{diags:?}");
    assert_eq!(diags[0].line, 4);

    // The declared order (disk before state) is clean.
    let ok = r#"
        fn op(&self) {
            let d = self.disk.lock();
            let st = self.state.lock();
        }
    "#;
    assert!(lint("crates/core/src/proxy/client.rs", ok).is_empty());
}

#[test]
fn detects_unknown_lock_in_nesting() {
    let src = r#"
        fn op(&self) {
            let st = self.state.lock();
            let x = self.mystery.lock();
        }
    "#;
    let diags = lint("crates/core/src/proxy/client.rs", src);
    assert_eq!(rules(&diags), ["lock-order"], "{diags:?}");
    assert!(diags[0].message.contains("not in the declared lock-order table"), "{diags:?}");
}

#[test]
fn detects_unwrap_in_request_path() {
    let src = r#"
        fn handle(&self) {
            let v = decode(bytes).unwrap();
            let w = decode(bytes).expect("fine");
        }
    "#;
    let diags = lint("crates/rpc/src/x.rs", src);
    assert_eq!(rules(&diags), ["unwrap-in-request-path", "unwrap-in-request-path"]);

    // Same text outside the request-path crates is not flagged.
    assert!(lint("crates/workloads/src/x.rs", src).is_empty());

    // ... and inside a #[cfg(test)] module it is exempt.
    let test_mod = r#"
        #[cfg(test)]
        mod tests {
            fn check() { decode(bytes).unwrap(); }
        }
    "#;
    assert!(lint("crates/rpc/src/x.rs", test_mod).is_empty());
}

#[test]
fn detects_wildcard_match_on_protocol_enum() {
    let src = r#"
        fn grant_name(g: DelegationGrant) -> u32 {
            match g {
                DelegationGrant::Write => 2,
                _ => 0,
            }
        }
    "#;
    let diags = lint("crates/client/src/cache.rs", src);
    assert_eq!(rules(&diags), ["protocol-match-exhaustive"], "{diags:?}");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn exhaustive_protocol_match_is_clean() {
    let src = r#"
        fn grant_name(g: DelegationGrant) -> u32 {
            match g {
                DelegationGrant::None => 0,
                DelegationGrant::Read => 1,
                DelegationGrant::Write => 2,
                DelegationGrant::NonCacheable => 3,
            }
        }
    "#;
    assert!(lint("crates/client/src/cache.rs", src).is_empty());
}

#[test]
fn wildcard_on_non_protocol_match_is_clean() {
    // The enum reference is in an arm *body*, not a pattern: this match
    // is over something else entirely and may use `_` freely.
    let src = r#"
        fn pick(n: u32) -> DelegationGrant {
            match n {
                2 => DelegationGrant::Write,
                _ => DelegationGrant::None,
            }
        }
    "#;
    assert!(lint("crates/client/src/cache.rs", src).is_empty());
}

#[test]
fn delegation_model_explores_and_holds() {
    let report = model::check_delegation();
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(report.states >= 1_000, "only {} states", report.states);
}

#[test]
fn invalidation_model_explores_and_holds() {
    let report = model::check_invalidation();
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(report.states >= 1_000, "only {} states", report.states);
}
