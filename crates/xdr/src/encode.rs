//! The XDR encoder: an append-only, four-byte-aligned byte sink.

use crate::XdrError;

/// Serializes XDR primitives into a growable buffer.
///
/// All `put_*` methods maintain the RFC 4506 invariant that the buffer
/// length is always a multiple of four.
///
/// # Examples
///
/// ```
/// use gvfs_xdr::Encoder;
///
/// # fn main() -> Result<(), gvfs_xdr::XdrError> {
/// let mut enc = Encoder::new();
/// enc.put_u32(3);
/// enc.put_opaque(&[1, 2, 3])?; // padded to 8 bytes on the wire
/// assert_eq!(enc.len(), 4 + 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Encoder { buf: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes encoded so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an unsigned 64-bit integer ("unsigned hyper").
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a signed 64-bit integer ("hyper").
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a boolean as a full word (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(u32::from(v));
    }

    /// Appends fixed-length opaque data, zero-padding to a word boundary.
    ///
    /// The length is *not* written; the receiver must know it.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.pad();
    }

    /// Appends variable-length opaque data: a `u32` length followed by the
    /// bytes, zero-padded to a word boundary.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::LengthOverflow`] if `data.len() > u32::MAX`.
    pub fn put_opaque(&mut self, data: &[u8]) -> Result<(), XdrError> {
        let len = u32::try_from(data.len()).map_err(|_| XdrError::LengthOverflow)?;
        self.put_u32(len);
        self.put_opaque_fixed(data);
        Ok(())
    }

    /// Appends a string as variable-length opaque UTF-8.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::LengthOverflow`] if the string is longer than
    /// `u32::MAX` bytes.
    pub fn put_string(&mut self, s: &str) -> Result<(), XdrError> {
        self.put_opaque(s.as_bytes())
    }

    fn pad(&mut self) {
        while !self.buf.len().is_multiple_of(4) {
            self.buf.push(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_default_agree() {
        assert_eq!(Encoder::new().as_bytes(), Encoder::default().as_bytes());
    }

    #[test]
    fn opaque_fixed_pads_to_word() {
        let mut enc = Encoder::new();
        enc.put_opaque_fixed(&[0xaa]);
        assert_eq!(enc.as_bytes(), &[0xaa, 0, 0, 0]);
    }

    #[test]
    fn opaque_variable_writes_length_prefix() {
        let mut enc = Encoder::new();
        enc.put_opaque(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(enc.as_bytes(), &[0, 0, 0, 5, 1, 2, 3, 4, 5, 0, 0, 0]);
    }

    #[test]
    fn empty_opaque_is_just_length_word() {
        let mut enc = Encoder::new();
        enc.put_opaque(&[]).unwrap();
        assert_eq!(enc.as_bytes(), &[0, 0, 0, 0]);
    }

    #[test]
    fn length_always_word_aligned() {
        let mut enc = Encoder::new();
        for n in 0..9 {
            enc.put_opaque(&vec![7u8; n]).unwrap();
            assert_eq!(enc.len() % 4, 0, "misaligned after opaque of {n}");
        }
    }

    #[test]
    fn with_capacity_does_not_affect_contents() {
        let mut enc = Encoder::with_capacity(1024);
        assert!(enc.is_empty());
        enc.put_u32(1);
        assert_eq!(enc.len(), 4);
    }
}
