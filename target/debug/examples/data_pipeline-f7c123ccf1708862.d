/root/repo/target/debug/examples/data_pipeline-f7c123ccf1708862.d: crates/bench/../../examples/data_pipeline.rs

/root/repo/target/debug/examples/data_pipeline-f7c123ccf1708862: crates/bench/../../examples/data_pipeline.rs

crates/bench/../../examples/data_pipeline.rs:
