//! The `nfsstat3` status code.

use gvfs_vfs::VfsError;
use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};

/// NFSv3 status codes (RFC 1813 §2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Nfsstat3 {
    /// The call completed successfully.
    Ok = 0,
    /// Not owner.
    Perm = 1,
    /// No such file or directory.
    Noent = 2,
    /// I/O error.
    Io = 5,
    /// Permission denied.
    Acces = 13,
    /// File exists.
    Exist = 17,
    /// Attempt to do a cross-device hard link.
    Xdev = 18,
    /// No such device.
    Nodev = 19,
    /// Not a directory.
    Notdir = 20,
    /// Is a directory.
    Isdir = 21,
    /// Invalid argument.
    Inval = 22,
    /// File too large.
    Fbig = 27,
    /// No space left on device.
    Nospc = 28,
    /// Read-only filesystem.
    Rofs = 30,
    /// Too many hard links.
    Mlink = 31,
    /// Filename too long.
    Nametoolong = 63,
    /// Directory not empty.
    Notempty = 66,
    /// Quota exceeded.
    Dquot = 69,
    /// Stale file handle.
    Stale = 70,
    /// Too many levels of remote in path.
    Remote = 71,
    /// Illegal file handle.
    Badhandle = 10001,
    /// Update synchronization mismatch.
    NotSync = 10002,
    /// Bad readdir cookie.
    BadCookie = 10003,
    /// Operation not supported.
    Notsupp = 10004,
    /// Buffer or request too small.
    Toosmall = 10005,
    /// Server fault.
    Serverfault = 10006,
    /// Bad type for operation.
    Badtype = 10007,
    /// Request initiated, try again later.
    Jukebox = 10008,
}

impl Nfsstat3 {
    /// All defined codes, for table-driven tests.
    pub const ALL: [Nfsstat3; 28] = [
        Nfsstat3::Ok,
        Nfsstat3::Perm,
        Nfsstat3::Noent,
        Nfsstat3::Io,
        Nfsstat3::Acces,
        Nfsstat3::Exist,
        Nfsstat3::Xdev,
        Nfsstat3::Nodev,
        Nfsstat3::Notdir,
        Nfsstat3::Isdir,
        Nfsstat3::Inval,
        Nfsstat3::Fbig,
        Nfsstat3::Nospc,
        Nfsstat3::Rofs,
        Nfsstat3::Mlink,
        Nfsstat3::Nametoolong,
        Nfsstat3::Notempty,
        Nfsstat3::Dquot,
        Nfsstat3::Stale,
        Nfsstat3::Remote,
        Nfsstat3::Badhandle,
        Nfsstat3::NotSync,
        Nfsstat3::BadCookie,
        Nfsstat3::Notsupp,
        Nfsstat3::Toosmall,
        Nfsstat3::Serverfault,
        Nfsstat3::Badtype,
        Nfsstat3::Jukebox,
    ];

    /// Parses a wire code.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::InvalidDiscriminant`] for unknown codes.
    pub fn from_u32(value: u32) -> Result<Self, XdrError> {
        Self::ALL
            .iter()
            .copied()
            .find(|s| *s as u32 == value)
            .ok_or(XdrError::InvalidDiscriminant { type_name: "Nfsstat3", value })
    }

    /// `true` for [`Nfsstat3::Ok`].
    pub fn is_ok(self) -> bool {
        self == Nfsstat3::Ok
    }
}

impl Xdr for Nfsstat3 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self as u32);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Nfsstat3::from_u32(dec.get_u32()?)
    }
}

impl From<VfsError> for Nfsstat3 {
    fn from(e: VfsError) -> Self {
        match e {
            VfsError::NotFound => Nfsstat3::Noent,
            VfsError::Exists => Nfsstat3::Exist,
            VfsError::NotDir => Nfsstat3::Notdir,
            VfsError::IsDir => Nfsstat3::Isdir,
            VfsError::NotEmpty => Nfsstat3::Notempty,
            VfsError::Stale => Nfsstat3::Stale,
            VfsError::Access => Nfsstat3::Acces,
            VfsError::InvalidArgument => Nfsstat3::Inval,
            VfsError::NotSupported => Nfsstat3::Notsupp,
            VfsError::NoSpace => Nfsstat3::Nospc,
            _ => Nfsstat3::Serverfault,
        }
    }
}

impl std::fmt::Display for Nfsstat3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}({})", *self as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_codes_roundtrip() {
        for status in Nfsstat3::ALL {
            let bytes = gvfs_xdr::to_bytes(&status).unwrap();
            assert_eq!(gvfs_xdr::from_bytes::<Nfsstat3>(&bytes).unwrap(), status);
        }
    }

    #[test]
    fn unknown_code_rejected() {
        assert!(Nfsstat3::from_u32(12345).is_err());
    }

    #[test]
    fn vfs_error_mapping() {
        assert_eq!(Nfsstat3::from(VfsError::NotFound), Nfsstat3::Noent);
        assert_eq!(Nfsstat3::from(VfsError::Stale), Nfsstat3::Stale);
        assert_eq!(Nfsstat3::from(VfsError::NotEmpty), Nfsstat3::Notempty);
    }

    #[test]
    fn is_ok_only_for_ok() {
        assert!(Nfsstat3::Ok.is_ok());
        assert!(!Nfsstat3::Stale.is_ok());
    }
}
