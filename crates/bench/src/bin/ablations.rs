//! Ablations over the design choices DESIGN.md calls out (§8):
//!
//! 1. invalidation-buffer capacity vs force-invalidation rate,
//! 2. polling period (fixed vs exponential back-off) vs staleness and
//!    poll traffic,
//! 3. delegation expiration vs callback volume and tracked state,
//! 4. partial write-back threshold vs contending-reader latency,
//! 5. write-back pipelining (xid-multiplexed WRITE batches sharing one
//!    WAN round trip) vs the serial one-RPC-at-a-time fallback,
//! 6. the read path: serial all-or-nothing fetching vs gap-only miss
//!    fetching vs gap fetching plus sequential read-ahead,
//! 7. the degradation ladder: availability through a 60 s partition with
//!    bounded-staleness cache-only reads vs the hard-retry baseline,
//! 8. recall fan-out: the bounded-concurrency fan-out window vs the
//!    sequential issue-and-wait baseline at 1k delegation holders,
//! 9. peer sourcing: a cold fan-in on the star topology (every block
//!    over the WAN) vs `PEERREAD` block sourcing from advertised peers
//!    over the LAN,
//! 10. self-healing scrub: after on-disk corruption of a warm
//!     persistent cache, demand-time refetch repair vs the background
//!     scrub sweep repairing ahead of the reader.
//!
//! Run: `cargo run --release -p gvfs-bench --bin ablations [--only <name>]`
//! where `<name>` is one of `buffer-capacity`, `polling-period`,
//! `delegation-expiration`, `writeback-threshold`, `pipelining`,
//! `readahead`, `degradation`, `fanout`, `peerread`, `scrub`.

use gvfs_bench::scale::fanout_round;
use gvfs_bench::{getinv_calls, nfs_calls, print_table, rpc_meta, save_json, small_mode};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::{ConsistencyModel, DelegationConfig};
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_nfs3::proc3;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Ablation 1: a writer churns through many distinct files while a
/// reader polls with a given invalidation-buffer capacity. Small
/// buffers wrap around and degrade into force-invalidations, which
/// blow away the reader's whole attribute cache.
fn buffer_capacity_sweep() -> Vec<serde_json::Value> {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for capacity in [16usize, 64, 256, 1024] {
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::InvalidationPolling {
                period: Duration::from_secs(30),
                backoff_max: None,
            },
            invalidation_buffer: capacity,
            ..SessionConfig::default()
        })
        .clients(2)
        .wan(LinkConfig::wan())
        .establish(&sim);
        let (wt, rt) = (session.client_transport(0), session.client_transport(1));
        let root = session.root_fh();
        let stats = session.wan_stats().clone();
        let handle = session.handle();
        sim.spawn("writer", move || {
            let c = NfsClient::new(wt, root, MountOptions::noac());
            // 600 distinct files modified over 5 minutes.
            for n in 0..600 {
                c.write_file(&format!("/churn-{n:04}"), b"x").unwrap();
                gvfs_netsim::sleep(Duration::from_millis(500));
            }
        });
        sim.spawn("reader", move || {
            let c = NfsClient::new(rt, root, MountOptions::noac());
            // A working set the reader keeps cached.
            gvfs_netsim::sleep(Duration::from_secs(1));
            for n in 0..50 {
                c.write_file(&format!("/hot-{n:02}"), b"h").unwrap();
            }
            // Touch the working set regularly; refetches after a
            // force-invalidation show up as WAN GETATTR/LOOKUPs.
            for _ in 0..60 {
                for n in 0..50 {
                    let _ = c.stat(&format!("/hot-{n:02}"));
                }
                gvfs_netsim::sleep(Duration::from_secs(6));
            }
            handle.shutdown();
        });
        sim.run();
        let snap = stats.snapshot();
        let refetches = nfs_calls(&snap, proc3::GETATTR) + nfs_calls(&snap, proc3::LOOKUP);
        rows.push(vec![
            capacity.to_string(),
            getinv_calls(&snap).to_string(),
            refetches.to_string(),
        ]);
        json.push(serde_json::json!({
            "capacity": capacity,
            "getinv": getinv_calls(&snap),
            "refetch_rpcs": refetches,
        }));
    }
    print_table(
        "Ablation 1: invalidation-buffer capacity (writer churns 600 files; reader keeps 50 hot)",
        &["capacity", "GETINV", "refetch RPCs"],
        &rows,
    );
    json
}

/// Ablation 2: polling period and back-off vs staleness and traffic.
fn polling_period_sweep() -> Vec<serde_json::Value> {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (period_s, backoff) in
        [(5u64, None), (15, None), (30, None), (60, None), (15, Some(120u64))]
    {
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::InvalidationPolling {
                period: Duration::from_secs(period_s),
                backoff_max: backoff.map(Duration::from_secs),
            },
            ..SessionConfig::default()
        })
        .clients(2)
        .wan(LinkConfig::wan())
        .establish(&sim);
        let (wt, rt) = (session.client_transport(0), session.client_transport(1));
        let root = session.root_fh();
        let stats = session.wan_stats().clone();
        let handle = session.handle();
        let staleness = Arc::new(Mutex::new(Vec::new()));
        sim.spawn("writer", move || {
            let c = NfsClient::new(wt, root, MountOptions::noac());
            c.write_file("/doc", b"v0").unwrap();
            // A write every 100 s; long quiet tail exercises back-off.
            for v in 1..=5u8 {
                gvfs_netsim::sleep(Duration::from_secs(100));
                let fh = c.resolve("/doc").unwrap();
                c.write(fh, 0, &[b'v', b'0' + v]).unwrap();
            }
            gvfs_netsim::sleep(Duration::from_secs(400)); // idle tail
        });
        let st = Arc::clone(&staleness);
        sim.spawn("reader", move || {
            let c = NfsClient::new(rt, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(5));
            let mut last = Vec::new();
            let mut last_change = 0f64;
            loop {
                let now = gvfs_netsim::now().as_secs_f64();
                if now > 920.0 {
                    break;
                }
                if let Ok(data) = c.read_file("/doc") {
                    if data != last {
                        // Versions change at multiples of 100 s.
                        let written = (now / 100.0).floor() * 100.0;
                        if !last.is_empty() {
                            st.lock().push(now - written);
                        }
                        last = data;
                        last_change = now;
                    }
                }
                let _ = last_change;
                gvfs_netsim::sleep(Duration::from_secs(2));
            }
            handle.shutdown();
        });
        sim.run();
        let snap = stats.snapshot();
        let st = staleness.lock();
        let mean_staleness =
            if st.is_empty() { 0.0 } else { st.iter().sum::<f64>() / st.len() as f64 };
        let label = match backoff {
            Some(max) => format!("{period_s}s..{max}s backoff"),
            None => format!("{period_s}s fixed"),
        };
        rows.push(vec![
            label.clone(),
            format!("{:.1}", mean_staleness),
            getinv_calls(&snap).to_string(),
        ]);
        json.push(serde_json::json!({
            "period_s": period_s,
            "backoff_max_s": backoff,
            "mean_staleness_s": mean_staleness,
            "getinv": getinv_calls(&snap),
        }));
    }
    print_table(
        "Ablation 2: polling period vs staleness and GETINV traffic (900 s run, 5 updates)",
        &["policy", "mean staleness (s)", "GETINV"],
        &rows,
    );
    json
}

/// Ablation 3: delegation expiration vs callback volume (the §4.3.3
/// trade-off): short expirations churn delegations; long ones leave the
/// server tracking more state.
fn expiration_sweep() -> Vec<serde_json::Value> {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for expiration_s in [30u64, 120, 600, 3600] {
        let config = DelegationConfig {
            expiration: Duration::from_secs(expiration_s),
            renewal: Duration::from_secs((expiration_s * 8 / 10).max(1)),
            ..DelegationConfig::default()
        };
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::DelegationCallback(config),
            sweep_interval: Some(Duration::from_secs(15)),
            ..SessionConfig::default()
        })
        .clients(2)
        .wan(LinkConfig::wan())
        .establish(&sim);
        let (t0, t1) = (session.client_transport(0), session.client_transport(1));
        let root = session.root_fh();
        let stats = session.wan_stats().clone();
        let handle = session.handle();
        let session = Arc::new(session);
        let tracked = Arc::new(Mutex::new(0usize));
        let s2 = Arc::clone(&session);
        let tr = Arc::clone(&tracked);
        sim.spawn("working-set", move || {
            let c = NfsClient::new(t0, root, MountOptions::noac());
            for n in 0..100 {
                c.write_file(&format!("/ws-{n:03}"), b"w").unwrap();
            }
            // Re-read the working set every 20 s for 10 minutes.
            for _ in 0..30 {
                for n in 0..100 {
                    let _ = c.stat(&format!("/ws-{n:03}"));
                }
                gvfs_netsim::sleep(Duration::from_secs(20));
            }
            *tr.lock() = s2.proxy_server().tracked_files();
        });
        sim.spawn("occasional", move || {
            let c = NfsClient::new(t1, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(300));
            for n in 0..20 {
                if let Ok(fh) = c.resolve(&format!("/ws-{n:03}")) {
                    let _ = c.write(fh, 0, b"x");
                }
            }
            gvfs_netsim::sleep(Duration::from_secs(330));
            handle.shutdown();
        });
        sim.run();
        let snap = stats.snapshot();
        let callbacks = gvfs_bench::callback_calls(&snap);
        rows.push(vec![
            format!("{expiration_s}s"),
            callbacks.to_string(),
            nfs_calls(&snap, proc3::GETATTR).to_string(),
            tracked.lock().to_string(),
        ]);
        json.push(serde_json::json!({
            "expiration_s": expiration_s,
            "callbacks": callbacks,
            "getattr": nfs_calls(&snap, proc3::GETATTR),
            "tracked_files_at_end": *tracked.lock(),
        }));
    }
    print_table(
        "Ablation 3: delegation expiration (100-file working set + 20-file writer burst)",
        &["expiration", "CALLBACK", "GETATTR", "tracked files"],
        &rows,
    );
    json
}

/// Ablation 4: partial write-back threshold vs the latency a contending
/// reader observes when recalling a large dirty file.
fn writeback_threshold_sweep() -> Vec<serde_json::Value> {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for threshold in [1usize, 4, 16, 1 << 20] {
        let config = DelegationConfig {
            partial_writeback_threshold: threshold,
            ..DelegationConfig::default()
        };
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::DelegationCallback(config),
            write_back: true,
            ..SessionConfig::default()
        })
        .clients(2)
        .wan(LinkConfig::wan())
        .establish(&sim);
        let (t0, t1) = (session.client_transport(0), session.client_transport(1));
        let root = session.root_fh();
        let handle = session.handle();
        let latency = Arc::new(Mutex::new(0.0f64));
        sim.spawn("producer", move || {
            let c = NfsClient::new(t0, root, MountOptions::noac());
            let fh = c.write_file("/big", b"seed").unwrap();
            // 32 dirty blocks (1 MiB) under a write delegation.
            c.write(fh, 0, &vec![7u8; 32 * 32 * 1024]).unwrap();
            gvfs_netsim::sleep(Duration::from_secs(3600));
        });
        let lat = Arc::clone(&latency);
        sim.spawn("reader", move || {
            let c = NfsClient::new(t1, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(10));
            let t0 = gvfs_netsim::now();
            let fh = c.open("/big").unwrap();
            let _ = c.read(fh, 31 * 32 * 1024, 32 * 1024).unwrap();
            *lat.lock() = gvfs_netsim::now().saturating_since(t0).as_secs_f64();
            gvfs_netsim::sleep(Duration::from_secs(120)); // let the flusher drain
            handle.shutdown();
        });
        sim.run();
        let observed = *latency.lock();
        let label =
            if threshold >= 1 << 20 { "inline (∞)".to_string() } else { threshold.to_string() };
        rows.push(vec![label, format!("{:.3}", observed)]);
        json.push(serde_json::json!({
            "threshold_blocks": threshold,
            "reader_latency_s": observed,
        }));
    }
    print_table(
        "Ablation 4: partial write-back threshold (1 MiB dirty; reader wants one block)",
        &["threshold (blocks)", "reader latency (s)"],
        &rows,
    );
    json
}

/// Ablation 5: write-back pipelining. One client dirties 32 blocks
/// (4 KiB in each 32 KiB block, so the flush sends partial segments)
/// and unmounts; the flush drain is timed with pipelining on and off.
/// Pipelined, the batch pays 32 serializations and one WAN round trip;
/// serial, every block pays its own round trip.
fn pipelining_sweep() -> Vec<serde_json::Value> {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut drains = [0.0f64; 2];
    for (i, pipeline) in [false, true].into_iter().enumerate() {
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::InvalidationPolling {
                period: Duration::from_secs(30),
                backoff_max: None,
            },
            write_back: true,
            pipeline_writeback: pipeline,
            ..SessionConfig::default()
        })
        .clients(1)
        .wan(LinkConfig::wan())
        .establish(&sim);
        let t = session.client_transport(0);
        let root = session.root_fh();
        let stats = session.wan_stats().clone();
        let handle = session.handle();
        let drain = Arc::new(Mutex::new(0.0f64));
        let d2 = Arc::clone(&drain);
        sim.spawn("trickler", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            let fh = c.write_file("/trickle", b"seed").unwrap();
            for block in 0..32u64 {
                c.write(fh, block * 32 * 1024, &[9u8; 4096]).unwrap();
            }
            // Unmounting drains the delayed writes; time that drain.
            let t0 = gvfs_netsim::now();
            handle.shutdown();
            *d2.lock() = gvfs_netsim::now().saturating_since(t0).as_secs_f64();
        });
        sim.run();
        let snap = stats.snapshot();
        let drained = *drain.lock();
        drains[i] = drained;
        rows.push(vec![
            if pipeline { "pipelined" } else { "serial" }.to_string(),
            format!("{:.3}", drained),
            snap.max_in_flight().to_string(),
        ]);
        json.push(serde_json::json!({
            "pipeline": pipeline,
            "flush_drain_s": drained,
            "rpc": rpc_meta(&snap),
        }));
    }
    let speedup = drains[0] / drains[1];
    print_table(
        "Ablation 5: write-back pipelining (32 dirty blocks flushed at unmount)",
        &["mode", "flush drain (s)", "max in-flight"],
        &rows,
    );
    println!("pipelining speedup: {speedup:.1}x (target: >=2x)");
    assert!(speedup >= 2.0, "pipelined flush must drain >=2x faster, got {speedup:.2}x");
    json.push(serde_json::json!({ "speedup": speedup }));
    json
}

/// Ablation 6: the read path. A cold sequential read of a 1 MiB file
/// over a long-fat link (200 ms RTT, 100 Mbit/s — latency-bound, so
/// round trips dominate), under three arms: the pre-pipeline serial
/// path, gap-only concurrent miss fetching, and gap fetching with the
/// sequential read-ahead window.
fn readahead_sweep() -> Vec<serde_json::Value> {
    const BLOCKS: u64 = 32;
    const BLOCK: u64 = 32 * 1024;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut times = Vec::new();
    for (label, pipeline, window) in
        [("serial", false, 0usize), ("gap-only", true, 0), ("gap+readahead", true, 8)]
    {
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::InvalidationPolling {
                period: Duration::from_secs(300),
                backoff_max: None,
            },
            pipeline_read: pipeline,
            readahead_window: window,
            ..SessionConfig::default()
        })
        .clients(1)
        .wan(LinkConfig::wan().with_rtt(Duration::from_millis(200)).with_bandwidth_bps(100_000_000))
        .establish(&sim);
        let t = session.client_transport(0);
        let root = session.root_fh();
        let stats = session.wan_stats().clone();
        let handle = session.handle();
        // Seed server-side so the proxy cache is genuinely cold.
        let seed_t = gvfs_vfs::Timestamp::from_nanos(0);
        let vfs = session.vfs();
        let f = vfs.create(vfs.root(), "seq", 0o644, seed_t).unwrap();
        vfs.write(f, 0, &vec![6u8; (BLOCKS * BLOCK) as usize], seed_t).unwrap();
        let session = Arc::new(session);
        let s2 = Arc::clone(&session);
        let elapsed = Arc::new(Mutex::new(0.0f64));
        let el = Arc::clone(&elapsed);
        let read_path = Arc::new(Mutex::new(serde_json::Value::Null));
        let rp = Arc::clone(&read_path);
        sim.spawn("reader", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            let fh = c.open("/seq").unwrap();
            let t0 = gvfs_netsim::now();
            for b in 0..BLOCKS {
                let data = c.read(fh, b * BLOCK, BLOCK as u32).unwrap();
                assert_eq!(data, vec![6u8; BLOCK as usize], "block {b} content");
            }
            *el.lock() = gvfs_netsim::now().saturating_since(t0).as_secs_f64();
            *rp.lock() = gvfs_bench::read_path_json(&s2.proxy_client(0).stats());
            handle.shutdown();
        });
        sim.run();
        let snap = stats.snapshot();
        let t = *elapsed.lock();
        times.push(t);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", t),
            nfs_calls(&snap, proc3::READ).to_string(),
            snap.max_in_flight().to_string(),
        ]);
        json.push(serde_json::json!({
            "arm": label,
            "cold_sequential_s": t,
            "wan_reads": nfs_calls(&snap, proc3::READ),
            "read_path": read_path.lock().clone(),
            "rpc": rpc_meta(&snap),
        }));
    }
    let speedup = times[0] / times[2];
    print_table(
        "Ablation 6: read path (1 MiB cold sequential read, 200 ms RTT)",
        &["arm", "cold read (s)", "WAN READs", "max in-flight"],
        &rows,
    );
    println!("read-ahead speedup over serial: {speedup:.1}x (target: >=2x)");
    assert!(speedup >= 2.0, "read-ahead must beat the serial path >=2x, got {speedup:.2}x");
    json.push(serde_json::json!({ "speedup": speedup }));
    json
}

/// Ablation 7: availability under a WAN partition. A delegation client
/// with a warm cache reads one hot file every 100 ms across a scripted
/// 60 s partition of a 200 ms-RTT link. With the ladder off
/// (`max_staleness: None`) the first read whose renewal lapsed blocks in
/// the retry loop for the rest of the outage, like a hard NFS mount.
/// With the ladder on, the breaker opens after a few fast failures and
/// the session degrades to bounded-staleness cache-only reads, so the
/// reader keeps completing operations until the heal re-promotes it.
fn degradation_sweep() -> Vec<serde_json::Value> {
    const PARTITION_AT: f64 = 5.0;
    const PARTITION_END: f64 = 65.0;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut ops = [0u64; 2];
    for (i, (label, staleness)) in
        [("hard-retry", None), ("degraded", Some(Duration::from_secs(120)))].into_iter().enumerate()
    {
        let config = SessionConfig {
            model: ConsistencyModel::DelegationCallback(DelegationConfig {
                // A short renewal so the reader's delegation lapses
                // early in the outage and reads must face the WAN.
                renewal: Duration::from_secs(5),
                lease: Duration::from_secs(30),
                ..DelegationConfig::default()
            }),
            max_staleness: staleness,
            ..SessionConfig::default()
        };
        let sim = Sim::new();
        let session = Session::builder(config)
            .clients(1)
            .wan(LinkConfig::wan().with_rtt(Duration::from_millis(200)))
            .establish(&sim);
        let t = session.client_transport(0);
        let root = session.root_fh();
        let handle = session.handle();
        let session = Arc::new(session);
        let s2 = Arc::clone(&session);
        let counted = Arc::new(Mutex::new((0u64, 0u64, 0u64)));
        let ct = Arc::clone(&counted);
        sim.spawn("survivor", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            let fh = c.write_file("/hot", &[5u8; 4096]).unwrap();
            let mut in_window = 0u64;
            while gvfs_netsim::now().as_secs_f64() < 75.0 {
                if c.read(fh, 0, 4096).is_ok() {
                    let done = gvfs_netsim::now().as_secs_f64();
                    if (PARTITION_AT..PARTITION_END).contains(&done) {
                        in_window += 1;
                    }
                }
                gvfs_netsim::sleep(Duration::from_millis(100));
            }
            let stats = s2.proxy_client(0).stats();
            *ct.lock() = (in_window, s2.proxy_client(0).breaker().trips(), stats.degraded_reads);
            handle.shutdown();
        });
        {
            let session = Arc::clone(&session);
            sim.spawn("partitioner", move || {
                gvfs_netsim::sleep(Duration::from_secs_f64(PARTITION_AT));
                session.wan_link(0).set_partitioned(true);
                gvfs_netsim::sleep(Duration::from_secs_f64(PARTITION_END - PARTITION_AT));
                session.wan_link(0).set_partitioned(false);
            });
        }
        sim.run();
        let (in_window, trips, degraded_reads) = *counted.lock();
        ops[i] = in_window;
        rows.push(vec![
            label.to_string(),
            in_window.to_string(),
            trips.to_string(),
            degraded_reads.to_string(),
        ]);
        json.push(serde_json::json!({
            "arm": label,
            "reads_during_partition": in_window,
            "breaker_trips": trips,
            "degraded_reads": degraded_reads,
        }));
    }
    let gain = ops[1] as f64 / ops[0].max(1) as f64;
    print_table(
        "Ablation 7: degradation ladder (60 s partition, 200 ms RTT, hot-file reads every 100 ms)",
        &["arm", "reads in partition", "breaker trips", "degraded reads"],
        &rows,
    );
    println!("availability gain: {gain:.1}x (target: >=10x)");
    assert!(
        gain >= 10.0,
        "the ladder must complete >=10x more reads mid-partition, got {gain:.1}x"
    );
    json.push(serde_json::json!({ "availability_gain": gain }));
    json
}

/// Ablation 8: recall fan-out. A writer invalidates a file held by 1k
/// read delegations; the server must recall every holder before the
/// write completes. Sequential issue-and-wait (window 1, the pre-rework
/// shape) pays one WAN round trip per holder; the bounded window
/// overlaps them, bounded only by the in-flight cap. The window must
/// win by >=2x (in practice it wins by the window size, minus the
/// short issue phase).
fn fanout_sweep() -> Vec<serde_json::Value> {
    let clients = if small_mode() { 96 } else { 1000 };
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut round = [0.0f64; 2];
    for (i, (label, window)) in
        [("sequential-wait", 1usize), ("bounded-window", 64)].into_iter().enumerate()
    {
        let (round_s, block) = fanout_round(clients, window);
        round[i] = round_s;
        rows.push(vec![
            label.to_string(),
            window.to_string(),
            format!("{round_s:.3}"),
            format!("{:.0}", clients as f64 / round_s),
        ]);
        json.push(serde_json::json!({ "arm": label, "holders": clients, "detail": block }));
    }
    let speedup = round[0] / round[1];
    print_table(
        "Ablation 8: recall fan-out window (1k holders, one shared-file invalidation)",
        &["arm", "window", "recall round (s)", "recalls/s"],
        &rows,
    );
    println!("fan-out speedup: {speedup:.1}x (target: >=2x)");
    assert!(
        speedup >= 2.0,
        "the bounded window must beat sequential-wait >=2x at {clients} holders,          got {speedup:.2}x"
    );
    json.push(serde_json::json!({ "fanout_speedup": speedup }));
    json
}

/// Ablation 9: peer-to-peer block sourcing. A staggered fan-in of
/// clients behind 200 ms-RTT WAN links cold-reads the same shared file.
/// On the star topology every block of every client pays the WAN; with
/// `PEERREAD` on, the origin serves each client one attestation-bearing
/// READ and the remaining blocks arrive from advertised peers over the
/// LAN, so the mean per-client cold read collapses.
fn peerread_sweep() -> Vec<serde_json::Value> {
    const BLOCK: u64 = 32 * 1024;
    // Blocks stay at 16 even in small mode: with fewer the per-client
    // fixed WAN costs (open + the attestation-bearing first READ)
    // dominate both arms and flatten the ratio.
    let (clients, blocks) = if small_mode() { (6usize, 16u64) } else { (12, 16) };
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut means = [0.0f64; 2];
    for (i, (label, peer_read)) in [("star", false), ("peer", true)].into_iter().enumerate() {
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::InvalidationPolling {
                period: Duration::from_secs(300),
                backoff_max: None,
            },
            pipeline_read: true,
            readahead_window: 8,
            peer_read,
            ..SessionConfig::default()
        })
        .clients(clients)
        .wan(LinkConfig::wan().with_rtt(Duration::from_millis(200)).with_bandwidth_bps(100_000_000))
        .establish(&sim);
        let seed_t = gvfs_vfs::Timestamp::from_nanos(0);
        let vfs = session.vfs();
        let f = vfs.create(vfs.root(), "shared", 0o644, seed_t).unwrap();
        vfs.write(f, 0, &vec![3u8; (blocks * BLOCK) as usize], seed_t).unwrap();
        let stats = session.wan_stats().clone();
        let peer_stats = session.peer_stats().clone();
        let walls = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new(Mutex::new(0usize));
        for n in 0..clients {
            let t = session.client_transport(n);
            let root = session.root_fh();
            let handle = session.handle();
            let walls = Arc::clone(&walls);
            let done = Arc::clone(&done);
            sim.spawn(&format!("fan-in-{n}"), move || {
                if n > 0 {
                    // Client 0 seeds the mesh; the rest fan in with a
                    // small stagger (a couple overlap at any moment).
                    gvfs_netsim::sleep(Duration::from_millis(30_000 + n as u64 * 200));
                }
                let c = NfsClient::new(t, root, MountOptions::noac());
                let t0 = gvfs_netsim::now();
                let fh = c.open("/shared").unwrap();
                for b in 0..blocks {
                    let data = c.read(fh, b * BLOCK, BLOCK as u32).unwrap();
                    assert_eq!(data, vec![3u8; BLOCK as usize], "client {n} block {b}");
                }
                if n > 0 {
                    walls.lock().push(gvfs_netsim::now().saturating_since(t0).as_secs_f64());
                }
                let mut d = done.lock();
                *d += 1;
                if *d == clients {
                    handle.shutdown();
                }
            });
        }
        sim.run();
        let walls = walls.lock();
        let mean = walls.iter().sum::<f64>() / walls.len() as f64;
        means[i] = mean;
        let snap = stats.snapshot();
        let peerreads = gvfs_bench::peerread_calls(&peer_stats.snapshot());
        rows.push(vec![
            label.to_string(),
            format!("{mean:.3}"),
            nfs_calls(&snap, proc3::READ).to_string(),
            peerreads.to_string(),
        ]);
        json.push(serde_json::json!({
            "arm": label,
            "clients": clients,
            "mean_cold_read_s": mean,
            "wan_reads": nfs_calls(&snap, proc3::READ),
            "peerreads": peerreads,
        }));
    }
    let speedup = means[0] / means[1];
    print_table(
        "Ablation 9: peer sourcing (cold fan-in on one shared file, 200 ms RTT)",
        &["arm", "mean cold read (s)", "WAN READs", "PEERREADs"],
        &rows,
    );
    println!("peer-sourcing speedup: {speedup:.1}x (target: >=2x)");
    assert!(
        speedup >= 2.0,
        "peer sourcing must beat the star topology >=2x on the fan-in, got {speedup:.2}x"
    );
    json.push(serde_json::json!({ "speedup": speedup }));
    json
}

/// Ablation 10: self-healing scrub. One delegation client cold-reads a
/// 16-block file into its persistent cache (every block distinct, so
/// each lands in its own content-addressed chunk), then every chunk on
/// the platter is corrupted. Both arms must serve zero corrupt reads —
/// verify-on-read quarantines rot into misses either way. The arms
/// differ in *when* the damage is repaired: without the scrubber every
/// re-read pays a demand refetch over the WAN (`refetch_repairs`);
/// with it the background sweep has already refetched every block by
/// the time the reader arrives (`scrub_repairs`), and the re-read runs
/// at LAN speed off the repaired cache.
fn scrub_sweep() -> Vec<serde_json::Value> {
    const BLOCK: u64 = 32 * 1024;
    const BLOCKS: u64 = 16;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut walls = [0.0f64; 2];
    for (i, (label, period)) in
        [("demand-repair", None), ("scrub", Some(Duration::from_millis(500)))]
            .into_iter()
            .enumerate()
    {
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::DelegationCallback(DelegationConfig::default()),
            persistent_store: true,
            scrub_period: period,
            ..SessionConfig::default()
        })
        .clients(1)
        .wan(LinkConfig::wan().with_rtt(Duration::from_millis(200)).with_bandwidth_bps(100_000_000))
        .establish(&sim);
        // Seed server-side, each block distinct: 16 chunks, no dedup.
        let seed_t = gvfs_vfs::Timestamp::from_nanos(0);
        let vfs = session.vfs();
        let f = vfs.create(vfs.root(), "rotme", 0o644, seed_t).unwrap();
        let mut content = Vec::with_capacity((BLOCKS * BLOCK) as usize);
        for b in 0..BLOCKS {
            content.extend(std::iter::repeat_n(0x40 + b as u8, BLOCK as usize));
        }
        vfs.write(f, 0, &content, seed_t).unwrap();
        let disk = session.client_disk(0).expect("persistent store has a disk");
        let session = Arc::new(session);
        let s2 = Arc::clone(&session);
        let cold_t = session.client_transport(0);
        let warm_t = session.client_transport(0);
        let root = session.root_fh();
        let handle = session.handle();
        let wall = Arc::new(Mutex::new(0.0f64));
        let w2 = Arc::clone(&wall);
        let rotted = Arc::new(Mutex::new(0usize));
        let r2 = Arc::clone(&rotted);
        sim.spawn("scrub-ablation", move || {
            let c = NfsClient::new(cold_t, root, MountOptions::noac());
            let fh = c.open("/rotme").unwrap();
            for b in 0..BLOCKS {
                let data = c.read(fh, b * BLOCK, BLOCK as u32).unwrap();
                assert_eq!(data, vec![0x40 + b as u8; BLOCK as usize], "cold block {b}");
            }
            // Rot every stored chunk, one flipped byte each.
            let mut n = 0usize;
            for path in disk.list("chunks/") {
                if disk.corrupt_byte(&path, 17, 0x80) {
                    n += 1;
                }
            }
            *r2.lock() = n;
            // Give the scrub arm time for a few sweeps; the demand arm
            // idles identically so the two timelines stay comparable.
            gvfs_netsim::sleep(Duration::from_secs(10));
            // A fresh mount, so the re-reads come back through the
            // proxy's stored bytes instead of the first client's page
            // cache.
            let c = NfsClient::new(warm_t, root, MountOptions::noac());
            let fh = c.open("/rotme").unwrap();
            let t0 = gvfs_netsim::now();
            for b in 0..BLOCKS {
                let data = c.read(fh, b * BLOCK, BLOCK as u32).unwrap();
                assert_eq!(
                    data,
                    vec![0x40 + b as u8; BLOCK as usize],
                    "re-read block {b} must never see rot"
                );
            }
            *w2.lock() = gvfs_netsim::now().saturating_since(t0).as_secs_f64();
            handle.shutdown();
        });
        sim.run();
        let stats = s2.proxy_client(0).stats();
        let rotted = *rotted.lock();
        let wall_s = *wall.lock();
        walls[i] = wall_s;
        assert_eq!(rotted, BLOCKS as usize, "every chunk must take a flipped byte");
        assert_eq!(
            stats.integrity_failures, BLOCKS,
            "every rotted chunk must fail exactly one verification ({label})"
        );
        assert_eq!(stats.integrity_dirty_loss, 0, "only clean data was rotted ({label})");
        let (repairs, kind) = match period {
            None => (stats.refetch_repairs, "demand"),
            Some(_) => (stats.scrub_repairs, "scrub"),
        };
        assert_eq!(
            repairs, BLOCKS,
            "{label}: all {BLOCKS} rotted blocks must be repaired by the {kind} path, stats: {stats:?}"
        );
        rows.push(vec![
            label.to_string(),
            rotted.to_string(),
            format!("{:.3}", wall_s),
            stats.refetch_repairs.to_string(),
            stats.scrub_repairs.to_string(),
        ]);
        json.push(serde_json::json!({
            "arm": label,
            "corrupted_blocks": rotted,
            "reread_s": wall_s,
            "read_path": gvfs_bench::read_path_json(&stats),
        }));
    }
    let speedup = walls[0] / walls[1];
    print_table(
        "Ablation 10: self-healing scrub (16 corrupted blocks, 200 ms RTT)",
        &["arm", "corrupted", "re-read (s)", "demand repairs", "scrub repairs"],
        &rows,
    );
    println!("scrubbed re-read speedup over demand repair: {speedup:.1}x (target: >=2x)");
    assert!(
        speedup >= 2.0,
        "the scrubbed cache must re-read >=2x faster than demand repair, got {speedup:.2}x"
    );
    json.push(serde_json::json!({ "speedup": speedup }));
    json
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only = args.iter().position(|a| a == "--only").and_then(|i| args.get(i + 1)).cloned();
    let run = |name: &str| only.as_deref().is_none_or(|o| o == name);

    let mut doc: Vec<(String, serde_json::Value)> = Vec::new();
    doc.push(("experiment".into(), serde_json::json!("ablations")));
    if run("buffer-capacity") {
        doc.push(("buffer_capacity".into(), buffer_capacity_sweep().into()));
    }
    if run("polling-period") {
        doc.push(("polling_period".into(), polling_period_sweep().into()));
    }
    if run("delegation-expiration") {
        doc.push(("delegation_expiration".into(), expiration_sweep().into()));
    }
    if run("writeback-threshold") {
        doc.push(("writeback_threshold".into(), writeback_threshold_sweep().into()));
    }
    if run("pipelining") {
        doc.push(("pipelining".into(), pipelining_sweep().into()));
    }
    if run("readahead") {
        doc.push(("readahead".into(), readahead_sweep().into()));
    }
    if run("degradation") {
        doc.push(("degradation".into(), degradation_sweep().into()));
    }
    if run("fanout") {
        doc.push(("fanout".into(), fanout_sweep().into()));
    }
    if run("peerread") {
        doc.push(("peerread".into(), peerread_sweep().into()));
    }
    if run("scrub") {
        doc.push(("scrub".into(), scrub_sweep().into()));
    }
    // A partial run must not clobber the full committed results.
    let name = if only.is_some() { "ablations-partial.json" } else { "ablations.json" };
    save_json(name, &serde_json::Value::Object(doc));
}
