/root/repo/target/debug/deps/gvfs_afs-ee5797fc908351a6.d: crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs

/root/repo/target/debug/deps/libgvfs_afs-ee5797fc908351a6.rlib: crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs

/root/repo/target/debug/deps/libgvfs_afs-ee5797fc908351a6.rmeta: crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs

crates/afs/src/lib.rs:
crates/afs/src/client.rs:
crates/afs/src/proto.rs:
crates/afs/src/server.rs:
