//! ONC RPC over real TCP sockets.
//!
//! The simulation transport (`gvfs-netsim`) carries the same wire
//! bytes over virtual links; this module carries them over actual
//! sockets with RFC 5531 record marking, demonstrating that the whole
//! protocol stack is transport-independent. One thread per connection;
//! replies are cached in a [duplicate request cache](crate::drc) so
//! retransmitted non-idempotent calls are replayed, not re-executed.
//!
//! # Examples
//!
//! ```
//! use gvfs_rpc::dispatch::{Dispatcher, RpcService};
//! use gvfs_rpc::message::OpaqueAuth;
//! use gvfs_rpc::tcp::{TcpRpcClient, TcpRpcServer};
//!
//! struct Echo;
//! impl RpcService for Echo {
//!     fn program(&self) -> u32 { 99 }
//!     fn version(&self) -> u32 { 1 }
//!     fn call(&self, _p: u32, args: &[u8]) -> Result<Vec<u8>, gvfs_rpc::RpcError> {
//!         Ok(args.to_vec())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dispatcher = Dispatcher::new();
//! dispatcher.register(Echo);
//! let server = TcpRpcServer::bind("127.0.0.1:0", dispatcher)?;
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = TcpRpcClient::connect(addr)?;
//! let reply = client.call(99, 1, 0, OpaqueAuth::none(), vec![0, 0, 0, 7])?;
//! assert_eq!(reply, vec![0, 0, 0, 7]);
//!
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::dispatch::Dispatcher;
use crate::drc::{DrcKey, DuplicateRequestCache};
use crate::message::{CallBody, MessageBody, OpaqueAuth, RpcMessage};
use crate::record::{write_record, RecordReader, MAX_FRAGMENT};
use crate::RpcError;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A TCP RPC server: accepts connections and dispatches record-marked
/// RPC messages.
#[derive(Debug)]
pub struct TcpRpcServer {
    listener: TcpListener,
    addr: SocketAddr,
    dispatcher: Arc<Dispatcher>,
}

/// Running-server control handle; joins the acceptor on shutdown.
#[derive(Debug)]
pub struct TcpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl TcpRpcServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// I/O errors from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, dispatcher: Dispatcher) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TcpRpcServer { listener, addr, dispatcher: Arc::new(dispatcher) })
    }

    /// The bound address, captured at bind time.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the acceptor thread and returns the control handle.
    pub fn spawn(self) -> TcpServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let dispatcher = Arc::clone(&self.dispatcher);
        let listener = self.listener;
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let dispatcher = Arc::clone(&dispatcher);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &dispatcher);
                });
            }
        });
        TcpServerHandle { addr, stop, acceptor: Some(acceptor) }
    }
}

impl TcpServerHandle {
    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the acceptor thread.
    /// Existing connections finish their in-flight calls and close when
    /// their peers disconnect.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            if let Some(acceptor) = self.acceptor.take() {
                let _ = acceptor.join();
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, dispatcher: &Dispatcher) -> std::io::Result<()> {
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
    let drc = Mutex::new(DuplicateRequestCache::new(256));
    let mut reader = RecordReader::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        if reader.push(&buf[..n]).is_err() {
            return Ok(()); // hostile record; drop the connection
        }
        while let Some(record) = reader.pop() {
            let Ok(msg) = gvfs_xdr::from_bytes::<RpcMessage>(&record) else { continue };
            let MessageBody::Call(call) = msg.body else { continue };
            let key = DrcKey { client: peer.clone(), xid: msg.xid, procedure: call.procedure() };
            // The DRC lock is released before dispatching: handlers may
            // perform their own (slow) RPCs and must not run under it.
            let cached = drc.lock().lookup(&key).map(<[u8]>::to_vec);
            let reply_bytes = if let Some(bytes) = cached {
                bytes
            } else {
                let reply = dispatcher.dispatch(msg.xid, &call);
                let reply_msg = RpcMessage { xid: msg.xid, body: MessageBody::Reply(reply) };
                let Ok(bytes) = gvfs_xdr::to_bytes(&reply_msg) else {
                    // An unencodable reply is a local protocol bug; skip
                    // the record rather than kill the connection thread.
                    continue;
                };
                drc.lock().insert(key, bytes.clone());
                bytes
            };
            stream.write_all(&write_record(&reply_bytes, MAX_FRAGMENT))?;
        }
    }
}

/// A blocking TCP RPC client.
#[derive(Debug)]
pub struct TcpRpcClient {
    stream: TcpStream,
    reader: RecordReader,
    next_xid: u32,
}

impl TcpRpcClient {
    /// Connects to an RPC server.
    ///
    /// # Errors
    ///
    /// I/O errors from connecting.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Ok(TcpRpcClient {
            stream: TcpStream::connect(addr)?,
            reader: RecordReader::new(),
            next_xid: 1,
        })
    }

    /// Performs one blocking call.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`RpcError::Unreachable`]; protocol
    /// errors as their RFC 5531 statuses.
    pub fn call(
        &mut self,
        program: u32,
        version: u32,
        procedure: u32,
        credential: OpaqueAuth,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, RpcError> {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        let msg = RpcMessage {
            xid,
            body: MessageBody::Call(CallBody::new(program, version, procedure, credential, args)),
        };
        let bytes = gvfs_xdr::to_bytes(&msg)?;
        self.stream
            .write_all(&write_record(&bytes, MAX_FRAGMENT))
            .map_err(|_| RpcError::Unreachable)?;

        let mut buf = [0u8; 64 * 1024];
        loop {
            if let Some(record) = self.reader.pop() {
                let reply: RpcMessage = gvfs_xdr::from_bytes(&record)?;
                if reply.xid != xid {
                    continue; // stale reply from a previous timeout
                }
                let MessageBody::Reply(body) = reply.body else {
                    return Err(RpcError::GarbageArgs);
                };
                return body.results().map(<[u8]>::to_vec);
            }
            let n = self.stream.read(&mut buf).map_err(|_| RpcError::Unreachable)?;
            if n == 0 {
                return Err(RpcError::Unreachable);
            }
            self.reader.push(&buf[..n])?;
        }
    }
}
