/root/repo/target/release/deps/fig8-d89674152e3ebfbb.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-d89674152e3ebfbb: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
