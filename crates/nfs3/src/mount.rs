//! The MOUNT protocol, version 3 (RFC 1813 Appendix I).
//!
//! Real NFS deployments bootstrap through MOUNT: the client sends the
//! export's path and receives the root file handle. The GVFS paper's
//! sessions are "mounted in the same way as conventional NFS", so the
//! protocol is provided for faithful bootstrap (sessions may also be
//! handed the root handle directly by the middleware).

use crate::types::{Fh3, FHSIZE3};
use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};

/// The MOUNT program number.
pub const MOUNT_PROGRAM: u32 = 100005;
/// MOUNT protocol version 3 (pairs with NFSv3).
pub const MOUNT_V3: u32 = 3;
/// Maximum path length (RFC 1813 `MNTPATHLEN`).
pub const MNTPATHLEN: usize = 1024;

/// MOUNT procedure numbers.
pub mod mount_proc {
    /// Do nothing.
    pub const NULL: u32 = 0;
    /// Map a pathname to a file handle.
    pub const MNT: u32 = 1;
    /// Remove a mount entry.
    pub const UMNT: u32 = 3;
    /// Remove all of this client's mount entries.
    pub const UMNTALL: u32 = 4;
    /// List the server's exports.
    pub const EXPORT: u32 = 5;
}

/// MOUNT status codes (`mountstat3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum MountStat3 {
    /// Success.
    Ok = 0,
    /// Not owner.
    Perm = 1,
    /// No such file or directory.
    Noent = 2,
    /// I/O error.
    Io = 5,
    /// Permission denied.
    Access = 13,
    /// Not a directory.
    Notdir = 20,
    /// Invalid argument.
    Inval = 22,
    /// Filename too long.
    Nametoolong = 63,
    /// Operation not supported.
    Notsupp = 10004,
    /// Server fault.
    Serverfault = 10006,
}

impl Xdr for MountStat3 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self as u32);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(MountStat3::Ok),
            1 => Ok(MountStat3::Perm),
            2 => Ok(MountStat3::Noent),
            5 => Ok(MountStat3::Io),
            13 => Ok(MountStat3::Access),
            20 => Ok(MountStat3::Notdir),
            22 => Ok(MountStat3::Inval),
            63 => Ok(MountStat3::Nametoolong),
            10004 => Ok(MountStat3::Notsupp),
            10006 => Ok(MountStat3::Serverfault),
            value => Err(XdrError::InvalidDiscriminant { type_name: "MountStat3", value }),
        }
    }
}

/// `MNT` arguments: the export path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MntArgs {
    /// Directory path to mount.
    pub dirpath: String,
}

impl Xdr for MntArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_string(&self.dirpath)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let bytes = dec.get_opaque_bounded("dirpath", MNTPATHLEN)?;
        Ok(MntArgs { dirpath: String::from_utf8(bytes).map_err(|_| XdrError::InvalidUtf8)? })
    }
}

/// `MNT` result: the root handle and supported auth flavors on success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MntRes {
    /// The export was mounted.
    Ok {
        /// Root file handle of the export.
        fhandle: Fh3,
        /// Authentication flavors the server accepts.
        auth_flavors: Vec<u32>,
    },
    /// The mount failed.
    Fail(MountStat3),
}

impl Xdr for MntRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            MntRes::Ok { fhandle, auth_flavors } => {
                MountStat3::Ok.encode(enc)?;
                fhandle.encode(enc)?;
                auth_flavors.encode(enc)
            }
            MntRes::Fail(status) => {
                debug_assert!(*status != MountStat3::Ok);
                status.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match MountStat3::decode(dec)? {
            MountStat3::Ok => Ok(MntRes::Ok {
                fhandle: Fh3::decode(dec)?,
                auth_flavors: Vec::<u32>::decode(dec)?,
            }),
            status => Ok(MntRes::Fail(status)),
        }
    }
}

/// One entry of the `EXPORT` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportEntry {
    /// Exported directory path.
    pub dirpath: String,
    /// Groups allowed to mount it (empty = everyone).
    pub groups: Vec<String>,
}

/// `EXPORT` result: the export list (encoded as the RFC's linked list).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExportRes {
    /// The exports.
    pub exports: Vec<ExportEntry>,
}

impl Xdr for ExportRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        for export in &self.exports {
            enc.put_bool(true);
            enc.put_string(&export.dirpath)?;
            for group in &export.groups {
                enc.put_bool(true);
                enc.put_string(group)?;
            }
            enc.put_bool(false);
        }
        enc.put_bool(false);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let mut exports = Vec::new();
        while dec.get_bool()? {
            let dirpath = dec.get_string()?;
            let mut groups = Vec::new();
            while dec.get_bool()? {
                groups.push(dec.get_string()?);
            }
            exports.push(ExportEntry { dirpath, groups });
        }
        Ok(ExportRes { exports })
    }
}

/// Sanity re-export check.
pub const _FH_BOUND: usize = FHSIZE3;

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Xdr + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = gvfs_xdr::to_bytes(v).unwrap();
        assert_eq!(&gvfs_xdr::from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn mnt_roundtrip() {
        rt(&MntArgs { dirpath: "/export/grid".into() });
        rt(&MntRes::Ok { fhandle: Fh3::from_fileid(1), auth_flavors: vec![0, 1] });
        rt(&MntRes::Fail(MountStat3::Noent));
    }

    #[test]
    fn export_list_roundtrip() {
        rt(&ExportRes::default());
        rt(&ExportRes {
            exports: vec![
                ExportEntry { dirpath: "/export/grid".into(), groups: vec![] },
                ExportEntry {
                    dirpath: "/export/home".into(),
                    groups: vec!["acis".into(), "grid".into()],
                },
            ],
        });
    }

    #[test]
    fn oversized_path_rejected() {
        let long = MntArgs { dirpath: "x".repeat(MNTPATHLEN + 1) };
        let bytes = gvfs_xdr::to_bytes(&long).unwrap();
        assert!(gvfs_xdr::from_bytes::<MntArgs>(&bytes).is_err());
    }

    #[test]
    fn bad_mount_stat_rejected() {
        assert!(gvfs_xdr::from_bytes::<MountStat3>(&[0, 0, 0, 99]).is_err());
    }
}
