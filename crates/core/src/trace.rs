//! Protocol-event tracing for spec-conformance replay.
//!
//! The proxies can record every externally meaningful protocol
//! transition — delegation grants, recall rounds, in-table lease
//! revocations, GETINV validations, and the degradation ladder's
//! degrade/repromote steps — into a [`TraceBuffer`] shared across the
//! session. `gvfs-analysis -- replay` then asserts the recorded run is
//! an accepted path of the composed product model, turning every netsim
//! and chaos run into a spec-conformance run (TLA+-style trace
//! validation).
//!
//! Emission is gated behind the `trace` cargo feature: without it the
//! proxies carry no sink and no call site is compiled, so the hot path
//! pays nothing. The event types themselves are always compiled so the
//! schema (and its serialization tests) do not depend on the feature.
//!
//! # Trace schema (JSONL)
//!
//! One flat JSON object per line, `seq`-ordered, `t_ms` in virtual
//! milliseconds. The first line is always the `meta` record carrying
//! the session parameters the replay checker needs:
//!
//! ```text
//! {"seq":0,"t_ms":0,"ev":"meta","lease_ms":30000,"degrade_after_ms":2000,"max_staleness_ms":30000,"clients":3}
//! {"seq":1,"t_ms":4103,"ev":"grant","client":1,"fh":5,"kind":"write"}
//! {"seq":2,"t_ms":40210,"ev":"recall_short","client":1,"fh":5}
//! {"seq":3,"t_ms":40210,"ev":"recall_done","client":1,"fh":5,"ok":0,"pending":0}
//! ```

use gvfs_netsim::SimTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which delegation a grant or recall concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A read delegation.
    Read,
    /// A write delegation.
    Write,
    /// No delegation: the file is served non-cacheable.
    NonCacheable,
}

impl TraceKind {
    fn name(self) -> &'static str {
        match self {
            TraceKind::Read => "read",
            TraceKind::Write => "write",
            TraceKind::NonCacheable => "noncacheable",
        }
    }

    /// Parses [`TraceKind::name`] back.
    pub fn parse(s: &str) -> Option<TraceKind> {
        match s {
            "read" => Some(TraceKind::Read),
            "write" => Some(TraceKind::Write),
            "noncacheable" => Some(TraceKind::NonCacheable),
            _ => None,
        }
    }
}

/// One protocol transition, as recorded by the proxies.
///
/// Server-side events (grants, recalls, revocations) are emitted under
/// the owning delegation shard's lock, so the per-file subsequence is
/// linearized exactly as the table saw it; client-side events are
/// emitted by the client's own actors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// Session parameters; always the first record of a trace.
    Meta { lease_ms: u64, degrade_after_ms: u64, max_staleness_ms: u64, clients: u32 },
    /// The server resolved an access and granted `kind` to `client`.
    Grant { client: u32, fh: u64, kind: TraceKind },
    /// A recall callback went on the wire to `client`.
    RecallSent { client: u32, fh: u64, kind: TraceKind },
    /// A recall was short-circuited: the target's health breaker was
    /// open, so the holder is revoked as unreachable without a timeout.
    RecallShort { client: u32, fh: u64 },
    /// A recall could not be sent (no route, or the link rejected it).
    RecallFail { client: u32, fh: u64 },
    /// A recall round finished for `client`; `ok` is false when no
    /// reply was received and the holder was revoked as unreachable.
    RecallDone { client: u32, fh: u64, ok: bool, pending: u32 },
    /// The server revoked `client`'s delegation in-table because its
    /// renewal lease had lapsed (no recall round trip).
    LeaseRevoke { client: u32, fh: u64 },
    /// Post-restart recovery re-entered a write delegation reported in
    /// `client`'s dirty-file list.
    Regrant { client: u32, fh: u64 },
    /// The proxy server crashed (volatile state lost).
    ServerCrash,
    /// The restarted server finished its `RECOVER` multicast round.
    ServerRecover { answered: u32 },
    /// Proxy client `client` restarted and ran crash recovery.
    ClientCrash { client: u32 },
    /// A recall callback arrived at `client`.
    RecallRecv { client: u32, fh: u64, kind: TraceKind },
    /// `client` completed one GETINV exchange: `n` invalidations
    /// applied, `force` when the server demanded a cache-wide
    /// invalidation, `ts` the server timestamp acknowledged.
    Validate { client: u32, force: bool, n: u32, ts: u64 },
    /// `client`'s WAN breaker degraded its delegation session: the
    /// resync flag is raised and the ladder may start serving
    /// bounded-staleness reads.
    Degrade { client: u32 },
    /// `client` answered a read or getattr from cache under the
    /// bounded-staleness rung while its breaker was open.
    DegradedServe { client: u32, fh: u64 },
    /// `client` re-promoted after a heal: invalidations drained, stale
    /// delegations dropped, `discarded` dirty files thrown away as
    /// unreconcilable.
    Repromote { client: u32, discarded: u32 },
    /// `client` answered a `PEERREAD` from its clean cache (`bytes`
    /// served to the requesting peer).
    PeerServe { client: u32, fh: u64, bytes: u32 },
    /// `client` completed a peer-sourced block fetch from `peer`; `ok`
    /// is false when the peer missed or the block failed verification.
    PeerFetch { client: u32, peer: u32, fh: u64, ok: bool },
    /// `client` fell back to the origin for a block no live peer could
    /// serve (miss, breaker-open, timeout, or verification failure).
    PeerFallback { client: u32, fh: u64 },
    /// `client`'s store failed a checksum verification on `fh`: `dirty`
    /// when the quarantined bytes were unflushed local writes (explicit
    /// data loss), `served` when verification was disabled and the
    /// corrupt bytes went to the reader anyway (the `--break-scrub`
    /// knob; the replay oracle must convict such a trace).
    IntegrityFault { client: u32, fh: u64, dirty: bool, served: bool },
    /// `client`'s scrub actor re-fetched a clean extent it had
    /// quarantined, healing the rot before any reader missed on it.
    ScrubRepair { client: u32, fh: u64 },
}

impl ProtocolEvent {
    /// The record's `ev` discriminator string.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolEvent::Meta { .. } => "meta",
            ProtocolEvent::Grant { .. } => "grant",
            ProtocolEvent::RecallSent { .. } => "recall_sent",
            ProtocolEvent::RecallShort { .. } => "recall_short",
            ProtocolEvent::RecallFail { .. } => "recall_fail",
            ProtocolEvent::RecallDone { .. } => "recall_done",
            ProtocolEvent::LeaseRevoke { .. } => "lease_revoke",
            ProtocolEvent::Regrant { .. } => "regrant",
            ProtocolEvent::ServerCrash => "server_crash",
            ProtocolEvent::ServerRecover { .. } => "server_recover",
            ProtocolEvent::ClientCrash { .. } => "client_crash",
            ProtocolEvent::RecallRecv { .. } => "recall_recv",
            ProtocolEvent::Validate { .. } => "validate",
            ProtocolEvent::Degrade { .. } => "degrade",
            ProtocolEvent::DegradedServe { .. } => "degraded_serve",
            ProtocolEvent::Repromote { .. } => "repromote",
            ProtocolEvent::PeerServe { .. } => "peer_serve",
            ProtocolEvent::PeerFetch { .. } => "peer_fetch",
            ProtocolEvent::PeerFallback { .. } => "peer_fallback",
            ProtocolEvent::IntegrityFault { .. } => "integrity_fault",
            ProtocolEvent::ScrubRepair { .. } => "scrub_repair",
        }
    }
}

/// One timestamped, sequence-numbered record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global emission order (atomic counter).
    pub seq: u64,
    /// Virtual time of emission, in milliseconds.
    pub t_ms: u64,
    /// The transition.
    pub ev: ProtocolEvent,
}

impl TraceRecord {
    /// Serializes the record as one flat JSON object (the trace-line
    /// schema `gvfs-analysis -- replay` parses).
    pub fn to_json_line(&self) -> String {
        let mut s =
            format!(r#"{{"seq":{},"t_ms":{},"ev":"{}""#, self.seq, self.t_ms, self.ev.name());
        match &self.ev {
            ProtocolEvent::Meta { lease_ms, degrade_after_ms, max_staleness_ms, clients } => {
                s.push_str(&format!(
                    r#","lease_ms":{lease_ms},"degrade_after_ms":{degrade_after_ms},"max_staleness_ms":{max_staleness_ms},"clients":{clients}"#
                ));
            }
            ProtocolEvent::Grant { client, fh, kind }
            | ProtocolEvent::RecallSent { client, fh, kind }
            | ProtocolEvent::RecallRecv { client, fh, kind } => {
                s.push_str(&format!(r#","client":{client},"fh":{fh},"kind":"{}""#, kind.name()));
            }
            ProtocolEvent::RecallShort { client, fh }
            | ProtocolEvent::RecallFail { client, fh }
            | ProtocolEvent::LeaseRevoke { client, fh }
            | ProtocolEvent::Regrant { client, fh }
            | ProtocolEvent::DegradedServe { client, fh } => {
                s.push_str(&format!(r#","client":{client},"fh":{fh}"#));
            }
            ProtocolEvent::RecallDone { client, fh, ok, pending } => {
                s.push_str(&format!(
                    r#","client":{client},"fh":{fh},"ok":{},"pending":{pending}"#,
                    u32::from(*ok)
                ));
            }
            ProtocolEvent::ServerCrash => {}
            ProtocolEvent::ServerRecover { answered } => {
                s.push_str(&format!(r#","answered":{answered}"#));
            }
            ProtocolEvent::ClientCrash { client } | ProtocolEvent::Degrade { client } => {
                s.push_str(&format!(r#","client":{client}"#));
            }
            ProtocolEvent::Validate { client, force, n, ts } => {
                s.push_str(&format!(
                    r#","client":{client},"force":{},"n":{n},"ts":{ts}"#,
                    u32::from(*force)
                ));
            }
            ProtocolEvent::Repromote { client, discarded } => {
                s.push_str(&format!(r#","client":{client},"discarded":{discarded}"#));
            }
            ProtocolEvent::PeerServe { client, fh, bytes } => {
                s.push_str(&format!(r#","client":{client},"fh":{fh},"bytes":{bytes}"#));
            }
            ProtocolEvent::PeerFetch { client, peer, fh, ok } => {
                s.push_str(&format!(
                    r#","client":{client},"peer":{peer},"fh":{fh},"ok":{}"#,
                    u32::from(*ok)
                ));
            }
            ProtocolEvent::PeerFallback { client, fh }
            | ProtocolEvent::ScrubRepair { client, fh } => {
                s.push_str(&format!(r#","client":{client},"fh":{fh}"#));
            }
            ProtocolEvent::IntegrityFault { client, fh, dirty, served } => {
                s.push_str(&format!(
                    r#","client":{client},"fh":{fh},"dirty":{},"served":{}"#,
                    u32::from(*dirty),
                    u32::from(*served)
                ));
            }
        }
        s.push('}');
        s
    }
}

/// A shared, append-only buffer of protocol events for one session.
///
/// Cheap enough to record under a delegation shard lock: one mutex
/// push. The session installs one buffer into the proxy server and
/// every proxy client, so `seq` is a session-global order.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    seq: AtomicU64,
    tracebuf: Mutex<Vec<TraceRecord>>,
}

impl TraceBuffer {
    /// Creates an empty shared buffer.
    pub fn new() -> Arc<TraceBuffer> {
        Arc::new(TraceBuffer::default())
    }

    /// Appends `ev` stamped with the current virtual time. Must be
    /// called from a simulation actor; use [`TraceBuffer::record_at`]
    /// outside one (e.g. the pre-run `meta` record).
    pub fn record(&self, ev: ProtocolEvent) {
        let t_ms = gvfs_netsim::now().saturating_since(SimTime::ZERO).as_millis() as u64;
        self.record_at(t_ms, ev);
    }

    /// Appends `ev` with an explicit virtual timestamp.
    pub fn record_at(&self, t_ms: u64, ev: ProtocolEvent) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.tracebuf.lock().push(TraceRecord { seq, t_ms, ev });
    }

    /// All records so far, in emission (`seq`) order.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = self.tracebuf.lock().clone();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The whole trace as JSONL (one record per line, `seq`-ordered).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.records() {
            out.push_str(&record.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_round_trip_fields() {
        let buf = TraceBuffer::new();
        buf.record_at(
            0,
            ProtocolEvent::Meta {
                lease_ms: 30_000,
                degrade_after_ms: 2_000,
                max_staleness_ms: 30_000,
                clients: 2,
            },
        );
        buf.record_at(1, ProtocolEvent::Grant { client: 1, fh: 7, kind: TraceKind::Write });
        buf.record_at(2, ProtocolEvent::RecallDone { client: 1, fh: 7, ok: false, pending: 3 });
        buf.record_at(3, ProtocolEvent::Validate { client: 2, force: true, n: 4, ts: 9 });
        buf.record_at(
            4,
            ProtocolEvent::IntegrityFault { client: 1, fh: 7, dirty: true, served: false },
        );
        buf.record_at(5, ProtocolEvent::ScrubRepair { client: 1, fh: 7 });
        let jsonl = buf.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains(r#""ev":"meta""#) && lines[0].contains(r#""lease_ms":30000"#));
        assert!(lines[1].contains(r#""kind":"write""#));
        assert!(lines[2].contains(r#""ok":0"#) && lines[2].contains(r#""pending":3"#));
        assert!(lines[3].contains(r#""force":1"#) && lines[3].contains(r#""ts":9"#));
        assert!(
            lines[4].contains(r#""ev":"integrity_fault""#)
                && lines[4].contains(r#""dirty":1"#)
                && lines[4].contains(r#""served":0"#)
        );
        assert!(lines[5].contains(r#""ev":"scrub_repair""#) && lines[5].contains(r#""fh":7"#));
    }

    #[test]
    fn records_are_seq_ordered() {
        let buf = TraceBuffer::new();
        for i in 0..10u32 {
            buf.record_at(u64::from(i), ProtocolEvent::Degrade { client: i });
        }
        let records = buf.records();
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
