/root/repo/target/debug/deps/fig8-99fd64b8ef5a26d1.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-99fd64b8ef5a26d1: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
