//! Error type for the RPC layer.

use gvfs_xdr::XdrError;
use std::error::Error;
use std::fmt;

/// An error produced by the RPC layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RpcError {
    /// A message failed to encode or decode.
    Xdr(XdrError),
    /// The requested program is not registered with the dispatcher.
    ProgramUnavailable {
        /// The requested program number.
        program: u32,
    },
    /// The program exists but not at the requested version.
    ProgramMismatch {
        /// The requested program number.
        program: u32,
        /// Lowest supported version.
        low: u32,
        /// Highest supported version.
        high: u32,
    },
    /// The procedure number is not defined for this program.
    ProcedureUnavailable {
        /// The requested program number.
        program: u32,
        /// The requested procedure number.
        procedure: u32,
    },
    /// The arguments could not be decoded by the service.
    GarbageArgs,
    /// The credential was rejected.
    AuthError,
    /// The call could not be delivered (e.g. network partition) or timed
    /// out waiting for a reply.
    Timeout,
    /// The remote endpoint is not reachable at all.
    Unreachable,
    /// The service failed internally.
    SystemError {
        /// Human-readable detail.
        detail: String,
    },
}

impl RpcError {
    /// Whether the error is a transient transport condition (a timeout
    /// or an unreachable peer) that a retry with back-off can outwait,
    /// as opposed to a protocol-level rejection that will recur.
    ///
    /// The chaos harness injects exactly these two conditions (dropped
    /// messages surface as [`RpcError::Timeout`], partition windows as
    /// [`RpcError::Unreachable`]); retry loops in the proxy key off this
    /// predicate so injected faults and real outages take the same path.
    pub fn is_transient(&self) -> bool {
        matches!(self, RpcError::Timeout | RpcError::Unreachable)
    }

    /// Whether the error is a protocol-level rejection that will recur
    /// on retry — the complement of [`is_transient`](Self::is_transient).
    /// Retry loops must surface these to the caller immediately instead
    /// of burning back-off windows on a deterministic failure.
    pub fn is_fatal(&self) -> bool {
        !self.is_transient()
    }

    /// Whether the error is evidence of a *sick transport* and should
    /// feed the per-peer circuit breaker
    /// ([`CircuitBreaker`](crate::breaker::CircuitBreaker)).
    ///
    /// Only transport-health conditions qualify: a timeout or an
    /// unreachable peer. Protocol rejections arrive over a perfectly
    /// healthy wire — [`RpcError::ProcedureUnavailable`] in particular
    /// means the peer answered promptly that it does not implement the
    /// procedure, and must **not** trip the breaker (nor must a server
    /// that rejects arguments or credentials). Today the predicate
    /// coincides with [`is_transient`](Self::is_transient), but the
    /// contracts differ: a future retryable-but-reachable condition
    /// (e.g. server busy) would be transient without being
    /// breaker-relevant.
    pub fn trips_breaker(&self) -> bool {
        match self {
            RpcError::Timeout | RpcError::Unreachable => true,
            RpcError::Xdr(_)
            | RpcError::ProgramUnavailable { .. }
            | RpcError::ProgramMismatch { .. }
            | RpcError::ProcedureUnavailable { .. }
            | RpcError::GarbageArgs
            | RpcError::AuthError
            | RpcError::SystemError { .. } => false,
        }
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Xdr(e) => write!(f, "xdr error: {e}"),
            RpcError::ProgramUnavailable { program } => {
                write!(f, "program {program} unavailable")
            }
            RpcError::ProgramMismatch { program, low, high } => {
                write!(f, "program {program} version mismatch (supported {low}..={high})")
            }
            RpcError::ProcedureUnavailable { program, procedure } => {
                write!(f, "procedure {procedure} unavailable in program {program}")
            }
            RpcError::GarbageArgs => write!(f, "garbage arguments"),
            RpcError::AuthError => write!(f, "authentication error"),
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::Unreachable => write!(f, "remote endpoint unreachable"),
            RpcError::SystemError { detail } => write!(f, "system error: {detail}"),
        }
    }
}

impl Error for RpcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RpcError::Xdr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XdrError> for RpcError {
    fn from(e: XdrError) -> Self {
        RpcError::Xdr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_nonempty() {
        let variants = vec![
            RpcError::Xdr(XdrError::LengthOverflow),
            RpcError::ProgramUnavailable { program: 1 },
            RpcError::ProgramMismatch { program: 1, low: 2, high: 3 },
            RpcError::ProcedureUnavailable { program: 1, procedure: 9 },
            RpcError::GarbageArgs,
            RpcError::AuthError,
            RpcError::Timeout,
            RpcError::Unreachable,
            RpcError::SystemError { detail: "x".into() },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn transient_classification() {
        assert!(RpcError::Timeout.is_transient());
        assert!(RpcError::Unreachable.is_transient());
        assert!(!RpcError::GarbageArgs.is_transient());
        assert!(!RpcError::SystemError { detail: "x".into() }.is_transient());
    }

    /// Every variant, against all three predicates: transient and fatal
    /// must partition the taxonomy, and only transport-health conditions
    /// may feed the breaker.
    #[test]
    fn taxonomy_per_variant() {
        // (variant, is_transient, trips_breaker)
        let table = vec![
            (RpcError::Xdr(XdrError::LengthOverflow), false, false),
            (RpcError::ProgramUnavailable { program: 1 }, false, false),
            (RpcError::ProgramMismatch { program: 1, low: 2, high: 3 }, false, false),
            (RpcError::ProcedureUnavailable { program: 1, procedure: 9 }, false, false),
            (RpcError::GarbageArgs, false, false),
            (RpcError::AuthError, false, false),
            (RpcError::Timeout, true, true),
            (RpcError::Unreachable, true, true),
            (RpcError::SystemError { detail: "x".into() }, false, false),
        ];
        for (err, transient, breaker) in table {
            assert_eq!(err.is_transient(), transient, "is_transient({err})");
            assert_eq!(err.is_fatal(), !transient, "is_fatal({err})");
            assert_eq!(err.trips_breaker(), breaker, "trips_breaker({err})");
        }
    }

    /// The regression the taxonomy exists for: a peer answering "no such
    /// procedure" is a *healthy* peer and must never open its breaker.
    #[test]
    fn procedure_unavailable_never_trips_breaker() {
        let err = RpcError::ProcedureUnavailable { program: 200_501, procedure: 77 };
        assert!(err.is_fatal());
        assert!(!err.trips_breaker());
    }

    #[test]
    fn xdr_error_is_source() {
        let err = RpcError::from(XdrError::InvalidUtf8);
        assert!(std::error::Error::source(&err).is_some());
    }
}
