/root/repo/target/debug/deps/fig5-cc9fe2bc10d31025.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-cc9fe2bc10d31025: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
