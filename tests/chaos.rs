//! The chaos harness end to end: exact-replay determinism, clean seeds
//! across every model, and the deliberately-broken fixture (delegation
//! recalls suppressed) being caught by the oracles and shrunk to a
//! seed-only reproducer.

use gvfs_integration::chaos::{
    generate_events, run_partition_heal, run_scenario, run_with_events, shrink_failure, ModelKind,
    ScenarioConfig,
};

#[test]
fn same_seed_reproduces_identical_trace_and_verdict() {
    let cfg = ScenarioConfig::new(42, ModelKind::Delegation);
    let a = run_scenario(&cfg);
    let b = run_scenario(&cfg);
    assert_eq!(a.events, b.events, "fault-plan expansion must be deterministic");
    assert_eq!(a.history, b.history, "event traces must replay bit-identically");
    assert_eq!(a.final_tags, b.final_tags);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.trace_hash, b.trace_hash);
}

#[test]
fn different_seeds_diverge() {
    let a = run_scenario(&ScenarioConfig::new(1, ModelKind::Polling));
    let b = run_scenario(&ScenarioConfig::new(2, ModelKind::Polling));
    assert_ne!(a.trace_hash, b.trace_hash, "distinct seeds must explore distinct schedules");
}

#[test]
fn clean_seeds_pass_every_model() {
    for model in ModelKind::ALL {
        for seed in [1u64, 2, 3] {
            let report = run_scenario(&ScenarioConfig::new(seed, model));
            assert!(
                report.violations.is_empty(),
                "seed {seed} under {} must be clean, got: {:#?}\nevents: {:?}",
                model.name(),
                report.violations,
                report.events
            );
            assert!(
                report
                    .history
                    .iter()
                    .any(|e| { matches!(e, gvfs_integration::chaos::Event::WriteAcked { .. }) }),
                "the workload must actually write (seed {seed}, {})",
                model.name()
            );
        }
    }
}

#[test]
fn partition_heal_rides_the_ladder_and_loses_nothing() {
    let report = run_partition_heal(7);
    assert!(
        report.violations.is_empty(),
        "partition-heal must be clean, got: {:#?}\nhistory: {:#?}",
        report.violations,
        report.history
    );
    // The report's own checks already demand these, but assert the
    // interesting counters explicitly so a regression reads clearly.
    assert!(report.breaker_trips >= 1, "the partition must trip the WAN breaker");
    assert!(
        report.writer_stats.degraded_reads >= 3,
        "the bounded-staleness rung must serve the mid-outage reads, stats: {:?}",
        report.writer_stats
    );
    assert_eq!(report.writer_stats.repromotions, 1, "exactly one heal, one re-promotion");
    assert_eq!(
        report.writer_stats.stale_discards + report.writer_stats.corrupted_discards,
        0,
        "nothing conflicted server-side, so nothing may be discarded"
    );

    // Exact-replay determinism, scripted like the randomized scenarios.
    let again = run_partition_heal(7);
    assert_eq!(report.history, again.history, "scenario must replay bit-identically");
    assert_eq!(report.trace_hash, again.trace_hash);
}

#[test]
fn crash_restart_recovers_synced_state_and_discards_the_torn_write() {
    let report = gvfs_integration::chaos::run_crash_restart(7);
    assert!(
        report.violations.is_empty(),
        "crash-restart must be clean, got: {:#?}\nhistory: {:#?}\nstats: {:?}",
        report.violations,
        report.history,
        report.writer_stats
    );
    // The report's own checks already demand these, but assert the
    // interesting counters explicitly so a regression reads clearly.
    assert!(
        report.writer_stats.restart_warm_blocks >= 1,
        "the reopened store must serve at least /crash-1's clean block warm, stats: {:?}",
        report.writer_stats
    );
    assert!(report.corrupted.is_empty(), "nothing conflicted server-side");

    // Exact-replay determinism, scripted like the randomized scenarios.
    let again = gvfs_integration::chaos::run_crash_restart(7);
    assert_eq!(report.history, again.history, "scenario must replay bit-identically");
    assert_eq!(report.trace_hash, again.trace_hash);
}

#[test]
fn disk_corruption_self_heals_and_break_scrub_is_convicted() {
    let report = gvfs_integration::chaos::run_disk_corruption(7, false);
    assert!(
        report.violations.is_empty(),
        "disk-corruption must be clean, got: {:#?}\nhistory: {:#?}\nstats: {:?}",
        report.violations,
        report.history,
        report.reader_stats
    );
    // The report's own checks already demand these, but assert the
    // interesting counters explicitly so a regression reads clearly.
    assert!(report.corrupted_paths >= 2, "rot must land on data/ and chunks/");
    assert!(
        report.reader_stats.integrity_failures >= report.corrupted_paths as u64,
        "every rotted file must fail at least one verification, stats: {:?}",
        report.reader_stats
    );
    assert!(report.reader_stats.scrub_repairs >= 1, "the scrubber must repair ahead of demand");
    assert_eq!(report.reader_stats.integrity_dirty_loss, 0, "only clean data was rotted");

    // Exact-replay determinism, scripted like the randomized scenarios.
    let again = gvfs_integration::chaos::run_disk_corruption(7, false);
    assert_eq!(report.history, again.history, "scenario must replay bit-identically");
    assert_eq!(report.trace_hash, again.trace_hash);

    // The --break-scrub arm: with verify-on-read disabled the rot is
    // served, and the oracle must convict it.
    let broken = gvfs_integration::chaos::run_disk_corruption(7, true);
    assert!(
        !broken.violations.is_empty(),
        "a store serving rotted bytes must be convicted, stats: {:?}",
        broken.reader_stats
    );
}

#[test]
fn suppressed_recalls_are_caught_and_shrunk() {
    let mut cfg = ScenarioConfig::new(10, ModelKind::Delegation);
    cfg.suppress_recalls = true;
    // Even with zero injected faults the oracles must reject the run:
    // holders are revoked without being told, so stale reads and
    // clobbered final state follow from the workload alone.
    let report = run_with_events(&cfg, &[]);
    assert!(!report.violations.is_empty(), "the breakage fixture must be caught");
    // A full seeded fault plan on top shrinks back to the empty list —
    // the minimal reproducer is the seed alone.
    let events = generate_events(cfg.seed, cfg.clients);
    let shrunk = shrink_failure(&cfg, &events).expect("the plan must still violate");
    assert!(
        shrunk.events.is_empty(),
        "suppression needs no faults, so the plan must shrink to empty: {:?}",
        shrunk.events
    );
    assert!(!shrunk.report.violations.is_empty());
}
