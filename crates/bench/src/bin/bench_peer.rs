//! Peer-sourcing fan-in: many clients behind long-fat WAN links
//! cold-read the same small tree. Star topology (peer sourcing off)
//! pays one origin READ per client per block; with `PEERREAD` on, one
//! seeder warms the mesh and everyone else pulls blocks from advertised
//! peers over the LAN, so origin READs drop from O(clients) to O(1)
//! per block. Emits `results/BENCH_peer.json` with both topologies'
//! origin READ counts, PEERREAD volume, and the aggregated read-path
//! counters.
//!
//! Run: `cargo run --release -p gvfs-bench --bin bench_peer [--small]`

use gvfs_bench::{
    nfs_calls, peerread_calls, print_table, save_json, session_read_path, small_mode,
};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_nfs3::proc3;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const BLOCK: u64 = 32 * 1024;
/// The seeder finishes its pass well inside this window; the fan-in
/// wave starts together after it.
const FAN_IN_AT: Duration = Duration::from_secs(60);

struct RunOut {
    label: &'static str,
    doc: serde_json::Value,
    origin_reads: u64,
    peerreads: u64,
    peer_hits: u64,
    fan_in_wall_s: f64,
}

/// One topology: client 0 cold-reads the shared tree first (the
/// seeder), then every other client fans in concurrently. Returns the
/// JSON block plus the gate inputs.
fn run_config(
    label: &'static str,
    peer_read: bool,
    clients: usize,
    files: usize,
    blocks: u64,
) -> RunOut {
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(300),
            backoff_max: None,
        },
        pipeline_read: true,
        readahead_window: 8,
        peer_read,
        ..SessionConfig::default()
    })
    .clients(clients)
    .wan(LinkConfig::wan().with_rtt(Duration::from_millis(200)).with_bandwidth_bps(100_000_000))
    .establish(&sim);
    // Seed the shared tree server-side so every proxy cache starts cold.
    let seed_t = gvfs_vfs::Timestamp::from_nanos(0);
    let vfs = session.vfs();
    for f in 0..files {
        let fh = vfs.create(vfs.root(), &format!("tree{f}"), 0o644, seed_t).unwrap();
        vfs.write(fh, 0, &vec![fill(f); (blocks * BLOCK) as usize], seed_t).unwrap();
    }
    let session = Arc::new(session);
    let stats = session.wan_stats().clone();
    let before = stats.snapshot();
    let done = Arc::new(AtomicUsize::new(0));
    let wall = Arc::new(Mutex::new(0f64));
    for i in 0..clients {
        let t = session.client_transport(i);
        let root = session.root_fh();
        let handle = session.handle();
        let done = Arc::clone(&done);
        let wall = Arc::clone(&wall);
        sim.spawn(&format!("reader-{i}"), move || {
            if i > 0 {
                // Staggered fan-in: a couple of clients overlap at any
                // moment (the seeder's callback node is one 1 ms-per-op
                // server, not a cluster) and the wave is deterministic.
                gvfs_netsim::sleep(FAN_IN_AT + Duration::from_millis(i as u64 * 200));
            }
            let c = NfsClient::new(t, root, MountOptions::noac());
            for f in 0..files {
                let fh = c.open(&format!("/tree{f}")).unwrap();
                for b in 0..blocks {
                    assert_eq!(
                        c.read(fh, b * BLOCK, BLOCK as u32).unwrap(),
                        vec![fill(f); BLOCK as usize],
                        "client {i} file {f} block {b}"
                    );
                }
            }
            if done.fetch_add(1, Ordering::SeqCst) + 1 == clients {
                let fan_in_start = gvfs_netsim::SimTime::from_secs(FAN_IN_AT.as_secs());
                *wall.lock() = gvfs_netsim::now().saturating_since(fan_in_start).as_secs_f64();
                handle.shutdown();
            }
        });
    }
    sim.run();
    let delta = stats.snapshot().since(&before);
    let origin_reads = nfs_calls(&delta, proc3::READ);
    let peerreads = peerread_calls(&session.peer_stats().snapshot());
    let read_path = session_read_path(&session, clients);
    let peer_hits = (0..clients).map(|i| session.proxy_client(i).stats().peer_hits).sum();
    let fan_in_wall_s = *wall.lock();
    RunOut {
        label,
        doc: serde_json::json!({
            "config": label,
            "peer_read": peer_read,
            "origin_reads": origin_reads,
            "origin_rpcs": delta.total_calls(),
            "peerread_calls": peerreads,
            "fan_in_wall_s": fan_in_wall_s,
            "read_path": read_path,
        }),
        origin_reads,
        peerreads,
        peer_hits,
        fan_in_wall_s,
    }
}

/// Per-file fill byte so a cross-file mixup fails the data assert.
fn fill(f: usize) -> u8 {
    (f as u8) ^ 0x5a
}

fn main() {
    let (clients, files, blocks) = if small_mode() { (8, 2, 8u64) } else { (100, 4, 16u64) };
    let star = run_config("star", false, clients, files, blocks);
    let peer = run_config("peer", true, clients, files, blocks);
    let rows = [&star, &peer]
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.origin_reads.to_string(),
                r.peerreads.to_string(),
                r.peer_hits.to_string(),
                format!("{:.3}", r.fan_in_wall_s),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        &format!("BENCH_peer ({clients} clients, {files} x {blocks} x 32 KiB, 200 ms RTT)"),
        &["topology", "origin READs", "PEERREADs", "peer hits", "fan-in wall (s)"],
        &rows,
    );
    let reduction = star.origin_reads as f64 / peer.origin_reads.max(1) as f64;
    println!("\norigin READ reduction: {reduction:.1}x");
    // Sanity gates: the mesh must actually carry blocks, and the origin
    // fan-in must collapse (O(clients) -> O(1) per block; the full-size
    // run must clear the paper's 10x bar).
    assert!(peer.peer_hits > 0, "peer mesh served no blocks");
    let bar = if small_mode() { 2.0 } else { 10.0 };
    assert!(
        reduction >= bar,
        "origin READ reduction {reduction:.1}x below {bar}x (star {}, peer {})",
        star.origin_reads,
        peer.origin_reads
    );
    save_json(
        "BENCH_peer.json",
        &serde_json::json!({
            "experiment": "BENCH_peer",
            "clients": clients,
            "files": files,
            "blocks": blocks,
            "block_bytes": BLOCK,
            "link": { "rtt_ms": 200, "bandwidth_mbps": 100 },
            "origin_read_reduction": reduction,
            "configs": [star.doc, peer.doc],
        }),
    );
}
