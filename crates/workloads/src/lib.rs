//! Workload drivers reproducing the paper's evaluation programs.
//!
//! Each driver is a synthetic but structurally faithful model of the
//! corresponding application, parameterized by the numbers the paper
//! states:
//!
//! * [`make`] — the Andrew-style `make` of Tcl/Tk 8.4.5 (§5.1.1):
//!   357 C sources, 103 headers, 168 objects; repeated header
//!   cross-referencing generates the kernel client's `GETATTR` storm,
//!   and per-source temporary files give write-back its win.
//! * [`postmark`] — PostMark with the paper's Figure 5 parameters
//!   (600 files, 600 transactions, 32–640 KB, 100 subdirectories,
//!   32 KB blocks, read/append bias 9, create/delete bias 5).
//! * [`lock`] — the file-based mutual-exclusion benchmark (§5.1.2):
//!   six clients race to hard-link a lock file, hold it ten seconds,
//!   retry each second, ten acquisitions each.
//! * [`nanomos`] — the shared software repository scenario (§5.2.1):
//!   a 14 K-entry MATLAB tree with a 540-entry MPITB subtree, six WAN
//!   clients running eight iterations with a LAN administrator update
//!   between runs four and five.
//! * [`ch1d`] — the coastal-modelling producer/consumer pipeline
//!   (§5.2.2): fifteen runs, thirty new input files per run, the
//!   consumer processing the full accumulated set each run.
//!
//! Every driver takes explicit configuration with `Default` matching
//! the paper, runs inside simulation actors, and reports structured
//! results that the benchmark harness prints as the paper's tables and
//! series.

pub mod ch1d;
pub mod lock;
pub mod make;
pub mod nanomos;
pub mod postmark;
