/root/repo/target/debug/deps/gvfs_analysis-96b70c54848590e5.d: crates/analysis/src/main.rs

/root/repo/target/debug/deps/gvfs_analysis-96b70c54848590e5: crates/analysis/src/main.rs

crates/analysis/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analysis
