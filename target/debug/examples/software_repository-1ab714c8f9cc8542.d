/root/repo/target/debug/examples/software_repository-1ab714c8f9cc8542.d: crates/bench/../../examples/software_repository.rs

/root/repo/target/debug/examples/software_repository-1ab714c8f9cc8542: crates/bench/../../examples/software_repository.rs

crates/bench/../../examples/software_repository.rs:
