/root/repo/target/debug/deps/gvfs_xdr-6357de72d19007e4.d: /root/repo/clippy.toml crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_xdr-6357de72d19007e4.rmeta: /root/repo/clippy.toml crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs Cargo.toml

/root/repo/clippy.toml:
crates/xdr/src/lib.rs:
crates/xdr/src/decode.rs:
crates/xdr/src/encode.rs:
crates/xdr/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
