/root/repo/target/release/libgvfs_integration.rlib: /root/repo/crates/integration/src/lib.rs
