/root/repo/target/debug/deps/gvfs_xdr-bfa1df38f704310b.d: crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs

/root/repo/target/debug/deps/libgvfs_xdr-bfa1df38f704310b.rlib: crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs

/root/repo/target/debug/deps/libgvfs_xdr-bfa1df38f704310b.rmeta: crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs

crates/xdr/src/lib.rs:
crates/xdr/src/decode.rs:
crates/xdr/src/encode.rs:
crates/xdr/src/error.rs:
