/root/repo/target/debug/deps/gvfs_server-444f18c138cc183d.d: /root/repo/clippy.toml crates/server/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_server-444f18c138cc183d.rmeta: /root/repo/clippy.toml crates/server/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/server/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
