//! Transport-independent RPC channels with xid-multiplexed concurrency.
//!
//! The paper's proxies are explicitly multithreaded (§4.3): callbacks,
//! delayed writes and the partial write-back trickle all overlap on the
//! wire. [`RpcChannel`] is the abstraction that makes that possible over
//! any transport: [`send`](RpcChannel::send) transmits a call and returns
//! a [`PendingCall`]; [`wait`](RpcChannel::wait) claims its reply later.
//! Many xids may be in flight on one connection at once, so a batch of N
//! WRITEs costs one serialized transfer plus one round trip instead of N
//! round trips.
//!
//! Both transports implement the trait:
//!
//! * `gvfs_netsim::transport::SimRpcClient` — virtual-time actors; each
//!   in-flight call progresses on a child actor, and replies complete in
//!   link arrival order, preserving determinism.
//! * [`TcpRpcClient`](crate::tcp::TcpRpcClient) — a reader thread demuxes
//!   replies into an outstanding-call table keyed by xid.
//!
//! The blocking `call` is a thin default wrapper over send + wait.
//!
//! # Examples
//!
//! ```
//! use gvfs_rpc::channel::RpcChannel;
//! use gvfs_rpc::dispatch::{Dispatcher, RpcService};
//! use gvfs_rpc::message::OpaqueAuth;
//! use gvfs_rpc::tcp::{TcpRpcClient, TcpRpcServer};
//!
//! struct Echo;
//! impl RpcService for Echo {
//!     fn program(&self) -> u32 { 99 }
//!     fn version(&self) -> u32 { 1 }
//!     fn call(&self, _p: u32, args: &[u8]) -> Result<Vec<u8>, gvfs_rpc::RpcError> {
//!         Ok(args.to_vec())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dispatcher = Dispatcher::new();
//! dispatcher.register(Echo);
//! let server = TcpRpcServer::bind("127.0.0.1:0", dispatcher)?.spawn();
//! let client = TcpRpcClient::connect(server.addr())?;
//!
//! // Two calls in flight on one connection, claimed out of order.
//! let a = RpcChannel::send(&client, 99, 1, 0, OpaqueAuth::none(), vec![0, 0, 0, 1])?;
//! let b = RpcChannel::send(&client, 99, 1, 0, OpaqueAuth::none(), vec![0, 0, 0, 2])?;
//! assert_eq!(RpcChannel::wait(&client, b)?, vec![0, 0, 0, 2]);
//! assert_eq!(RpcChannel::wait(&client, a)?, vec![0, 0, 0, 1]);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::message::OpaqueAuth;
use crate::RpcError;
use std::sync::Arc;

/// Transport-specific completion slot for one in-flight call.
///
/// Implementations block the caller until the reply (or a transport
/// error) is available. On the simulated transport "blocking" means
/// parking the calling actor and then advancing its virtual clock to the
/// reply's arrival time.
pub trait CallSlot: Send + Sync {
    /// Blocks until this call completes and returns its raw results.
    ///
    /// # Errors
    ///
    /// Transport failures and RFC 5531 error statuses, exactly as the
    /// blocking `call` would have returned them.
    fn wait(&self) -> Result<Vec<u8>, RpcError>;
}

/// A call that has been transmitted but whose reply has not been claimed.
///
/// Returned by [`RpcChannel::send`]; redeem it with
/// [`RpcChannel::wait`] (or [`PendingCall::wait`]). Dropping a pending
/// call abandons the reply: the transport discards it when it arrives.
#[must_use = "a pending call does nothing until waited on"]
pub struct PendingCall {
    xid: u32,
    program: u32,
    procedure: u32,
    slot: Arc<dyn CallSlot>,
}

impl std::fmt::Debug for PendingCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingCall")
            .field("xid", &self.xid)
            .field("program", &self.program)
            .field("procedure", &self.procedure)
            .finish()
    }
}

impl PendingCall {
    /// Wraps a transport's completion slot. Transports call this from
    /// their [`RpcChannel::send`] implementations.
    pub fn new(xid: u32, program: u32, procedure: u32, slot: Arc<dyn CallSlot>) -> Self {
        PendingCall { xid, program, procedure, slot }
    }

    /// The transaction id assigned to this call.
    pub fn xid(&self) -> u32 {
        self.xid
    }

    /// The remote program called.
    pub fn program(&self) -> u32 {
        self.program
    }

    /// The procedure called.
    pub fn procedure(&self) -> u32 {
        self.procedure
    }

    /// Blocks until the reply arrives and returns the raw results.
    ///
    /// # Errors
    ///
    /// As for the blocking `call`: transport failures and RFC 5531
    /// error statuses.
    pub fn wait(self) -> Result<Vec<u8>, RpcError> {
        self.slot.wait()
    }
}

/// One RPC connection able to carry many concurrent calls.
///
/// The single abstraction both the simulated and the TCP transports
/// implement; upper layers (write-back flusher, recall fan-out, RECOVER
/// multicast) pipeline batches through it instead of paying one round
/// trip per call.
pub trait RpcChannel: Send + Sync {
    /// Transmits one call and returns a handle to its future reply.
    ///
    /// # Errors
    ///
    /// Transport failures detected at send time (e.g. a partitioned link
    /// or closed connection) surface as [`RpcError::Unreachable`];
    /// oversized messages as [`RpcError::SystemError`].
    fn send(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        credential: OpaqueAuth,
        args: Vec<u8>,
    ) -> Result<PendingCall, RpcError>;

    /// Claims the reply of an earlier [`send`](RpcChannel::send).
    ///
    /// Calls may be waited on in any order; replies are matched by xid.
    ///
    /// # Errors
    ///
    /// As for the blocking [`call`](RpcChannel::call).
    fn wait(&self, pending: PendingCall) -> Result<Vec<u8>, RpcError> {
        pending.wait()
    }

    /// One blocking round trip: send + wait.
    ///
    /// # Errors
    ///
    /// Transport failures ([`RpcError::Unreachable`], [`RpcError::Timeout`])
    /// and RFC 5531 error statuses from the server.
    fn call(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        credential: OpaqueAuth,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, RpcError> {
        let pending = self.send(program, version, procedure, credential, args)?;
        self.wait(pending)
    }
}

pub mod testkit {
    //! Shared cross-transport conformance suite.
    //!
    //! One set of checks exercised over every [`RpcChannel`]
    //! implementation: the netsim channel runs them inside a simulation
    //! actor, the TCP channel over a real socket. Keeping the suite in
    //! one place is what guarantees the two transports stay
    //! behavior-identical.

    use super::RpcChannel;
    use crate::dispatch::RpcService;
    use crate::message::OpaqueAuth;
    use crate::record::MAX_RECORD;
    use crate::RpcError;

    /// Program number of the [`ConformanceService`].
    pub const CONFORMANCE_PROGRAM: u32 = 424_242;
    /// Version of the [`ConformanceService`].
    pub const CONFORMANCE_VERSION: u32 = 1;
    /// Procedure: returns its arguments unchanged.
    pub const PROC_ECHO: u32 = 1;
    /// Procedure: decodes a `u32` and returns its double.
    pub const PROC_DOUBLE: u32 = 2;
    /// Procedure: decodes a `u32` block number and returns that block's
    /// deterministic content (see [`read_block_content`]) — the testkit's
    /// stand-in for a file-server READ.
    pub const PROC_READ_BLOCK: u32 = 3;
    /// Procedure: the testkit's stand-in for the proxy mesh's `PEERREAD`.
    /// Args are `(fh: u64, offset: u64, count: u32, change: u64)`; the
    /// reply is the same discriminated union the proxy protocol uses —
    /// `Ok { change, len, hash, data }` when the attested change matches
    /// [`PEER_ATTESTED_CHANGE`], `Miss` otherwise.
    pub const PROC_PEERREAD: u32 = 4;

    /// Size of the blocks served by [`PROC_READ_BLOCK`].
    pub const READ_BLOCK_SIZE: usize = 4096;

    /// The change attribute the conformance peer's copy carries; any
    /// other attested value is answered with a `Miss`.
    pub const PEER_ATTESTED_CHANGE: u64 = 0x5eed_c0de_0000_0001;
    /// Length of the virtual file the conformance peer serves.
    pub const PEER_FILE_LEN: u64 = 8 * READ_BLOCK_SIZE as u64;

    /// FNV-1a, the content-address form peer replies are verified with
    /// (same parameters as the proxy's block store).
    pub fn fnv(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The deterministic content of the conformance peer's virtual file
    /// `fh` at `[offset, offset + count)`, clamped to the attested file
    /// length — every byte derived from the handle and its absolute
    /// offset, so a swapped or torn peer reply is detected byte-for-byte.
    pub fn peer_block_content(fh: u64, offset: u64, count: u32) -> Vec<u8> {
        let end = (offset + u64::from(count)).min(PEER_FILE_LEN);
        (offset..end).map(|p| (fh.wrapping_mul(37).wrapping_add(p) % 251) as u8).collect()
    }

    /// The deterministic content of block `n`: every byte derived from
    /// the block number and its offset, so a swapped or torn reply is
    /// detected byte-for-byte.
    pub fn read_block_content(n: u32) -> Vec<u8> {
        (0..READ_BLOCK_SIZE).map(|i| (n as usize).wrapping_mul(31).wrapping_add(i) as u8).collect()
    }

    /// The service every conformance channel must dispatch to.
    #[derive(Debug, Default)]
    pub struct ConformanceService;

    impl RpcService for ConformanceService {
        fn program(&self) -> u32 {
            CONFORMANCE_PROGRAM
        }
        fn version(&self) -> u32 {
            CONFORMANCE_VERSION
        }
        fn call(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
            match procedure {
                0 => Ok(Vec::new()),
                PROC_ECHO => Ok(args.to_vec()),
                PROC_DOUBLE => {
                    let n: u32 = gvfs_xdr::from_bytes(args).map_err(|_| RpcError::GarbageArgs)?;
                    gvfs_xdr::to_bytes(&(n * 2)).map_err(RpcError::from)
                }
                PROC_READ_BLOCK => {
                    let n: u32 = gvfs_xdr::from_bytes(args).map_err(|_| RpcError::GarbageArgs)?;
                    Ok(read_block_content(n))
                }
                PROC_PEERREAD => {
                    let mut dec = gvfs_xdr::Decoder::new(args);
                    let (fh, offset, count, change) = (|| {
                        let fh = dec.get_u64()?;
                        let offset = dec.get_u64()?;
                        let count = dec.get_u32()?;
                        let change = dec.get_u64()?;
                        Ok::<_, gvfs_xdr::XdrError>((fh, offset, count, change))
                    })()
                    .map_err(|_| RpcError::GarbageArgs)?;
                    let mut enc = gvfs_xdr::Encoder::new();
                    if change == PEER_ATTESTED_CHANGE && offset < PEER_FILE_LEN {
                        let data = peer_block_content(fh, offset, count);
                        enc.put_u32(0);
                        enc.put_u64(change);
                        enc.put_u64(PEER_FILE_LEN);
                        enc.put_u64(fnv(&data));
                        enc.put_opaque(&data).map_err(|_| RpcError::GarbageArgs)?;
                    } else {
                        // A change the copy does not carry (or a range
                        // past the file) is an honest Miss.
                        enc.put_u32(1);
                    }
                    Ok(enc.into_bytes())
                }
                _ => {
                    Err(RpcError::ProcedureUnavailable { program: CONFORMANCE_PROGRAM, procedure })
                }
            }
        }
    }

    fn call(channel: &dyn RpcChannel, procedure: u32, args: Vec<u8>) -> Result<Vec<u8>, RpcError> {
        channel.call(CONFORMANCE_PROGRAM, CONFORMANCE_VERSION, procedure, OpaqueAuth::none(), args)
    }

    /// A payload round-trips byte-for-byte, including one large enough to
    /// span several record-marking fragments on stream transports.
    ///
    /// # Panics
    ///
    /// Panics when the channel misbehaves.
    pub fn check_echo_roundtrip(channel: &dyn RpcChannel) {
        let small = vec![0xab; 8];
        match call(channel, PROC_ECHO, small.clone()) {
            Ok(reply) => assert_eq!(reply, small, "small echo must round-trip"),
            Err(e) => panic!("small echo failed: {e}"),
        }
        // Two fragments and change at MAX_FRAGMENT = 1 MiB.
        let big: Vec<u8> = (0..(2 * 1024 * 1024 + 512)).map(|i| (i % 251) as u8).collect();
        match call(channel, PROC_ECHO, big.clone()) {
            Ok(reply) => assert_eq!(reply, big, "multi-fragment echo must round-trip"),
            Err(e) => panic!("multi-fragment echo failed: {e}"),
        }
    }

    /// Undecodable arguments surface as [`RpcError::GarbageArgs`].
    ///
    /// # Panics
    ///
    /// Panics when the channel misbehaves.
    pub fn check_garbage_args(channel: &dyn RpcChannel) {
        let err = match call(channel, PROC_DOUBLE, Vec::new()) {
            Ok(_) => panic!("empty args must not decode as u32"),
            Err(e) => e,
        };
        assert_eq!(err, RpcError::GarbageArgs);
    }

    /// Unknown procedures surface as [`RpcError::ProcedureUnavailable`].
    ///
    /// # Panics
    ///
    /// Panics when the channel misbehaves.
    pub fn check_unknown_procedure(channel: &dyn RpcChannel) {
        let err = match call(channel, 99, Vec::new()) {
            Ok(_) => panic!("unknown procedure must fail"),
            Err(e) => e,
        };
        assert!(
            matches!(err, RpcError::ProcedureUnavailable { .. }),
            "expected ProcedureUnavailable, got {err}"
        );
    }

    /// A call whose encoded message exceeds the record-marking limit
    /// ([`MAX_RECORD`]) is rejected at the sender instead of poisoning
    /// the connection.
    ///
    /// # Panics
    ///
    /// Panics when the channel misbehaves.
    pub fn check_oversized_record(channel: &dyn RpcChannel) {
        let err = match channel.send(
            CONFORMANCE_PROGRAM,
            CONFORMANCE_VERSION,
            PROC_ECHO,
            OpaqueAuth::none(),
            vec![0u8; MAX_RECORD],
        ) {
            Ok(_) => panic!("oversized record must be rejected at send"),
            Err(e) => e,
        };
        assert!(
            matches!(err, RpcError::SystemError { .. }),
            "expected SystemError for oversized record, got {err}"
        );
        // The connection survives and serves the next call.
        match call(channel, PROC_ECHO, vec![1, 2, 3, 4]) {
            Ok(reply) => assert_eq!(reply, vec![1, 2, 3, 4]),
            Err(e) => panic!("channel must survive an oversized send: {e}"),
        }
    }

    /// Several xids in flight at once, completed out of order: every
    /// reply must match its own call.
    ///
    /// # Panics
    ///
    /// Panics when the channel misbehaves.
    pub fn check_concurrent_xids_out_of_order(channel: &dyn RpcChannel) {
        let payloads: Vec<Vec<u8>> =
            (0u32..8).map(|i| gvfs_xdr::to_bytes(&i).unwrap_or_default()).collect();
        let mut pending = Vec::new();
        for p in &payloads {
            match channel.send(
                CONFORMANCE_PROGRAM,
                CONFORMANCE_VERSION,
                PROC_ECHO,
                OpaqueAuth::none(),
                p.clone(),
            ) {
                Ok(call) => pending.push(call),
                Err(e) => panic!("send must accept concurrent calls: {e}"),
            }
        }
        let xids: Vec<u32> = pending.iter().map(super::PendingCall::xid).collect();
        let mut unique = xids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), xids.len(), "xids must be distinct: {xids:?}");
        // Claim replies in reverse send order.
        for (pending, expect) in pending.into_iter().zip(payloads.iter()).rev() {
            match channel.wait(pending) {
                Ok(reply) => assert_eq!(&reply, expect, "reply must match its xid"),
                Err(e) => panic!("out-of-order wait failed: {e}"),
            }
        }
    }

    /// The pipelined read path's wire pattern: a burst of concurrent
    /// READs all on the wire before the first reply is claimed. Every
    /// reply must carry its own block's content, claimed both in send
    /// order (the gap fan-out) and reverse order (a demand read claiming
    /// a late prefetch first).
    ///
    /// # Panics
    ///
    /// Panics when the channel misbehaves.
    pub fn check_concurrent_read_burst(channel: &dyn RpcChannel) {
        const BURST: u32 = 8;
        for reverse in [false, true] {
            let mut pending = Vec::new();
            for n in 0..BURST {
                let args = gvfs_xdr::to_bytes(&n).unwrap_or_default();
                match channel.send(
                    CONFORMANCE_PROGRAM,
                    CONFORMANCE_VERSION,
                    PROC_READ_BLOCK,
                    OpaqueAuth::none(),
                    args,
                ) {
                    Ok(call) => pending.push((n, call)),
                    Err(e) => panic!("read burst send {n} failed: {e}"),
                }
            }
            assert_eq!(pending.len() as u32, BURST, "all READs in flight before any claim");
            if reverse {
                pending.reverse();
            }
            for (n, call) in pending {
                match channel.wait(call) {
                    Ok(reply) => {
                        assert_eq!(
                            reply,
                            read_block_content(n),
                            "block {n} reply must carry block {n} content"
                        );
                    }
                    Err(e) => panic!("read burst wait {n} failed: {e}"),
                }
            }
        }
    }

    /// The peer-sourcing wire pattern: an 8-deep burst of concurrent
    /// `PEERREAD`s all on the wire before the first reply is claimed,
    /// mixing attested hits with stale-change misses. Every hit must
    /// verify end to end — change echoed, attested length, FNV content
    /// hash over byte-exact block content — and every stale attestation
    /// must decode as a `Miss`, claimed both in send order and reverse
    /// (the proxy's demand read claiming a late peer prefetch first).
    ///
    /// # Panics
    ///
    /// Panics when the channel misbehaves.
    pub fn check_concurrent_peerread_burst(channel: &dyn RpcChannel) {
        const BURST: u32 = 8;
        for reverse in [false, true] {
            let mut pending = Vec::new();
            for n in 0..BURST {
                // Odd requests attest a change the peer's copy does not
                // carry — those must come back as honest misses.
                let hit = n % 2 == 0;
                let fh = u64::from(n / 2 + 1);
                let offset = u64::from(n) * READ_BLOCK_SIZE as u64;
                let count = READ_BLOCK_SIZE as u32;
                let change = if hit {
                    PEER_ATTESTED_CHANGE
                } else {
                    PEER_ATTESTED_CHANGE ^ u64::from(n + 1)
                };
                let mut enc = gvfs_xdr::Encoder::new();
                enc.put_u64(fh);
                enc.put_u64(offset);
                enc.put_u32(count);
                enc.put_u64(change);
                match channel.send(
                    CONFORMANCE_PROGRAM,
                    CONFORMANCE_VERSION,
                    PROC_PEERREAD,
                    OpaqueAuth::none(),
                    enc.into_bytes(),
                ) {
                    Ok(call) => pending.push((n, hit, fh, offset, count, call)),
                    Err(e) => panic!("peerread burst send {n} failed: {e}"),
                }
            }
            assert_eq!(pending.len() as u32, BURST, "all PEERREADs in flight before any claim");
            if reverse {
                pending.reverse();
            }
            for (n, hit, fh, offset, count, call) in pending {
                let reply = match channel.wait(call) {
                    Ok(reply) => reply,
                    Err(e) => panic!("peerread burst wait {n} failed: {e}"),
                };
                let mut dec = gvfs_xdr::Decoder::new(&reply);
                let disc = match dec.get_u32() {
                    Ok(d) => d,
                    Err(e) => panic!("request {n}: undecodable reply discriminant: {e}"),
                };
                if hit {
                    assert_eq!(disc, 0, "attested request {n} must be served");
                    let fields = (|| {
                        Ok::<_, gvfs_xdr::XdrError>((
                            dec.get_u64()?,
                            dec.get_u64()?,
                            dec.get_u64()?,
                            dec.get_opaque()?,
                        ))
                    })();
                    let (change, len, hash, data) = match fields {
                        Ok(f) => f,
                        Err(e) => panic!("request {n}: undecodable Ok reply: {e}"),
                    };
                    assert_eq!(change, PEER_ATTESTED_CHANGE, "request {n}: change echo");
                    assert_eq!(len, PEER_FILE_LEN, "request {n}: attested length");
                    let expect = peer_block_content(fh, offset, count);
                    assert_eq!(data, expect, "request {n}: reply must carry its own block");
                    assert_eq!(hash, fnv(&data), "request {n}: content hash must verify");
                } else {
                    assert_eq!(disc, 1, "stale attestation {n} must answer Miss, not bytes");
                    assert_eq!(dec.remaining(), 0, "a Miss carries nothing");
                }
            }
        }
    }

    /// Runs the complete conformance suite against one channel.
    ///
    /// # Panics
    ///
    /// Panics when the channel misbehaves.
    pub fn check_all(channel: &dyn RpcChannel) {
        check_echo_roundtrip(channel);
        check_garbage_args(channel);
        check_unknown_procedure(channel);
        check_oversized_record(channel);
        check_concurrent_xids_out_of_order(channel);
        check_concurrent_read_burst(channel);
        check_concurrent_peerread_burst(channel);
    }
}
