//! Figure 8: the CH1D coastal-modelling pipeline.
//!
//! A producer adds 30 input files per run; the consumer re-processes
//! the full accumulated set each run, 15 runs. On native NFS the
//! consumer's consistency checking grows linearly with the dataset;
//! GVFS with delegation/callback keeps it nearly constant (~30
//! callbacks per run).
//!
//! Run: `cargo run --release -p gvfs-bench --bin fig8 [--small]`

use gvfs_bench::{callback_calls, print_table, rpc_meta, save_json, small_mode};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_rpc::stats::RpcStats;
use gvfs_vfs::Vfs;
use gvfs_workloads::ch1d::{self, Ch1dConfig};
use parking_lot::Mutex;
use std::sync::Arc;

struct Outcome {
    runtimes: Vec<f64>,
    callbacks_per_run: Vec<f64>,
    rpc: serde_json::Value,
}

fn run_one(gvfs: bool, config: &Ch1dConfig) -> Outcome {
    let sim = Sim::new();
    let vfs = Arc::new(Vfs::new());
    ch1d::populate(&vfs);

    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    let cfg = config.clone();

    if gvfs {
        let session_config = SessionConfig {
            model: ConsistencyModel::delegation(),
            write_back: true,
            ..SessionConfig::default()
        };
        let session = Session::builder(session_config)
            .clients(2)
            .wan(LinkConfig::wan())
            .vfs(vfs)
            .establish(&sim);
        let (tp, tc) = (session.client_transport(0), session.client_transport(1));
        let root = session.root_fh();
        let stats: RpcStats = session.wan_stats().clone();
        let handle = session.handle();
        sim.spawn("pipeline", move || {
            let producer = NfsClient::new(tp, root, MountOptions::noac());
            let consumer = NfsClient::new(tc, root, MountOptions::noac());
            let mut runtimes = Vec::new();
            let mut callbacks = Vec::new();
            let mut last = stats.snapshot();
            for run in 0..cfg.runs {
                ch1d::produce_run(&producer, &cfg, run);
                let runtime = ch1d::consume_run(&consumer, &cfg, run);
                let snap = stats.snapshot();
                callbacks.push(callback_calls(&snap.since(&last)) as f64);
                last = snap;
                runtimes.push(runtime.as_secs_f64());
            }
            handle.shutdown();
            *o2.lock() = Some(Outcome {
                runtimes,
                callbacks_per_run: callbacks,
                rpc: rpc_meta(&stats.snapshot()),
            });
        });
    } else {
        let native = NativeMount::establish(2, LinkConfig::wan(), Some(vfs));
        let (tp, tc) = (native.client_transport(0), native.client_transport(1));
        let root = native.root_fh();
        let stats: RpcStats = native.stats().clone();
        sim.spawn("pipeline", move || {
            let producer = NfsClient::new(tp, root, MountOptions::default());
            let consumer = NfsClient::new(tc, root, MountOptions::default());
            let runtimes = ch1d::run_pipeline(&producer, &consumer, &cfg)
                .into_iter()
                .map(|d| d.as_secs_f64())
                .collect();
            *o2.lock() = Some(Outcome {
                runtimes,
                callbacks_per_run: Vec::new(),
                rpc: rpc_meta(&stats.snapshot()),
            });
        });
    }
    sim.run();
    let outcome = out.lock().take().expect("outcome");
    outcome
}

fn main() {
    let config = if small_mode() { Ch1dConfig::small() } else { Ch1dConfig::default() };

    let nfs = run_one(false, &config);
    let gvfs = run_one(true, &config);

    let rows: Vec<Vec<String>> = (0..config.runs)
        .map(|r| {
            vec![
                (r + 1).to_string(),
                format!("{:.1}", nfs.runtimes[r]),
                format!("{:.1}", gvfs.runtimes[r]),
                format!("{:.0}", gvfs.callbacks_per_run.get(r).copied().unwrap_or(0.0)),
            ]
        })
        .collect();
    print_table(
        "Figure 8: CH1D consumer runtime per run (seconds)",
        &["run", "NFS", "GVFS-cb", "callbacks"],
        &rows,
    );

    let last = config.runs - 1;
    println!(
        "\nRun {} speedup GVFS vs NFS: {:.1}x (paper: ~5x); NFS growth {:.1}s -> {:.1}s",
        config.runs,
        nfs.runtimes[last] / gvfs.runtimes[last],
        nfs.runtimes[0],
        nfs.runtimes[last],
    );

    save_json(
        "fig8.json",
        &serde_json::json!({
            "experiment": "fig8-ch1d",
            "runs": config.runs,
            "files_per_run": config.files_per_run,
            "nfs_runtimes_s": nfs.runtimes,
            "gvfs_runtimes_s": gvfs.runtimes,
            "gvfs_callbacks_per_run": gvfs.callbacks_per_run,
            "nfs_rpc": nfs.rpc,
            "gvfs_rpc": gvfs.rpc,
            "final_speedup": nfs.runtimes[last] / gvfs.runtimes[last],
        }),
    );
}
