//! Explicit-state model checking of the GVFS protocol state machines.
//!
//! The delegation table ([`gvfs_core::delegation::DelegationTable`]) and
//! the invalidation buffers
//! ([`gvfs_core::invalidation::InvalidationTracker`]) are the two pieces
//! of the protocol whose correctness is a *global* property — no unit
//! test of a single call sequence can show that write delegations are
//! exclusive in every interleaving. This module drives the real
//! implementations through exhaustive breadth-first exploration of
//! small configurations (2–3 clients, 1–2 files) and checks safety
//! invariants in every reachable state:
//!
//! * **write-exclusion** — a write delegation never coexists with any
//!   other delegation on the same file;
//! * **re-grantability** — from every reachable state, answering the
//!   outstanding recalls and draining pending write-backs makes the
//!   file write-delegable again (no stuck `PendingWriteback`);
//! * **getinv-soundness** — `GETINV` timestamps are monotone per
//!   client, `force_invalidate` fires exactly on first contact, client
//!   restart (null timestamp) or buffer wrap, and a non-forced reply
//!   delivers exactly the invalidations owed;
//! * **lease-bounded-blocking** — from every reachable delegation
//!   state, a conflicting write arriving one lease period after the
//!   last activity needs *no recall round trip*: every stale delegation
//!   is revoked server-side on the spot, so an unresponsive holder
//!   blocks a writer for at most one lease period;
//! * **breaker-refinement** — the WAN circuit breaker
//!   ([`gvfs_rpc::breaker::CircuitBreaker`]) refines an explicit
//!   three-state spec over every interleaving of successes, failures
//!   and clock reads, including the lazy Open → HalfOpen promotion and
//!   the capped cooldown doubling.
//!
//! The *spec* side of each machine is an explicit transition table kept
//! in the model state ([`DelegAction`], [`InvalAction`] and the
//! [`ClientSpec`] bookkeeping); the checker asserts the implementation
//! refines it. Violations carry the full action trace that reaches
//! them, so they replay as a unit test.

use gvfs_core::delegation::{DelegationKind, DelegationTable, RecallAction};
use gvfs_core::invalidation::InvalidationTracker;
use gvfs_core::protocol::DelegationGrant;
use gvfs_core::DelegationConfig;
use gvfs_netsim::SimTime;
use gvfs_nfs3::Fh3;
use gvfs_rpc::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::fmt::Write as _;
use std::time::Duration;

const T0: SimTime = SimTime::ZERO;
/// Second dirty block reported by a partial write-back answer.
const BLOCK: u64 = 32_768;
/// Bound on states explored per configuration.
const STATE_CAP: usize = 4_000;
/// Bound on exploration depth (actions from the initial state).
const DEPTH_CAP: usize = 6;

/// Outcome of checking one state machine.
#[derive(Debug, Default)]
pub struct ModelReport {
    /// Machine name (`delegation` or `invalidation`).
    pub machine: &'static str,
    /// Distinct states visited across all configurations.
    pub states: usize,
    /// Transitions executed (including duplicates into visited states).
    pub transitions: usize,
    /// Invariant violations, each with its replaying action trace.
    pub violations: Vec<String>,
}

fn fmt_trace(trace: &[String]) -> String {
    trace.join(" ; ")
}

// ---------------------------------------------------------------------
// Delegation machine
// ---------------------------------------------------------------------

/// One actionable step of the delegation spec.
#[derive(Debug, Clone)]
enum DelegAction {
    /// A client's read/write access reaches the proxy server.
    Access { client: u32, fh: Fh3, write: bool },
    /// One recall of an in-flight round is answered; `partial` answers
    /// a write recall with a dirty-block list instead of a full flush.
    Answer { round: usize, idx: usize, partial: bool },
    /// The flusher submits the next outstanding write-back block.
    Writeback { fh: Fh3 },
}

impl std::fmt::Display for DelegAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelegAction::Access { client, fh, write } => {
                write!(f, "access(client={client}, fh={fh:?}, write={write})")
            }
            DelegAction::Answer { round, idx, partial } => {
                write!(f, "answer(round={round}, recall={idx}, partial={partial})")
            }
            DelegAction::Writeback { fh } => write!(f, "writeback(fh={fh:?})"),
        }
    }
}

/// An in-flight recall round: `begin_recall` has run, the callbacks are
/// on the wire, `end_recall` runs when the last one is answered. Other
/// accesses interleave freely — exactly the window `recalling` guards.
#[derive(Debug, Clone)]
struct Round {
    fh: Fh3,
    pending: Vec<RecallAction>,
}

#[derive(Clone)]
struct DelegState {
    table: DelegationTable,
    rounds: Vec<Round>,
}

impl DelegState {
    fn fingerprint(&self) -> String {
        let mut rounds: Vec<String> = self
            .rounds
            .iter()
            .map(|r| {
                let mut recalls: Vec<_> = r
                    .pending
                    .iter()
                    .map(|a| format!("{}:{:?}:{:?}", a.client, a.fh, a.kind))
                    .collect();
                recalls.sort();
                format!("{:?}[{}]", r.fh, recalls.join(","))
            })
            .collect();
        rounds.sort();
        let mut s = String::new();
        for f in self.table.snapshot() {
            let _ = write!(s, "{:?};", f);
        }
        let _ = write!(s, "|{}", rounds.join("|"));
        s
    }

    /// Applies `action`, returning an invariant violation if one fires.
    fn apply(&mut self, action: &DelegAction) -> Option<String> {
        match *action {
            DelegAction::Access { client, fh, write } => {
                let (grant, recalls) = self.table.access(fh, client, write, Some(0), T0);
                if grant == DelegationGrant::Write
                    && self.table.held(fh, client) != Some(DelegationKind::Write)
                {
                    return Some("Write grant returned but table does not record it".into());
                }
                if !recalls.is_empty() {
                    if grant != DelegationGrant::NonCacheable {
                        return Some(format!(
                            "recalls issued but grant is {grant:?}, not NonCacheable"
                        ));
                    }
                    self.table.begin_recall(fh);
                    self.rounds.push(Round { fh, pending: recalls });
                }
            }
            DelegAction::Answer { round, idx, partial } => {
                let r = self.rounds[round].pending.remove(idx);
                let blocks = if partial && r.kind == DelegationKind::Write {
                    vec![0, BLOCK]
                } else {
                    Vec::new()
                };
                self.table.recall_done(r.fh, r.client, blocks);
                if self.rounds[round].pending.is_empty() {
                    let fh = self.rounds[round].fh;
                    self.table.end_recall(fh);
                    self.rounds.remove(round);
                }
            }
            DelegAction::Writeback { fh } => {
                let next = self
                    .table
                    .pending_writeback(fh)
                    .map(|p| (p.client, p.blocks.iter().next().copied()));
                if let Some((client, Some(block))) = next {
                    self.table.note_writeback(fh, client, block);
                }
            }
        }
        self.check_write_exclusion()
    }

    /// Invariant: write delegations are exclusive per file, and a
    /// pending write-back never has an empty block list (it would be
    /// undrainable).
    fn check_write_exclusion(&self) -> Option<String> {
        for f in self.table.snapshot() {
            let writers =
                f.sharers.iter().filter(|&&(_, d)| d == Some(DelegationKind::Write)).count();
            let delegated = f.sharers.iter().filter(|&&(_, d)| d.is_some()).count();
            if writers > 0 && delegated > 1 {
                return Some(format!(
                    "write delegation coexists with another delegation on {:?}: {:?}",
                    f.fh, f.sharers
                ));
            }
            if let Some((client, blocks)) = &f.pending {
                if blocks.is_empty() {
                    return Some(format!(
                        "pending write-back for client {client} on {:?} has no blocks",
                        f.fh
                    ));
                }
            }
        }
        None
    }

    /// Invariant: after answering every outstanding recall and draining
    /// every pending write-back, a write delegation is grantable on
    /// every file (probed once speculated opens have expired).
    fn check_regrantable(&self, files: &[Fh3], probe_client: u32) -> Option<String> {
        let mut s = self.clone();
        for round in std::mem::take(&mut s.rounds) {
            for r in &round.pending {
                s.table.recall_done(r.fh, r.client, Vec::new());
            }
            s.table.end_recall(round.fh);
        }
        for &fh in files {
            let mut spins = 0;
            while let Some((client, block)) =
                s.table.pending_writeback(fh).map(|p| (p.client, p.blocks.iter().next().copied()))
            {
                let Some(block) = block else {
                    return Some(format!("stuck pending write-back without blocks on {fh:?}"));
                };
                s.table.note_writeback(fh, client, block);
                spins += 1;
                if spins > 64 {
                    return Some(format!("pending write-back on {fh:?} does not drain"));
                }
            }
        }
        let probe_now = T0 + Duration::from_secs(1_000); // past speculation expiry
        for &fh in files {
            let mut tries = 0;
            loop {
                let (grant, recalls) = s.table.access(fh, probe_client, true, Some(0), probe_now);
                if grant == DelegationGrant::Write {
                    break;
                }
                if recalls.is_empty() {
                    return Some(format!(
                        "file {fh:?} stuck: write access yields {grant:?} with nothing to recall"
                    ));
                }
                s.table.begin_recall(fh);
                for r in &recalls {
                    s.table.recall_done(r.fh, r.client, Vec::new());
                }
                s.table.end_recall(fh);
                tries += 1;
                if tries > 8 {
                    return Some(format!("file {fh:?} not re-grantable after 8 recall rounds"));
                }
            }
        }
        None
    }

    /// Invariant: once every outstanding recall is answered and every
    /// pending write-back drained, a conflicting write arriving one
    /// lease period after the last activity needs *no recall round
    /// trip* — lapsed delegations are revoked server-side on the spot
    /// (`DelegationTable::access` lease revocation), so an unresponsive
    /// holder blocks a writer for at most one lease period. Open
    /// speculation may still withhold the write *delegation* (that is
    /// `expiration`'s business), but no stale delegation may survive
    /// the probe.
    fn check_lease_expiry(&self, files: &[Fh3]) -> Option<String> {
        // A client id outside the model's set: a brand-new writer.
        const PROBE: u32 = 99;
        let mut s = self.clone();
        for round in std::mem::take(&mut s.rounds) {
            for r in &round.pending {
                s.table.recall_done(r.fh, r.client, Vec::new());
            }
            s.table.end_recall(round.fh);
        }
        for &fh in files {
            let mut spins = 0;
            while let Some((client, block)) =
                s.table.pending_writeback(fh).map(|p| (p.client, p.blocks.iter().next().copied()))
            {
                let Some(block) = block else {
                    return Some(format!("stuck pending write-back without blocks on {fh:?}"));
                };
                s.table.note_writeback(fh, client, block);
                spins += 1;
                if spins > 64 {
                    return Some(format!("pending write-back on {fh:?} does not drain"));
                }
            }
        }
        // All model activity happens at T0, so one lease later every
        // delegation's renewal lease has lapsed (but open speculation,
        // with its longer `expiration`, has not).
        let late = T0 + DelegationConfig::default().lease + Duration::from_secs(1);
        for &fh in files {
            let (grant, recalls) = s.table.access(fh, PROBE, true, Some(0), late);
            if !recalls.is_empty() {
                return Some(format!(
                    "write at lease expiry on {fh:?} still issues a recall round trip: {:?}",
                    recalls.iter().map(|r| (r.client, r.kind)).collect::<Vec<_>>()
                ));
            }
            if grant != DelegationGrant::Write {
                // Blocking past the lease may only come from open
                // speculation, never from a delegation that should have
                // been lease-revoked.
                if let Some(f) = s.table.snapshot().iter().find(|f| f.fh == fh) {
                    if f.sharers.iter().any(|&(c, d)| c != PROBE && d.is_some()) {
                        return Some(format!(
                            "stale delegation survived lease expiry on {fh:?}: {:?}",
                            f.sharers
                        ));
                    }
                }
            }
        }
        None
    }

    fn enabled(&self, clients: &[u32], files: &[Fh3]) -> Vec<DelegAction> {
        let mut acts = Vec::new();
        for &client in clients {
            for &fh in files {
                for write in [false, true] {
                    acts.push(DelegAction::Access { client, fh, write });
                }
            }
        }
        for (round, r) in self.rounds.iter().enumerate() {
            for (idx, recall) in r.pending.iter().enumerate() {
                acts.push(DelegAction::Answer { round, idx, partial: false });
                if recall.kind == DelegationKind::Write {
                    acts.push(DelegAction::Answer { round, idx, partial: true });
                }
            }
        }
        for &fh in files {
            if self.table.pending_writeback(fh).is_some() {
                acts.push(DelegAction::Writeback { fh });
            }
        }
        acts
    }
}

/// Exhaustively checks the delegation machine over small configurations.
pub fn check_delegation() -> ModelReport {
    let mut report = ModelReport { machine: "delegation", ..ModelReport::default() };
    for &(n_clients, n_files) in &[(2u32, 1u64), (2, 2), (3, 1), (3, 2)] {
        let clients: Vec<u32> = (1..=n_clients).collect();
        let files: Vec<Fh3> = (1..=n_files).map(Fh3::from_fileid).collect();
        let label = format!("delegation[clients={n_clients},files={n_files}]");

        let initial = DelegState {
            table: DelegationTable::new(DelegationConfig::default()),
            rounds: Vec::new(),
        };
        let mut visited: HashSet<String> = HashSet::new();
        visited.insert(initial.fingerprint());
        let mut queue: VecDeque<(DelegState, Vec<String>, usize)> = VecDeque::new();
        queue.push_back((initial, Vec::new(), 0));
        let mut states = 1usize;

        while let Some((state, trace, depth)) = queue.pop_front() {
            if depth >= DEPTH_CAP || states >= STATE_CAP {
                continue;
            }
            for action in state.enabled(&clients, &files) {
                let mut next = state.clone();
                let mut next_trace = trace.clone();
                next_trace.push(action.to_string());
                report.transitions += 1;
                if let Some(v) = next.apply(&action) {
                    report
                        .violations
                        .push(format!("{label}: {v}\n  trace: {}", fmt_trace(&next_trace)));
                    continue;
                }
                let fp = next.fingerprint();
                if visited.insert(fp) {
                    states += 1;
                    if let Some(v) = next.check_regrantable(&files, clients[0]) {
                        report
                            .violations
                            .push(format!("{label}: {v}\n  trace: {}", fmt_trace(&next_trace)));
                    }
                    if let Some(v) = next.check_lease_expiry(&files) {
                        report
                            .violations
                            .push(format!("{label}: {v}\n  trace: {}", fmt_trace(&next_trace)));
                    }
                    queue.push_back((next, next_trace, depth + 1));
                }
            }
        }
        report.states += states;
    }
    report
}

// ---------------------------------------------------------------------
// Invalidation machine
// ---------------------------------------------------------------------

/// One actionable step of the invalidation spec.
#[derive(Debug, Clone)]
enum InvalAction {
    /// `writer` modifies `fh` (the server records it for everyone else).
    Modify { writer: u32, fh: Fh3 },
    /// `client` polls with its last acknowledged timestamp.
    Getinv { client: u32 },
    /// `client` crashes and loses its timestamp (next poll sends null).
    ClientCrash { client: u32 },
    /// The server restarts: all buffers are lost, clients keep their
    /// timestamps.
    ServerRestart,
}

impl std::fmt::Display for InvalAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalAction::Modify { writer, fh } => write!(f, "modify(writer={writer}, fh={fh:?})"),
            InvalAction::Getinv { client } => write!(f, "getinv(client={client})"),
            InvalAction::ClientCrash { client } => write!(f, "crash(client={client})"),
            InvalAction::ServerRestart => write!(f, "server_restart"),
        }
    }
}

/// The spec's view of one client: what the protocol *owes* it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ClientSpec {
    /// Timestamp the client would send on its next poll.
    ts: Option<u64>,
    /// Whether the server currently has a buffer for this client.
    registered: bool,
    /// Files modified by others since the client's last drain.
    owed: BTreeSet<Fh3>,
    /// An owed entry was discarded by wrap-around: the next reply must
    /// force-invalidate.
    wrapped: bool,
}

#[derive(Clone)]
struct InvalState {
    tracker: InvalidationTracker,
    capacity: usize,
    spec: BTreeMap<u32, ClientSpec>,
}

impl InvalState {
    fn fingerprint(&self) -> String {
        format!("{:?}|{}|{:?}", self.tracker.snapshot(), self.tracker.now(), self.spec)
    }

    fn apply(&mut self, action: &InvalAction) -> Option<String> {
        match *action {
            InvalAction::Modify { writer, fh } => {
                self.tracker.record_modification(fh, writer);
                for (&client, cs) in &mut self.spec {
                    if client == writer || !cs.registered {
                        continue;
                    }
                    if cs.owed.insert(fh) && cs.owed.len() > self.capacity {
                        cs.wrapped = true;
                    }
                }
                None
            }
            InvalAction::Getinv { client } => {
                let cs = self.spec.get_mut(&client).expect("model client");
                let res = self.tracker.getinv(client, cs.ts);
                // Timestamps are monotone per client within a server
                // epoch; a forced reply re-bootstraps the client (it
                // discards its cache and its old timestamp with it), so
                // only non-forced replies must not regress.
                if let (Some(prev), false) = (cs.ts, res.force_invalidate) {
                    if res.timestamp < prev {
                        return Some(format!(
                            "GETINV timestamp regressed for client {client}: {} < {prev}",
                            res.timestamp
                        ));
                    }
                }
                let expect_force = !cs.registered || cs.ts.is_none() || cs.wrapped;
                if res.force_invalidate != expect_force {
                    return Some(format!(
                        "client {client}: force_invalidate={} but spec expects {expect_force} \
                         (registered={}, ts={:?}, wrapped={})",
                        res.force_invalidate, cs.registered, cs.ts, cs.wrapped
                    ));
                }
                if !res.force_invalidate {
                    if res.poll_again {
                        return Some(format!(
                            "client {client}: poll_again in a configuration far below the \
                             pagination threshold"
                        ));
                    }
                    let got: BTreeSet<Fh3> = res.handles.iter().copied().collect();
                    if got.len() != res.handles.len() {
                        return Some(format!(
                            "client {client}: duplicate handles in a GETINV reply (coalescing \
                             violated): {:?}",
                            res.handles
                        ));
                    }
                    if got != cs.owed {
                        return Some(format!(
                            "client {client}: GETINV delivered {got:?} but spec owes {:?}",
                            cs.owed
                        ));
                    }
                }
                // Forced or not, after this reply the client is square:
                // a force makes it invalidate everything it caches.
                *cs = ClientSpec {
                    ts: Some(res.timestamp),
                    registered: true,
                    owed: BTreeSet::new(),
                    wrapped: false,
                };
                None
            }
            InvalAction::ClientCrash { client } => {
                let cs = self.spec.get_mut(&client).expect("model client");
                cs.ts = None;
                None
            }
            InvalAction::ServerRestart => {
                self.tracker = InvalidationTracker::new(self.capacity);
                for cs in self.spec.values_mut() {
                    cs.registered = false;
                    cs.wrapped = false;
                    cs.owed.clear();
                }
                None
            }
        }
    }

    fn enabled(&self, files: &[Fh3]) -> Vec<InvalAction> {
        let mut acts = Vec::new();
        for &client in self.spec.keys() {
            for &fh in files {
                acts.push(InvalAction::Modify { writer: client, fh });
            }
            acts.push(InvalAction::Getinv { client });
            acts.push(InvalAction::ClientCrash { client });
        }
        acts.push(InvalAction::ServerRestart);
        acts
    }
}

/// Exhaustively checks the invalidation machine over small
/// configurations, including capacities low enough to exercise wrap.
pub fn check_invalidation() -> ModelReport {
    let mut report = ModelReport { machine: "invalidation", ..ModelReport::default() };
    for &(n_clients, capacity) in &[(2u32, 1usize), (2, 2), (3, 2)] {
        let files: Vec<Fh3> = (1..=2u64).map(Fh3::from_fileid).collect();
        let label = format!("invalidation[clients={n_clients},capacity={capacity}]");
        let initial = InvalState {
            tracker: InvalidationTracker::new(capacity),
            capacity,
            spec: (1..=n_clients)
                .map(|c| {
                    (
                        c,
                        ClientSpec {
                            ts: None,
                            registered: false,
                            owed: BTreeSet::new(),
                            wrapped: false,
                        },
                    )
                })
                .collect(),
        };
        let mut visited: HashSet<String> = HashSet::new();
        visited.insert(initial.fingerprint());
        let mut queue: VecDeque<(InvalState, Vec<String>, usize)> = VecDeque::new();
        queue.push_back((initial, Vec::new(), 0));
        let mut states = 1usize;

        while let Some((state, trace, depth)) = queue.pop_front() {
            if depth >= DEPTH_CAP || states >= STATE_CAP {
                continue;
            }
            for action in state.enabled(&files) {
                let mut next = state.clone();
                let mut next_trace = trace.clone();
                next_trace.push(action.to_string());
                report.transitions += 1;
                if let Some(v) = next.apply(&action) {
                    report
                        .violations
                        .push(format!("{label}: {v}\n  trace: {}", fmt_trace(&next_trace)));
                    continue;
                }
                let fp = next.fingerprint();
                if visited.insert(fp) {
                    states += 1;
                    queue.push_back((next, next_trace, depth + 1));
                }
            }
        }
        report.states += states;
    }
    report
}

// ---------------------------------------------------------------------
// Breaker machine
// ---------------------------------------------------------------------

/// One step of the breaker spec: advance the clock, then feed one
/// event. `Observe` matters because the implementation promotes
/// Open → HalfOpen *lazily* inside `state()`; a failure reported
/// without an intervening observation must be handled in the stored
/// (un-promoted) state, and the spec mirrors exactly that.
#[derive(Debug, Clone, Copy)]
enum BreakerOp {
    Success,
    Failure,
    Observe,
}

/// The explicit spec the implementation must refine (`DESIGN.md`,
/// "Degradation ladder": Closed → Open at the failure threshold,
/// lazy Open → HalfOpen after the cooldown, probe failure doubles the
/// cooldown up to the cap, any success closes and resets).
struct BreakerSpec {
    state: BreakerState,
    fails: u32,
    reopened_at: Duration,
    outage_since: Option<Duration>,
    cooldown: Duration,
    trips: u64,
}

impl BreakerSpec {
    fn new(cfg: &BreakerConfig) -> Self {
        BreakerSpec {
            state: BreakerState::Closed,
            fails: 0,
            reopened_at: Duration::ZERO,
            outage_since: None,
            cooldown: cfg.cooldown,
            trips: 0,
        }
    }

    fn on_success(&mut self, cfg: &BreakerConfig) {
        self.fails = 0;
        if self.state.is_degraded() {
            self.state = BreakerState::Closed;
            self.outage_since = None;
            self.cooldown = cfg.cooldown;
        }
    }

    fn on_failure(&mut self, cfg: &BreakerConfig, now: Duration) {
        self.fails = self.fails.saturating_add(1);
        match self.state {
            BreakerState::Closed => {
                if self.fails >= cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.reopened_at = now;
                    self.outage_since = Some(now);
                    self.trips += 1;
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.reopened_at = now;
                self.cooldown = (self.cooldown * 2).min(cfg.cooldown_max);
            }
            BreakerState::Open => self.reopened_at = now,
        }
    }

    fn observe(&mut self, now: Duration) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.reopened_at + self.cooldown {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    fn fingerprint(&self, cfg: &BreakerConfig) -> String {
        format!(
            "{:?}|{}|{:?}|{}|{}",
            self.state,
            self.fails.min(cfg.failure_threshold),
            self.cooldown,
            self.outage_since.is_some(),
            self.trips.min(2)
        )
    }
}

/// Exhaustively checks the circuit breaker against [`BreakerSpec`] over
/// every trace of clock advances and events up to a fixed depth. The
/// clock deltas straddle the interesting boundaries: within the base
/// cooldown (1 s), past it (6 s) and past the cooldown cap (61 s).
pub fn check_breaker() -> ModelReport {
    let mut report = ModelReport { machine: "breaker", ..ModelReport::default() };
    let cfg = BreakerConfig::default();
    let deltas = [Duration::from_secs(1), Duration::from_secs(6), Duration::from_secs(61)];
    let ops = [BreakerOp::Success, BreakerOp::Failure, BreakerOp::Observe];
    const DEPTH: usize = 5;
    let arity = deltas.len() * ops.len();
    let traces = arity.pow(DEPTH as u32);
    let mut visited: HashSet<String> = HashSet::new();

    'trace: for mut code in 0..traces {
        let breaker = CircuitBreaker::new(cfg);
        let mut spec = BreakerSpec::new(&cfg);
        let mut now = Duration::ZERO;
        let mut trace: Vec<String> = Vec::new();
        for _ in 0..DEPTH {
            let step = code % arity;
            code /= arity;
            let delta = deltas[step / ops.len()];
            let op = ops[step % ops.len()];
            now += delta;
            trace.push(format!("+{delta:?} {op:?}"));
            report.transitions += 1;
            match op {
                BreakerOp::Success => {
                    breaker.on_success(now, Duration::from_millis(50));
                    spec.on_success(&cfg);
                }
                BreakerOp::Failure => {
                    breaker.on_failure(now);
                    spec.on_failure(&cfg, now);
                }
                BreakerOp::Observe => {
                    let got = breaker.state(now);
                    let want = spec.observe(now);
                    if got != want {
                        report.violations.push(format!(
                            "breaker state {got:?} but spec says {want:?} at {now:?}\n  trace: {}",
                            fmt_trace(&trace)
                        ));
                        continue 'trace;
                    }
                }
            }
            if breaker.trips() != spec.trips {
                report.violations.push(format!(
                    "breaker trips {} but spec says {} at {now:?}\n  trace: {}",
                    breaker.trips(),
                    spec.trips,
                    fmt_trace(&trace)
                ));
                continue 'trace;
            }
            let want_open_for = spec.outage_since.map(|s| now.saturating_sub(s));
            if breaker.open_for(now) != want_open_for {
                report.violations.push(format!(
                    "breaker open_for {:?} but spec says {want_open_for:?} at {now:?}\n  trace: {}",
                    breaker.open_for(now),
                    fmt_trace(&trace)
                ));
                continue 'trace;
            }
            if spec.cooldown > cfg.cooldown_max {
                report.violations.push(format!(
                    "cooldown {:?} exceeds the cap {:?}\n  trace: {}",
                    spec.cooldown,
                    cfg.cooldown_max,
                    fmt_trace(&trace)
                ));
                continue 'trace;
            }
            if visited.insert(spec.fingerprint(&cfg)) {
                report.states += 1;
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Bounded recall fan-out window
// ---------------------------------------------------------------------------

/// Per-recall status in the fan-out model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RecallStatus {
    /// Not yet issued; waiting for a window slot.
    Queued,
    /// Issued; holds a window slot until its reply is awaited.
    InFlight,
    /// Reply awaited; slot released.
    Done,
    /// Breaker-open target: completed without ever taking a slot.
    ShortCircuited,
    /// Fault injection only: slot released but the recall's completion
    /// was lost. Must never be reachable with the knob off.
    Dropped,
}

/// Fault knobs for the fan-out model, mirroring the product checker's
/// pattern: each knob re-introduces a bug class the implementation must
/// not have, and a unit test asserts the checker convicts it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FanoutKnobs {
    /// A completing recall releases its window slot but is dropped
    /// before being recorded as done — the bug class the bounded
    /// window must not introduce (issue-all-then-wait never lost a
    /// completion because every `PendingCall` was held in one local
    /// vector; the windowed loop must preserve that).
    pub drop_completion: bool,
}

/// One state of the bounded fan-out window: a recall round of `n`
/// targets (some breaker-open) driven through a window of `w` slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FanoutState {
    status: Vec<RecallStatus>,
}

impl FanoutState {
    fn in_flight(&self) -> usize {
        self.status.iter().filter(|s| **s == RecallStatus::InFlight).count()
    }
}

/// Exhaustively explores every interleaving of issue/complete actions
/// for recall rounds driven through the bounded fan-out window, over a
/// grid of round sizes, window widths and breaker-open target sets.
///
/// Invariants checked at every reachable state:
///
/// 1. **window bound** — recalls in flight never exceed the window;
/// 2. **breaker isolation** — a breaker-open target is never in
///    flight (it must short-circuit without consuming a slot);
/// 3. **completion** — every terminal state has every recall either
///    done or short-circuited: no recall is stranded queued (window
///    deadlock) or dropped (lost completion).
pub fn check_fanout_with(knobs: FanoutKnobs) -> ModelReport {
    let mut report = ModelReport { machine: "fanout", ..ModelReport::default() };
    let mut visited: HashSet<String> = HashSet::new();

    for &n in &[4usize, 6] {
        for &window in &[1usize, 2, n] {
            // Breaker-open sets: none, one, alternating, all.
            let masks: [u64; 4] = [0, 1, 0b0101_0101 & ((1 << n) - 1), (1 << n) - 1];
            for &mask in &masks {
                let open = |i: usize| mask & (1 << i) != 0;
                let init = FanoutState { status: vec![RecallStatus::Queued; n] };
                let mut queue: VecDeque<(FanoutState, Vec<String>)> =
                    VecDeque::from([(init, Vec::new())]);
                let mut seen: HashSet<FanoutState> = HashSet::new();
                while let Some((state, trace)) = queue.pop_front() {
                    if !seen.insert(state.clone()) {
                        continue;
                    }
                    if visited.insert(format!("{n}/{window}/{mask}:{:?}", state.status)) {
                        report.states += 1;
                    }
                    let in_flight = state.in_flight();
                    if in_flight > window {
                        report.violations.push(format!(
                            "{in_flight} recalls in flight exceeds window {window}\n  trace: {}",
                            fmt_trace(&trace)
                        ));
                        continue;
                    }
                    if let Some(i) =
                        (0..n).find(|&i| state.status[i] == RecallStatus::InFlight && open(i))
                    {
                        report.violations.push(format!(
                            "breaker-open target {i} holds a window slot\n  trace: {}",
                            fmt_trace(&trace)
                        ));
                        continue;
                    }
                    let mut any_action = false;
                    for i in 0..n {
                        let mut next = None;
                        match state.status[i] {
                            RecallStatus::Queued if open(i) => {
                                // Short-circuit: completes without a slot.
                                next = Some((RecallStatus::ShortCircuited, "short"));
                            }
                            RecallStatus::Queued if in_flight < window => {
                                next = Some((RecallStatus::InFlight, "issue"));
                            }
                            RecallStatus::InFlight => {
                                next = Some(if knobs.drop_completion {
                                    (RecallStatus::Dropped, "drop")
                                } else {
                                    (RecallStatus::Done, "complete")
                                });
                            }
                            _ => {}
                        }
                        if let Some((status, label)) = next {
                            any_action = true;
                            report.transitions += 1;
                            let mut succ = state.clone();
                            succ.status[i] = status;
                            let mut succ_trace = trace.clone();
                            succ_trace.push(format!("{label}({i})"));
                            queue.push_back((succ, succ_trace));
                        }
                    }
                    if !any_action {
                        // Terminal state: every recall must have been
                        // answered — a queued recall here is a window
                        // deadlock, a dropped one a lost completion.
                        if let Some(i) = (0..n).find(|&i| {
                            !matches!(
                                state.status[i],
                                RecallStatus::Done | RecallStatus::ShortCircuited
                            )
                        }) {
                            report.violations.push(format!(
                                "recall {i} never completed ({:?})\n  trace: {}",
                                state.status[i],
                                fmt_trace(&trace)
                            ));
                        }
                    }
                }
            }
        }
    }
    report
}

/// [`check_fanout_with`] with all fault knobs off — the shipped
/// configuration.
pub fn check_fanout() -> ModelReport {
    check_fanout_with(FanoutKnobs::default())
}

#[cfg(test)]
mod fanout_tests {
    use super::*;

    #[test]
    fn fanout_invariants_hold() {
        let report = check_fanout();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.states > 1_000, "only {} states", report.states);
    }

    #[test]
    fn dropped_completion_is_convicted() {
        let report = check_fanout_with(FanoutKnobs { drop_completion: true });
        let v = report.violations.first().expect("knob must convict");
        assert!(v.contains("never completed"), "unexpected violation: {v}");
    }
}
