//! The consistency matrix: one scripted two-client scenario replayed
//! under all three models, asserting the *model-specific* visibility of
//! a remote write at each step (§3 of the paper — consistency is a
//! per-application choice, and the observable difference is when a
//! remote write becomes visible, not whether).

use gvfs_integration::chaos::ModelKind;
use gvfs_integration::matrix::run_matrix;

#[test]
fn passthrough_sees_remote_writes_immediately() {
    let out = run_matrix(ModelKind::Passthrough);
    assert_eq!(out.warm, b"v1", "write-through v1 must be visible by t=50s");
    assert_eq!(out.after_write, b"v2", "passthrough reads go to the server: v2 at t=103s");
    assert_eq!(out.after_window, b"v2");
}

#[test]
fn polling_serves_stale_until_the_next_window() {
    let out = run_matrix(ModelKind::Polling);
    assert_eq!(out.warm, b"v1");
    assert_eq!(
        out.after_write, b"v1",
        "t=103s predates the next 30s polling window, so the cached v1 survives"
    );
    assert_eq!(out.after_window, b"v2", "the poll at ~t=126s invalidates; t=135s sees v2");
}

#[test]
fn delegation_recalls_before_the_write_completes() {
    let out = run_matrix(ModelKind::Delegation);
    assert_eq!(out.warm, b"v1");
    assert_eq!(
        out.after_write, b"v2",
        "the v2 write recalls the reader's delegation first, so t=103s is fresh"
    );
    assert_eq!(out.after_window, b"v2");
}

#[test]
fn models_disagree_exactly_where_the_paper_says() {
    let pass = run_matrix(ModelKind::Passthrough);
    let poll = run_matrix(ModelKind::Polling);
    let dele = run_matrix(ModelKind::Delegation);
    // Every model agrees on the warm read and the converged read...
    assert_eq!(pass.warm, poll.warm);
    assert_eq!(poll.warm, dele.warm);
    assert_eq!(pass.after_window, poll.after_window);
    assert_eq!(poll.after_window, dele.after_window);
    // ...and disagrees only on the read racing the visibility window.
    assert_eq!(pass.after_write, dele.after_write);
    assert_ne!(poll.after_write, pass.after_write);
}
