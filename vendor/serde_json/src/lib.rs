//! Offline stand-in for `serde_json`.
//!
//! The benchmark harness only builds [`Value`] trees with the [`json!`]
//! macro and writes them with [`to_string_pretty`], so that is the
//! whole API: no serde integration, no parsing. Object keys keep
//! insertion order.

use std::fmt;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Error type for [`to_string_pretty`] (infallible in practice; kept
/// for call-site compatibility with real serde_json).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

macro_rules! from_unsigned {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                if v < 0 {
                    Value::Number(Number::NegInt(v as i64))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(f64::from(v)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

/// Conversion into [`Value`] by reference, so the [`json!`] macro never
/// moves out of the expressions it is given (matching real serde_json,
/// which serializes through `&T`).
pub trait ToJson {
    /// The value tree for `self`.
    fn to_json_value(&self) -> Value;
}

macro_rules! to_json_via_from {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

to_json_via_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json_value)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::PosInt(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::NegInt(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::Float(x)) => {
            if x.is_finite() {
                // Match serde_json: floats always render with a
                // fractional part or exponent.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&PAD.repeat(indent + 1));
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                out.push_str(&PAD.repeat(indent + 1));
                escape_into(out, key);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
    }
}

/// Renders a [`Value`] as two-space-indented JSON.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    Ok(out)
}

/// Renders a [`Value`] compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    // Pretty output is valid JSON; compactness is not load-bearing here.
    to_string_pretty(value)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        f.write_str(&out)
    }
}

/// Builds a [`Value`] from JSON-like syntax, supporting object and
/// array literals with arbitrary Rust expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut fields: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object!(fields; $($body)*);
        $crate::Value::Object(fields)
    }};
    ([ $($body:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array!(items; $($body)*);
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::ToJson::to_json_value(&$other) };
}

/// Internal: munches `"key": value` pairs. Values are accumulated one
/// token tree at a time until a top-level `,` so expressions containing
/// commas inside delimiters work.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ($fields:ident;) => {};
    ($fields:ident; $key:literal : $($rest:tt)*) => {
        $crate::json_object_value!($fields; $key [] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_value {
    ($fields:ident; $key:literal [$($val:tt)*] , $($rest:tt)*) => {
        $fields.push(($key.to_string(), $crate::json!($($val)*)));
        $crate::json_object!($fields; $($rest)*);
    };
    ($fields:ident; $key:literal [$($val:tt)*]) => {
        $fields.push(($key.to_string(), $crate::json!($($val)*)));
    };
    ($fields:ident; $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($fields; $key [$($val)* $next] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ($items:ident;) => {};
    ($items:ident; $($rest:tt)+) => {
        $crate::json_array_value!($items; [] $($rest)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_value {
    ($items:ident; [$($val:tt)*] , $($rest:tt)*) => {
        $items.push($crate::json!($($val)*));
        $crate::json_array!($items; $($rest)*);
    };
    ($items:ident; [$($val:tt)*]) => {
        $items.push($crate::json!($($val)*));
    };
    ($items:ident; [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_array_value!($items; [$($val)* $next] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_nesting() {
        let v = json!({
            "name": "gvfs",
            "count": 3u64,
            "ratio": 1.5,
            "flag": true,
            "none": null,
            "nested": { "a": [1, 2, 3], "b": "x" },
            "list": vec![1u64, 2, 3],
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"gvfs\""));
        assert!(s.contains("\"ratio\": 1.5"));
        assert!(s.contains("\"none\": null"));
        assert!(s.contains("\"a\": ["));
    }

    #[test]
    fn expressions_with_commas() {
        let rows = vec![1u64, 2, 3];
        let v = json!({
            "rows": rows.iter().map(|r| json!({ "v": *r })).collect::<Vec<_>>(),
            "sum": rows.iter().sum::<u64>(),
        });
        match &v {
            Value::Object(fields) => {
                assert_eq!(fields.len(), 2);
                assert!(matches!(fields[0].1, Value::Array(ref a) if a.len() == 3));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn floats_render_with_fraction() {
        assert_eq!(to_string_pretty(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string_pretty(&json!(0.25)).unwrap(), "0.25");
    }

    #[test]
    fn strings_escape() {
        let s = to_string_pretty(&json!("a\"b\\c\nd")).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
