/root/repo/target/release/deps/gvfs_client-309c878048bc1589.d: crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs

/root/repo/target/release/deps/libgvfs_client-309c878048bc1589.rlib: crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs

/root/repo/target/release/deps/libgvfs_client-309c878048bc1589.rmeta: crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs

crates/client/src/lib.rs:
crates/client/src/cache.rs:
crates/client/src/client.rs:
crates/client/src/options.rs:
