/root/repo/target/debug/deps/gvfs_core-38962a79c493df94.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/delegation.rs crates/core/src/invalidation.rs crates/core/src/protocol.rs crates/core/src/proxy/mod.rs crates/core/src/proxy/client.rs crates/core/src/proxy/server.rs crates/core/src/session.rs crates/core/src/model.rs

/root/repo/target/debug/deps/libgvfs_core-38962a79c493df94.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/delegation.rs crates/core/src/invalidation.rs crates/core/src/protocol.rs crates/core/src/proxy/mod.rs crates/core/src/proxy/client.rs crates/core/src/proxy/server.rs crates/core/src/session.rs crates/core/src/model.rs

/root/repo/target/debug/deps/libgvfs_core-38962a79c493df94.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/delegation.rs crates/core/src/invalidation.rs crates/core/src/protocol.rs crates/core/src/proxy/mod.rs crates/core/src/proxy/client.rs crates/core/src/proxy/server.rs crates/core/src/session.rs crates/core/src/model.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/delegation.rs:
crates/core/src/invalidation.rs:
crates/core/src/protocol.rs:
crates/core/src/proxy/mod.rs:
crates/core/src/proxy/client.rs:
crates/core/src/proxy/server.rs:
crates/core/src/session.rs:
crates/core/src/model.rs:
