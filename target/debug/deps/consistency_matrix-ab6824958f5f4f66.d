/root/repo/target/debug/deps/consistency_matrix-ab6824958f5f4f66.d: crates/integration/../../tests/consistency_matrix.rs

/root/repo/target/debug/deps/consistency_matrix-ab6824958f5f4f66: crates/integration/../../tests/consistency_matrix.rs

crates/integration/../../tests/consistency_matrix.rs:
