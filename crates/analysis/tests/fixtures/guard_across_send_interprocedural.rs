// expect: guard-across-send
// as: crates/core/src/proxy/server.rs
// Known-bad: the guard is live at a call to a *helper* whose body
// reaches the wire. `notify_holder` is not a send-marker name, so the
// purely textual scan (pre call-graph) missed exactly this shape.
fn issue_recall(&self) {
    let st = self.state.lock();
    self.notify_holder(st.fh);
}

fn notify_holder(&self, fh: Fh3) {
    self.transport.call(RECALL, fh);
}
