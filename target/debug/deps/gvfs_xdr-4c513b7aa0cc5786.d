/root/repo/target/debug/deps/gvfs_xdr-4c513b7aa0cc5786.d: crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs

/root/repo/target/debug/deps/gvfs_xdr-4c513b7aa0cc5786: crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs

crates/xdr/src/lib.rs:
crates/xdr/src/decode.rs:
crates/xdr/src/encode.rs:
crates/xdr/src/error.rs:
