//! The AFS client: whole-file cache with callback promises.

use crate::proto::{
    procs, AfsStat, AfsStatus, DataRes, PathArgs, StatusRes, StoreArgs, TwoPathArgs, AFS_PROGRAM,
    AFS_VERSION,
};
use gvfs_netsim::transport::SimRpcClient;
use gvfs_rpc::dispatch::RpcService;
use gvfs_rpc::message::{GvfsCred, OpaqueAuth};
use gvfs_rpc::RpcError;
use gvfs_xdr::Xdr;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// An error from an AFS client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AfsError {
    /// The name already exists.
    Exists,
    /// No such file.
    NotFound,
    /// RPC failure.
    Rpc(RpcError),
    /// Server fault.
    Fault,
}

impl fmt::Display for AfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AfsError::Exists => write!(f, "name exists"),
            AfsError::NotFound => write!(f, "no such file"),
            AfsError::Rpc(e) => write!(f, "rpc: {e}"),
            AfsError::Fault => write!(f, "server fault"),
        }
    }
}

impl Error for AfsError {}

impl From<RpcError> for AfsError {
    fn from(e: RpcError) -> Self {
        AfsError::Rpc(e)
    }
}

#[derive(Debug, Default)]
struct CacheState {
    /// path → fid binding with a promise on the parent dir.
    names: HashMap<String, Option<u64>>,
    /// fid → status while a promise stands.
    status: HashMap<u64, AfsStatus>,
    /// fid → whole-file content.
    data: HashMap<u64, Vec<u8>>,
}

/// The AFS client cache manager.
pub struct AfsClient {
    id: u32,
    transport: SimRpcClient,
    cache: Mutex<CacheState>,
}

impl fmt::Debug for AfsClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AfsClient").field("id", &self.id).finish()
    }
}

impl AfsClient {
    /// Creates a client with the given id over `transport`.
    pub fn new(id: u32, transport: SimRpcClient) -> Arc<Self> {
        let cred = GvfsCred { session_key: 0xaf50, client_id: id, callback_port: 8000 + id };
        let transport =
            transport.with_credential(OpaqueAuth::gvfs(&cred).expect("encode credential"));
        Arc::new(AfsClient { id, transport, cache: Mutex::new(CacheState::default()) })
    }

    fn rpc<A: Xdr, R: Xdr>(&self, procedure: u32, a: &A) -> Result<R, AfsError> {
        let payload = gvfs_xdr::to_bytes(a).map_err(RpcError::from)?;
        let bytes = self.transport.call(AFS_PROGRAM, AFS_VERSION, procedure, payload)?;
        Ok(gvfs_xdr::from_bytes(&bytes).map_err(RpcError::from)?)
    }

    /// Stats a path: `Ok(Some(status))` if present, `Ok(None)` if absent
    /// — both served from cache while the promises stand.
    ///
    /// # Errors
    ///
    /// RPC or server errors.
    pub fn stat(&self, path: &str) -> Result<Option<AfsStatus>, AfsError> {
        {
            let cache = self.cache.lock();
            match cache.names.get(path) {
                Some(Some(fid)) => {
                    if let Some(status) = cache.status.get(fid) {
                        return Ok(Some(*status));
                    }
                }
                Some(None) => return Ok(None),
                None => {}
            }
        }
        let res: StatusRes = self.rpc(procs::LOOKUP, &PathArgs { path: path.to_string() })?;
        let mut cache = self.cache.lock();
        match res.stat {
            AfsStat::Ok => {
                let status = res.status.ok_or(AfsError::Fault)?;
                cache.names.insert(path.to_string(), Some(status.fid));
                cache.status.insert(status.fid, status);
                Ok(Some(status))
            }
            AfsStat::NoEnt => {
                cache.names.insert(path.to_string(), None);
                Ok(None)
            }
            _ => Err(AfsError::Fault),
        }
    }

    /// Reads a whole file (fetched once, then served from cache).
    ///
    /// # Errors
    ///
    /// [`AfsError::NotFound`] if absent; RPC errors.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, AfsError> {
        let status = self.stat(path)?.ok_or(AfsError::NotFound)?;
        if let Some(data) = self.cache.lock().data.get(&status.fid) {
            return Ok(data.clone());
        }
        let res: DataRes = self.rpc(procs::FETCH_DATA, &status.fid)?;
        match res.stat {
            AfsStat::Ok => {
                let mut cache = self.cache.lock();
                if let Some(s) = res.status {
                    cache.status.insert(s.fid, s);
                }
                cache.data.insert(status.fid, res.data.clone());
                Ok(res.data)
            }
            AfsStat::NoEnt => Err(AfsError::NotFound),
            _ => Err(AfsError::Fault),
        }
    }

    /// Stores a whole file (store-on-close semantics).
    ///
    /// # Errors
    ///
    /// RPC or server errors.
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<(), AfsError> {
        let res: StatusRes =
            self.rpc(procs::STORE, &StoreArgs { path: path.to_string(), data: data.to_vec() })?;
        match res.stat {
            AfsStat::Ok => {
                let status = res.status.ok_or(AfsError::Fault)?;
                let mut cache = self.cache.lock();
                cache.names.insert(path.to_string(), Some(status.fid));
                cache.status.insert(status.fid, status);
                cache.data.insert(status.fid, data.to_vec());
                Ok(())
            }
            _ => Err(AfsError::Fault),
        }
    }

    /// Atomically hard-links `from` to `to` (the lock primitive).
    ///
    /// # Errors
    ///
    /// [`AfsError::Exists`] if `to` is taken.
    pub fn link(&self, from: &str, to: &str) -> Result<(), AfsError> {
        let res: StatusRes =
            self.rpc(procs::LINK, &TwoPathArgs { from: from.to_string(), to: to.to_string() })?;
        match res.stat {
            AfsStat::Ok => {
                let mut cache = self.cache.lock();
                if let Some(status) = res.status {
                    cache.names.insert(to.to_string(), Some(status.fid));
                    cache.status.insert(status.fid, status);
                }
                Ok(())
            }
            AfsStat::Exist => Err(AfsError::Exists),
            AfsStat::NoEnt => Err(AfsError::NotFound),
            AfsStat::Fault => Err(AfsError::Fault),
        }
    }

    /// Removes a name.
    ///
    /// # Errors
    ///
    /// [`AfsError::NotFound`] if absent.
    pub fn remove(&self, path: &str) -> Result<(), AfsError> {
        let res: StatusRes = self.rpc(procs::REMOVE, &PathArgs { path: path.to_string() })?;
        match res.stat {
            AfsStat::Ok => {
                self.cache.lock().names.insert(path.to_string(), None);
                Ok(())
            }
            AfsStat::NoEnt => Err(AfsError::NotFound),
            _ => Err(AfsError::Fault),
        }
    }

    /// Handles a callback break for `fid`.
    fn break_promise(&self, fid: u64) {
        let mut cache = self.cache.lock();
        cache.status.remove(&fid);
        cache.data.remove(&fid);
        // Any name binding under a broken directory promise must be
        // re-validated; bindings to the broken fid likewise.
        cache.names.retain(|_, v| *v != Some(fid));
        // Directory breaks arrive as the directory's own fid; we cannot
        // tell which names lived under it, so drop negative entries too.
        cache.names.retain(|_, v| v.is_some());
    }
}

/// The callback-break service each client registers.
#[derive(Debug, Clone)]
pub struct AfsCallbackService(pub Arc<AfsClient>);

impl RpcService for AfsCallbackService {
    fn program(&self) -> u32 {
        crate::proto::AFS_CALLBACK_PROGRAM
    }
    fn version(&self) -> u32 {
        AFS_VERSION
    }
    fn call(&self, procedure: u32, payload: &[u8]) -> Result<Vec<u8>, RpcError> {
        match procedure {
            procs::BREAK => {
                let fid: u64 = gvfs_xdr::from_bytes(payload).map_err(|_| RpcError::GarbageArgs)?;
                self.0.break_promise(fid);
                Ok(Vec::new())
            }
            p => Err(RpcError::ProcedureUnavailable {
                program: crate::proto::AFS_CALLBACK_PROGRAM,
                procedure: p,
            }),
        }
    }
}
