//! End-to-end tests: kernel-client emulation against the NFS server over
//! a simulated link, checking both semantics and the *consistency
//! traffic* (GETATTR counts) that the paper's experiments measure.

use gvfs_client::{ClientError, MountOptions, NfsClient};
use gvfs_netsim::link::{Link, LinkConfig};
use gvfs_netsim::transport::{ServerNode, SimRpcClient};
use gvfs_netsim::Sim;
use gvfs_nfs3::{proc3, Nfsstat3, NFS_PROGRAM};
use gvfs_rpc::dispatch::Dispatcher;
use gvfs_rpc::stats::RpcStats;
use gvfs_server::Nfs3Server;
use gvfs_vfs::{Timestamp, Vfs};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

struct Rig {
    vfs: Arc<Vfs>,
    server: Arc<ServerNode>,
    link: Arc<Link>,
    stats: RpcStats,
    root: gvfs_nfs3::Fh3,
}

fn rig() -> Rig {
    let vfs = Arc::new(Vfs::new());
    let nfs = Nfs3Server::new(
        Arc::clone(&vfs),
        Arc::new(|| Timestamp::from_nanos(gvfs_netsim::now().as_nanos())),
    );
    let root = nfs.root_fh();
    let mut dispatcher = Dispatcher::new();
    dispatcher.register(nfs);
    let server = ServerNode::new("nfs", dispatcher, Duration::from_micros(200));
    let link = Link::new(LinkConfig::wan());
    Rig { vfs, server, link, stats: RpcStats::new(), root }
}

impl Rig {
    fn client(&self, opts: MountOptions) -> NfsClient {
        let transport =
            SimRpcClient::new(self.link.forward(), Arc::clone(&self.server), self.stats.clone());
        NfsClient::new(transport, self.root, opts)
    }
}

fn getattrs(stats: &RpcStats) -> u64 {
    stats.snapshot().calls(NFS_PROGRAM, proc3::GETATTR)
}

#[test]
fn write_then_read_roundtrips_over_wan() {
    let r = rig();
    let client = r.client(MountOptions::default());
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    let sim = Sim::new();
    sim.spawn("c1", move || {
        client.write_file("/hello.txt", b"wide area").unwrap();
        *o.lock() = client.read_file("/hello.txt").unwrap();
    });
    let end = sim.run();
    assert_eq!(&*out.lock(), b"wide area");
    // At least two WAN round trips of 40 ms each.
    assert!(end.as_secs_f64() > 0.08, "end={end}");
}

#[test]
fn cached_read_is_fast_and_quiet() {
    let r = rig();
    let client = r.client(MountOptions { close_to_open: false, ..Default::default() });
    let stats = r.stats.clone();
    let sim = Sim::new();
    sim.spawn("c1", move || {
        client.write_file("/f", &[7u8; 100_000]).unwrap();
        let _ = client.read_file("/f").unwrap();
        let before = stats.snapshot();
        let t0 = gvfs_netsim::now();
        let _ = client.read_file("/f").unwrap();
        let elapsed = gvfs_netsim::now().saturating_since(t0);
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.calls(NFS_PROGRAM, proc3::READ), 0, "reads served from page cache");
        assert!(elapsed < Duration::from_millis(1), "no WAN trips: {elapsed:?}");
    });
    sim.run();
}

#[test]
fn close_to_open_forces_getattr_per_open() {
    let r = rig();
    let client = r.client(MountOptions::default());
    let stats = r.stats.clone();
    let sim = Sim::new();
    sim.spawn("c1", move || {
        client.write_file("/f", b"x").unwrap();
        let before = getattrs(&stats);
        for _ in 0..10 {
            let _ = client.read_file("/f").unwrap();
        }
        let after = getattrs(&stats);
        assert!(after - before >= 10, "cto must revalidate every open: {}", after - before);
    });
    sim.run();
}

#[test]
fn attribute_cache_suppresses_stat_traffic() {
    let r = rig();
    let client = r.client(MountOptions::default());
    let stats = r.stats.clone();
    let sim = Sim::new();
    sim.spawn("c1", move || {
        client.write_file("/f", b"x").unwrap();
        client.stat("/f").unwrap();
        let before = getattrs(&stats);
        for _ in 0..50 {
            client.stat("/f").unwrap(); // within ac timeout
        }
        assert_eq!(getattrs(&stats) - before, 0, "fresh attrs must not hit the wire");
        gvfs_netsim::sleep(Duration::from_secs(120));
        client.stat("/f").unwrap();
        // One GETATTR for the directory (dnlc validation) + one for the file.
        assert_eq!(getattrs(&stats) - before, 2, "expired attrs revalidate dir + file");
    });
    sim.run();
}

#[test]
fn noac_revalidates_every_stat() {
    let r = rig();
    let client = r.client(MountOptions::noac());
    let stats = r.stats.clone();
    let sim = Sim::new();
    sim.spawn("c1", move || {
        client.write_file("/f", b"x").unwrap();
        let before = getattrs(&stats);
        for _ in 0..10 {
            client.stat("/f").unwrap();
        }
        assert!(getattrs(&stats) - before >= 10);
    });
    sim.run();
}

#[test]
fn two_clients_see_writes_after_attr_timeout() {
    let r = rig();
    let writer = r.client(MountOptions::with_attr_timeout(Duration::from_secs(30)));
    let reader = r.client(MountOptions {
        close_to_open: false,
        ..MountOptions::with_attr_timeout(Duration::from_secs(30))
    });
    let sim = Sim::new();
    sim.spawn("writer", move || {
        writer.write_file("/shared", b"v1").unwrap();
        gvfs_netsim::sleep(Duration::from_secs(5));
        let fh = writer.resolve("/shared").unwrap();
        writer.write(fh, 0, b"v2").unwrap();
    });
    sim.spawn("reader", move || {
        gvfs_netsim::sleep(Duration::from_secs(2));
        assert_eq!(reader.read_file("/shared").unwrap(), b"v1");
        // Immediately after the remote write, the stale cache may serve v1.
        gvfs_netsim::sleep(Duration::from_secs(5));
        let stale = reader.read_file("/shared").unwrap();
        assert_eq!(stale, b"v1", "within the attr window the stale copy is served");
        // After the attribute timeout the change is detected.
        gvfs_netsim::sleep(Duration::from_secs(31));
        assert_eq!(reader.read_file("/shared").unwrap(), b"v2");
    });
    sim.run();
}

#[test]
fn link_is_atomic_lock_primitive() {
    let r = rig();
    let c1 = r.client(MountOptions::default());
    let c2 = r.client(MountOptions::default());
    // Seed the lock directory and temp files.
    let winners = Arc::new(Mutex::new(Vec::new()));
    let sim = Sim::new();
    for (name, client) in [("c1", c1), ("c2", c2)] {
        let winners = winners.clone();
        sim.spawn(name, move || {
            let root = client.root();
            let tmp = client.create(root, &format!("tmp-{name}"), true).unwrap();
            match client.link(tmp, root, "lockfile") {
                Ok(()) => winners.lock().push(name),
                Err(ClientError::Nfs(Nfsstat3::Exist)) => {}
                Err(e) => panic!("unexpected: {e}"),
            }
        });
    }
    sim.run();
    assert_eq!(winners.lock().len(), 1, "exactly one client wins the lock");
}

#[test]
fn remove_then_access_is_stale_or_noent() {
    let r = rig();
    let client = r.client(MountOptions::default());
    let sim = Sim::new();
    sim.spawn("c1", move || {
        let fh = client.write_file("/gone", b"x").unwrap();
        client.remove_path("/gone").unwrap();
        assert!(matches!(client.getattr_force(fh).unwrap_err(), ClientError::Nfs(Nfsstat3::Stale)));
        assert!(matches!(
            client.read_file("/gone").unwrap_err(),
            ClientError::Nfs(Nfsstat3::Noent)
        ));
    });
    sim.run();
}

#[test]
fn readdir_lists_server_side_tree() {
    let r = rig();
    // Server-side population (out of band, like restoring a repository).
    for i in 0..25 {
        r.vfs.create(r.vfs.root(), &format!("pkg{i:02}"), 0o644, Timestamp::default()).unwrap();
    }
    let client = r.client(MountOptions::default());
    let sim = Sim::new();
    sim.spawn("c1", move || {
        let entries = client.readdir_all(client.root()).unwrap();
        assert_eq!(entries.len(), 25);
        assert!(entries.iter().any(|e| e.name == "pkg13"));
    });
    sim.run();
}

#[test]
fn hard_mount_retries_through_partition() {
    let r = rig();
    let client =
        r.client(MountOptions { retry_backoff: Duration::from_secs(1), ..Default::default() });
    let link = Arc::clone(&r.link);
    let sim = Sim::new();
    sim.spawn("c1", move || {
        client.write_file("/f", b"pre").unwrap();
        gvfs_netsim::spawn_from_actor("healer", {
            let link = Arc::clone(&link);
            move || {
                gvfs_netsim::sleep(Duration::from_secs(5));
                link.set_partitioned(false);
            }
        });
        link.set_partitioned(true);
        // This stat blocks through the partition and then succeeds.
        let t0 = gvfs_netsim::now();
        client.drop_caches();
        client.stat("/f").unwrap();
        let waited = gvfs_netsim::now().saturating_since(t0);
        assert!(waited >= Duration::from_secs(5), "waited {waited:?}");
    });
    sim.run();
}

#[test]
fn symlink_and_readlink_roundtrip() {
    let r = rig();
    let client = r.client(MountOptions::default());
    let sim = Sim::new();
    sim.spawn("c1", move || {
        let root = client.root();
        let link = client.symlink(root, "latest", "/releases/v2").unwrap();
        assert_eq!(client.readlink(link).unwrap(), "/releases/v2");
        let resolved = client.resolve("/latest").unwrap();
        assert_eq!(resolved, link);
    });
    sim.run();
}

#[test]
fn readdir_plus_warms_the_caches() {
    let r = rig();
    for i in 0..30 {
        let f = r
            .vfs
            .create(r.vfs.root(), &format!("warm{i:02}"), 0o644, Timestamp::default())
            .unwrap();
        r.vfs.write(f, 0, &[1u8; 100], Timestamp::default()).unwrap();
    }
    let client = r.client(MountOptions { close_to_open: false, ..Default::default() });
    let stats = r.stats.clone();
    let sim = Sim::new();
    sim.spawn("c1", move || {
        let entries = client.readdir_plus_all(client.root()).unwrap();
        assert_eq!(entries.len(), 30);
        // Everything needed for an `ls -l` is now cached: stats are free.
        let before = stats.snapshot();
        for e in &entries {
            let attr = client.stat(&format!("/{}", e.name)).unwrap();
            assert_eq!(attr.size, 100);
        }
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.total_calls(), 0, "READDIRPLUS warmed attrs and bindings: {delta}");
    });
    sim.run();
}

#[test]
fn rename_and_truncate_update_view() {
    let r = rig();
    let client = r.client(MountOptions::default());
    let sim = Sim::new();
    sim.spawn("c1", move || {
        let fh = client.write_file("/a", b"0123456789").unwrap();
        client.truncate(fh, 4).unwrap();
        assert_eq!(client.read_file("/a").unwrap(), b"0123");
        let root = client.root();
        client.rename(root, "a", root, "b").unwrap();
        assert!(client.read_file("/a").is_err());
        assert_eq!(client.read_file("/b").unwrap(), b"0123");
    });
    sim.run();
}
