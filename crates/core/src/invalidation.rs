//! The proxy server's invalidation buffers (§4.2).
//!
//! The server keeps one bounded, logically-timestamped circular queue
//! per client. File modifications append invalidation entries to every
//! *other* client's buffer (the writer observed its own change), with
//! repeated invalidations of the same file coalesced. Clients drain
//! their buffer with `GETINV`; the server detects first contact, client
//! restart and wrap-around and answers with a `force-invalidate` flag in
//! those cases.
//!
//! Two tracker shapes share the per-buffer logic ([`ClientBuffer`],
//! private to this module):
//!
//! * [`InvalidationTracker`] — the single-owner (`&mut self`) form used
//!   by unit tests and the protocol model checker, where explicit state
//!   enumeration needs plain values;
//! * [`ConcurrentInvalidationTracker`] — the proxy server's form: the
//!   logical clock is atomic and client buffers are striped across a
//!   fixed set of locks, so request handlers for different clients
//!   append and drain invalidations without serializing on one global
//!   mutex, and a modification pass costs one lock acquisition per
//!   stripe rather than one per client. It additionally supports
//!   piggybacked drains ([`ConcurrentInvalidationTracker::try_drain`]),
//!   batched drains under one stripe pass
//!   ([`ConcurrentInvalidationTracker::getinv_batch`]) and epoch-based
//!   idle-client eviction
//!   ([`ConcurrentInvalidationTracker::advance_epoch`]).

use crate::protocol::{GetinvRes, MAX_INVALIDATIONS_PER_REPLY};
use gvfs_nfs3::Fh3;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[derive(Debug, Clone)]
struct ClientBuffer {
    entries: VecDeque<(u64, Fh3)>,
    members: HashSet<Fh3>,
    /// Timestamps at or below this value may have been discarded
    /// (buffer creation point or wrap-around).
    floor: u64,
}

impl ClientBuffer {
    fn new(floor: u64, capacity: usize) -> Self {
        ClientBuffer { entries: VecDeque::with_capacity(capacity), members: HashSet::new(), floor }
    }

    /// Appends one invalidation entry (coalesced per file; wraps past
    /// `capacity` by discarding the oldest entry and raising the floor).
    fn record(&mut self, ts: u64, fh: Fh3, capacity: usize) {
        if self.members.contains(&fh) {
            return; // coalesced with a pending entry
        }
        self.entries.push_back((ts, fh));
        self.members.insert(fh);
        if self.entries.len() > capacity {
            // Wrap-around: discard the oldest and remember how far back
            // the buffer is still complete.
            if let Some((lost_ts, lost_fh)) = self.entries.pop_front() {
                self.members.remove(&lost_fh);
                self.floor = self.floor.max(lost_ts);
            }
        }
    }

    /// Answers one `GETINV` call against this buffer (§4.2.1, server
    /// side). `first_contact` is decided by the owner (buffer existence);
    /// `clock` is the tracker's current logical timestamp.
    fn getinv(
        &mut self,
        last_timestamp: Option<u64>,
        clock: u64,
        first_contact: bool,
    ) -> GetinvRes {
        // Rule 1 (§4.2.1): the first GETINV from a client — including
        // the first after a server restart lost all buffers — always
        // bootstraps with a force-invalidation. So does a client that
        // lost its timestamp. Rule 2: so does a buffer that has wrapped
        // past what the client has seen.
        let force = first_contact
            || match last_timestamp {
                None => true,
                Some(ts) if ts < self.floor => true,
                Some(_) => false,
            };
        if force {
            self.entries.clear();
            self.members.clear();
            self.floor = clock;
            return GetinvRes {
                timestamp: clock,
                force_invalidate: true,
                poll_again: false,
                handles: Vec::new(),
            };
        }
        if self.entries.len() > MAX_INVALIDATIONS_PER_REPLY {
            // Partial drain: return the oldest slice and have the client
            // poll again immediately.
            let mut handles = Vec::with_capacity(MAX_INVALIDATIONS_PER_REPLY);
            let mut last_ts = clock;
            for _ in 0..MAX_INVALIDATIONS_PER_REPLY {
                let (ts, fh) = self.entries.pop_front().expect("len checked");
                self.members.remove(&fh);
                last_ts = ts;
                handles.push(fh);
            }
            self.floor = last_ts;
            GetinvRes { timestamp: last_ts, force_invalidate: false, poll_again: true, handles }
        } else {
            let handles: Vec<Fh3> = self.entries.drain(..).map(|(_, fh)| fh).collect();
            self.members.clear();
            self.floor = clock;
            GetinvRes { timestamp: clock, force_invalidate: false, poll_again: false, handles }
        }
    }

    fn dump(&self) -> (u64, Vec<(u64, Fh3)>) {
        (self.floor, self.entries.iter().copied().collect())
    }
}

/// One client's buffer as reported by [`InvalidationTracker::snapshot`]:
/// `(client, floor, queued (timestamp, handle) entries)`.
pub type BufferSnapshot = (u32, u64, Vec<(u64, Fh3)>);

/// Manages per-client invalidation buffers and the server's logical
/// clock.
///
/// # Examples
///
/// ```
/// use gvfs_core::invalidation::InvalidationTracker;
/// use gvfs_nfs3::Fh3;
///
/// let mut tracker = InvalidationTracker::new(128);
/// let boot = tracker.getinv(1, None); // bootstrap
/// assert!(boot.force_invalidate);
/// tracker.record_modification(Fh3::from_fileid(9), 2); // client 2 wrote
/// let res = tracker.getinv(1, Some(boot.timestamp));
/// assert_eq!(res.handles, vec![Fh3::from_fileid(9)]);
/// ```
#[derive(Debug, Clone)]
pub struct InvalidationTracker {
    buffers: HashMap<u32, ClientBuffer>,
    capacity: usize,
    clock: u64,
}

impl InvalidationTracker {
    /// Creates a tracker whose per-client buffers hold at most
    /// `capacity` entries before wrapping.
    pub fn new(capacity: usize) -> Self {
        InvalidationTracker { buffers: HashMap::new(), capacity: capacity.max(1), clock: 0 }
    }

    /// The current logical timestamp.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Records a file modification observed from `writer`: every other
    /// registered client gets an invalidation entry (coalesced per
    /// file).
    pub fn record_modification(&mut self, fh: Fh3, writer: u32) {
        self.clock += 1;
        let ts = self.clock;
        for (&client, buf) in &mut self.buffers {
            if client == writer {
                continue;
            }
            buf.record(ts, fh, self.capacity);
        }
    }

    /// Processes one `GETINV` call (§4.2.1, server side).
    pub fn getinv(&mut self, client: u32, last_timestamp: Option<u64>) -> GetinvRes {
        let clock = self.clock;
        let capacity = self.capacity;
        let first_contact = !self.buffers.contains_key(&client);
        let buf = self.buffers.entry(client).or_insert_with(|| ClientBuffer::new(clock, capacity));
        buf.getinv(last_timestamp, clock, first_contact)
    }

    /// Number of registered client buffers.
    pub fn client_count(&self) -> usize {
        self.buffers.len()
    }

    /// Entries pending for one client (diagnostics).
    pub fn pending(&self, client: u32) -> usize {
        self.buffers.get(&client).map_or(0, |b| b.entries.len())
    }

    /// A canonical dump of every client buffer, sorted by client id:
    /// `(client, floor, queued (timestamp, handle) entries)`. Used by
    /// diagnostics and the protocol model checker.
    pub fn snapshot(&self) -> Vec<BufferSnapshot> {
        let mut out: Vec<BufferSnapshot> = self
            .buffers
            .iter()
            .map(|(&c, b)| {
                let (floor, entries) = b.dump();
                (c, floor, entries)
            })
            .collect();
        out.sort_unstable_by_key(|&(c, _, _)| c);
        out
    }
}

/// Number of lock stripes in the concurrent tracker. Clients map to a
/// stripe by id, so an append pass touches each stripe lock exactly
/// once per modification and handlers for clients on different stripes
/// never contend.
const INVAL_STRIPES: usize = 16;

/// One client's buffer plus the bookkeeping the striped tracker needs
/// around it.
#[derive(Debug)]
struct StripeSlot {
    buf: ClientBuffer,
    /// The timestamp of the last reply produced for this client over
    /// any path (a real `GETINV` or a piggybacked drain). The client's
    /// own timestamp can only lag this value, so `synced < floor`
    /// detects a wrap-around the client has not yet been told about.
    synced: u64,
    /// Eviction epoch at the client's last contact.
    epoch: u64,
    /// Files this client is advertised as holding a clean copy of
    /// (peer sourcing). Living inside the slot puts the holdings under
    /// the *same stripe lock* as the invalidation buffer: the
    /// modification pass that enqueues an invalidation for a handle
    /// removes the handle from every holding in the same critical
    /// section, so no reader can be handed an advert for a condemned
    /// copy. Eviction drops the slot and the holdings with it.
    holdings: HashSet<Fh3>,
}

/// One lock stripe: the buffers of every client whose id maps here.
#[derive(Debug, Default)]
struct Stripe {
    buffers: Mutex<HashMap<u32, StripeSlot>>,
    /// Lock acquisitions on this stripe.
    acquisitions: AtomicU64,
    /// Acquisitions that found the lock already held.
    contended: AtomicU64,
}

impl Stripe {
    /// Acquires the stripe lock, counting the acquisition and whether
    /// it contended.
    fn guard(&self) -> parking_lot::MutexGuard<'_, HashMap<u32, StripeSlot>> {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if let Some(guard) = self.buffers.try_lock() {
            return guard;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.buffers.lock()
    }
}

/// Scale counters exported by [`ConcurrentInvalidationTracker`] for the
/// bench harness's `server` JSON block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvalScaleCounters {
    /// Stripe-lock acquisitions across all stripes.
    pub lock_acquisitions: u64,
    /// Acquisitions that found the stripe lock held.
    pub lock_contended: u64,
    /// `GETINV` replies produced.
    pub getinv_replies: u64,
    /// File handles delivered across all `GETINV` replies (batch-size
    /// numerator; `/ getinv_replies` gives the mean batch size).
    pub getinv_handles: u64,
    /// Piggybacked drains produced (replies that cost zero messages).
    pub piggyback_replies: u64,
    /// File handles delivered via piggybacked drains.
    pub piggyback_handles: u64,
    /// Idle client buffers dropped by epoch eviction.
    pub evicted_buffers: u64,
    /// Peer adverts recorded (client, file) pairs.
    pub peer_advertised: u64,
    /// Peer adverts condemned by modifications, recalls or client
    /// resets.
    pub peer_condemned: u64,
}

/// The proxy server's concurrently-shared form of
/// [`InvalidationTracker`]: same protocol behaviour (the per-buffer
/// logic is literally shared), but the logical clock is an atomic and
/// client buffers are striped across [`INVAL_STRIPES`] locks. A `WRITE`
/// appending invalidations takes each stripe lock once per pass, and a
/// `GETINV` draining a client on another stripe proceeds in parallel.
///
/// Lock order: a stripe's `buffers` lock is terminal — no other lock is
/// acquired and no RPC is ever sent while it is held.
#[derive(Debug)]
pub struct ConcurrentInvalidationTracker {
    stripes: Vec<Stripe>,
    capacity: AtomicUsize,
    clock: AtomicU64,
    /// Idle-eviction epoch, advanced by [`Self::advance_epoch`].
    epoch: AtomicU64,
    getinv_replies: AtomicU64,
    getinv_handles: AtomicU64,
    piggyback_replies: AtomicU64,
    piggyback_handles: AtomicU64,
    evicted_buffers: AtomicU64,
    peer_advertised: AtomicU64,
    peer_condemned: AtomicU64,
    /// Chaos self-test knob: suppress peer de-advertising so the
    /// oracle can prove it would catch a stale peer serve.
    deadvertise_suppressed: std::sync::atomic::AtomicBool,
}

impl ConcurrentInvalidationTracker {
    /// Creates a tracker whose per-client buffers hold at most
    /// `capacity` entries before wrapping.
    pub fn new(capacity: usize) -> Self {
        ConcurrentInvalidationTracker {
            stripes: (0..INVAL_STRIPES).map(|_| Stripe::default()).collect(),
            capacity: AtomicUsize::new(capacity.max(1)),
            clock: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            getinv_replies: AtomicU64::new(0),
            getinv_handles: AtomicU64::new(0),
            piggyback_replies: AtomicU64::new(0),
            piggyback_handles: AtomicU64::new(0),
            evicted_buffers: AtomicU64::new(0),
            peer_advertised: AtomicU64::new(0),
            peer_condemned: AtomicU64::new(0),
            deadvertise_suppressed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn stripe(&self, client: u32) -> &Stripe {
        &self.stripes[client as usize % INVAL_STRIPES]
    }

    /// Discards all buffers and restarts the clock with a new capacity
    /// (server crash, or the middleware re-configuring the session).
    pub fn reset(&self, capacity: usize) {
        for stripe in &self.stripes {
            stripe.guard().clear();
        }
        self.capacity.store(capacity.max(1), Ordering::SeqCst);
        self.clock.store(0, Ordering::SeqCst);
    }

    /// The current logical timestamp.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Records a file modification observed from `writer`: every other
    /// registered client gets an invalidation entry (coalesced per
    /// file). One stripe-lock acquisition per stripe, regardless of how
    /// many clients live there.
    pub fn record_modification(&self, fh: Fh3, writer: u32) {
        let ts = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        let capacity = self.capacity.load(Ordering::SeqCst);
        let suppress = self.deadvertise_suppressed.load(Ordering::SeqCst);
        for stripe in &self.stripes {
            let mut buffers = stripe.guard();
            for (&client, slot) in buffers.iter_mut() {
                // Condemn every advertised copy of the modified file —
                // including the writer's, whose copy now carries a
                // change attribute the origin has moved past. Done
                // under the same stripe lock as the invalidation
                // enqueue: an advert can never be collected for a
                // handle this pass has condemned.
                if !suppress && slot.holdings.remove(&fh) {
                    self.peer_condemned.fetch_add(1, Ordering::Relaxed);
                }
                if client == writer {
                    continue;
                }
                slot.buf.record(ts, fh, capacity);
            }
        }
    }

    /// Advertises `client` as holding a clean copy of `fh`. Creates
    /// the client's slot if it has none yet (a delegation-model client
    /// may be advertised before it ever polls): the slot then queues
    /// invalidations from this point on, and the first real `GETINV`
    /// behaves exactly as a poll against an empty buffer.
    pub fn advertise(&self, client: u32, fh: Fh3) {
        let capacity = self.capacity.load(Ordering::SeqCst);
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut buffers = self.stripe(client).guard();
        let clock = self.clock.load(Ordering::SeqCst);
        let slot = buffers.entry(client).or_insert_with(|| StripeSlot {
            buf: ClientBuffer::new(clock, capacity),
            synced: clock,
            epoch,
            holdings: HashSet::new(),
        });
        slot.epoch = epoch;
        if slot.holdings.insert(fh) {
            self.peer_advertised.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes every client's advert for `fh` (delegation recall,
    /// explicit invalidation): after this returns, no collected advert
    /// names the handle. One stripe-lock pass, same rank as
    /// [`Self::record_modification`].
    pub fn condemn(&self, fh: Fh3) {
        if self.deadvertise_suppressed.load(Ordering::SeqCst) {
            return;
        }
        for stripe in &self.stripes {
            let mut buffers = stripe.guard();
            for slot in buffers.values_mut() {
                if slot.holdings.remove(&fh) {
                    self.peer_condemned.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Removes every advert held by one client (the client crashed or
    /// told us it dropped its cache).
    pub fn deadvertise_client(&self, client: u32) {
        let mut buffers = self.stripe(client).guard();
        if let Some(slot) = buffers.get_mut(&client) {
            self.peer_condemned.fetch_add(slot.holdings.len() as u64, Ordering::Relaxed);
            slot.holdings.clear();
        }
    }

    /// Clients currently advertised as holding a clean copy of `fh`,
    /// excluding `exclude` (the requester), sorted by id for
    /// determinism and capped at `cap`.
    pub fn collect_holders(&self, fh: Fh3, exclude: u32, cap: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            let buffers = stripe.guard();
            for (&client, slot) in buffers.iter() {
                if client != exclude && slot.holdings.contains(&fh) {
                    out.push(client);
                }
            }
        }
        out.sort_unstable();
        out.truncate(cap);
        out
    }

    /// Test/chaos knob: when set, modifications and recalls stop
    /// de-advertising peer copies — the `--break-peerread` self-test
    /// the chaos oracle must convict.
    pub fn set_deadvertise_suppressed(&self, suppressed: bool) {
        self.deadvertise_suppressed.store(suppressed, Ordering::SeqCst);
    }

    /// An empty drain anchored at `client`'s current sync point. Used
    /// to satisfy the `peers ⟹ inv` wire-framing invariant when a
    /// reply carries a peer advert but no pending invalidations: the
    /// timestamp never moves past entries still queued for the client,
    /// so applying it is a no-op for invalidation state.
    pub fn empty_drain(&self, client: u32) -> GetinvRes {
        let buffers = self.stripe(client).guard();
        let timestamp = buffers
            .get(&client)
            .map_or_else(|| self.clock.load(Ordering::SeqCst), |slot| slot.synced);
        GetinvRes { timestamp, force_invalidate: false, poll_again: false, handles: Vec::new() }
    }

    /// Processes one `GETINV` call (§4.2.1, server side).
    pub fn getinv(&self, client: u32, last_timestamp: Option<u64>) -> GetinvRes {
        let capacity = self.capacity.load(Ordering::SeqCst);
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut buffers = self.stripe(client).guard();
        let clock = self.clock.load(Ordering::SeqCst);
        let first_contact = !buffers.contains_key(&client);
        let slot = buffers.entry(client).or_insert_with(|| StripeSlot {
            buf: ClientBuffer::new(clock, capacity),
            synced: clock,
            epoch,
            holdings: HashSet::new(),
        });
        slot.epoch = epoch;
        let res = slot.buf.getinv(last_timestamp, clock, first_contact);
        if res.force_invalidate {
            // The client is discarding its whole attribute cache; none
            // of its copies are known-clean any more.
            slot.holdings.clear();
        }
        slot.synced = res.timestamp;
        self.getinv_replies.fetch_add(1, Ordering::Relaxed);
        self.getinv_handles.fetch_add(res.handles.len() as u64, Ordering::Relaxed);
        res
    }

    /// Answers a batch of `GETINV` requests `(client, last_timestamp)`,
    /// coalescing all requests whose clients share a stripe under one
    /// lock acquisition (one shard pass). Observationally equivalent to
    /// calling [`Self::getinv`] once per request in order; replies come
    /// back in request order.
    pub fn getinv_batch(&self, requests: &[(u32, Option<u64>)]) -> Vec<GetinvRes> {
        let capacity = self.capacity.load(Ordering::SeqCst);
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut out: Vec<Option<GetinvRes>> = vec![None; requests.len()];
        for (stripe_idx, stripe) in self.stripes.iter().enumerate() {
            if !requests.iter().any(|&(c, _)| c as usize % INVAL_STRIPES == stripe_idx) {
                continue;
            }
            let mut buffers = stripe.guard();
            let clock = self.clock.load(Ordering::SeqCst);
            for (i, &(client, last_timestamp)) in requests.iter().enumerate() {
                if client as usize % INVAL_STRIPES != stripe_idx {
                    continue;
                }
                let first_contact = !buffers.contains_key(&client);
                let slot = buffers.entry(client).or_insert_with(|| StripeSlot {
                    buf: ClientBuffer::new(clock, capacity),
                    synced: clock,
                    epoch,
                    holdings: HashSet::new(),
                });
                slot.epoch = epoch;
                let res = slot.buf.getinv(last_timestamp, clock, first_contact);
                if res.force_invalidate {
                    slot.holdings.clear();
                }
                slot.synced = res.timestamp;
                self.getinv_replies.fetch_add(1, Ordering::Relaxed);
                self.getinv_handles.fetch_add(res.handles.len() as u64, Ordering::Relaxed);
                out[i] = Some(res);
            }
        }
        out.into_iter().map(|r| r.expect("every request answered")).collect()
    }

    /// Attempts a piggybacked drain for `client`: if the client has a
    /// buffer with pending entries (or an unreported wrap-around), the
    /// drain the client's next `GETINV` would have produced is returned
    /// for free-riding on an outgoing reply. Returns `None` — at zero
    /// cost beyond one stripe lookup — when there is nothing to say.
    ///
    /// Safety: the drain is computed against `synced`, the timestamp of
    /// the last reply this client was handed. If the client never
    /// applies the piggyback, its own timestamp stays behind the
    /// buffer's floor and the next real `GETINV` force-invalidates — a
    /// lost piggyback degrades to one extra full invalidation, never to
    /// a stale cache.
    pub fn try_drain(&self, client: u32) -> Option<GetinvRes> {
        let mut buffers = self.stripe(client).guard();
        let slot = buffers.get_mut(&client)?;
        slot.epoch = self.epoch.load(Ordering::Relaxed);
        if slot.buf.entries.is_empty() && slot.synced >= slot.buf.floor {
            return None;
        }
        let clock = self.clock.load(Ordering::SeqCst);
        let res = slot.buf.getinv(Some(slot.synced), clock, false);
        if res.force_invalidate {
            slot.holdings.clear();
        }
        slot.synced = res.timestamp;
        self.piggyback_replies.fetch_add(1, Ordering::Relaxed);
        self.piggyback_handles.fetch_add(res.handles.len() as u64, Ordering::Relaxed);
        Some(res)
    }

    /// Advances the eviction epoch and drops buffers of clients idle
    /// for more than `max_idle` whole epochs, one batched pass per
    /// stripe. Returns the number of buffers evicted.
    ///
    /// An evicted client re-enters through the first-contact path on
    /// its next poll and is force-invalidated — eviction is invisible
    /// to the protocol beyond that one extra full invalidation. Peer
    /// adverts die with the slot (an idle holder cannot be trusted to
    /// still hold the copy) and are accounted as condemned.
    pub fn advance_epoch(&self, max_idle: u64) -> usize {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let mut evicted = 0;
        let mut condemned = 0u64;
        for stripe in &self.stripes {
            let mut buffers = stripe.guard();
            let before = buffers.len();
            buffers.retain(|_, slot| {
                let keep = epoch.saturating_sub(slot.epoch) <= max_idle;
                if !keep {
                    condemned += slot.holdings.len() as u64;
                }
                keep
            });
            evicted += before - buffers.len();
        }
        self.evicted_buffers.fetch_add(evicted as u64, Ordering::Relaxed);
        self.peer_condemned.fetch_add(condemned, Ordering::Relaxed);
        evicted
    }

    /// Number of registered client buffers.
    pub fn client_count(&self) -> usize {
        self.stripes.iter().map(|s| s.guard().len()).sum()
    }

    /// Entries pending for one client (diagnostics).
    pub fn pending(&self, client: u32) -> usize {
        self.stripe(client).guard().get(&client).map_or(0, |s| s.buf.entries.len())
    }

    /// Rough heap footprint of all client buffers, for the scale
    /// bench's memory counter.
    pub fn approx_bytes(&self) -> usize {
        // Per entry: a (u64, Fh3) deque slot plus a HashSet member.
        const PER_ENTRY: usize = 48;
        // Per client: buffer + map-entry fixed overhead.
        const PER_SLOT: usize = 96;
        // Per peer-advert holding: one HashSet member.
        const PER_HOLDING: usize = 40;
        self.stripes
            .iter()
            .map(|s| {
                let buffers = s.guard();
                buffers
                    .values()
                    .map(|slot| {
                        PER_SLOT
                            + slot.buf.entries.len() * PER_ENTRY
                            + slot.holdings.len() * PER_HOLDING
                    })
                    .sum::<usize>()
            })
            .sum::<usize>()
    }

    /// The tracker's scale counters (stripe-lock contention, reply batch
    /// sizes, piggyback volume, eviction).
    pub fn scale_counters(&self) -> InvalScaleCounters {
        InvalScaleCounters {
            lock_acquisitions: self
                .stripes
                .iter()
                .map(|s| s.acquisitions.load(Ordering::Relaxed))
                .sum(),
            lock_contended: self.stripes.iter().map(|s| s.contended.load(Ordering::Relaxed)).sum(),
            getinv_replies: self.getinv_replies.load(Ordering::Relaxed),
            getinv_handles: self.getinv_handles.load(Ordering::Relaxed),
            piggyback_replies: self.piggyback_replies.load(Ordering::Relaxed),
            piggyback_handles: self.piggyback_handles.load(Ordering::Relaxed),
            evicted_buffers: self.evicted_buffers.load(Ordering::Relaxed),
            peer_advertised: self.peer_advertised.load(Ordering::Relaxed),
            peer_condemned: self.peer_condemned.load(Ordering::Relaxed),
        }
    }

    /// A canonical dump of every client buffer, sorted by client id —
    /// same shape as [`InvalidationTracker::snapshot`].
    pub fn snapshot(&self) -> Vec<BufferSnapshot> {
        let mut out: Vec<BufferSnapshot> = Vec::new();
        for stripe in &self.stripes {
            let buffers = stripe.guard();
            out.extend(buffers.iter().map(|(&c, s)| {
                let (floor, entries) = s.buf.dump();
                (c, floor, entries)
            }));
        }
        out.sort_unstable_by_key(|&(c, _, _)| c);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh(n: u64) -> Fh3 {
        Fh3::from_fileid(n)
    }

    #[test]
    fn bootstrap_forces_invalidation() {
        let mut t = InvalidationTracker::new(8);
        let res = t.getinv(1, None);
        assert!(res.force_invalidate);
        assert!(res.handles.is_empty());
        // Second poll with the returned timestamp is clean.
        let res2 = t.getinv(1, Some(res.timestamp));
        assert!(!res2.force_invalidate);
        assert!(res2.handles.is_empty());
    }

    #[test]
    fn modifications_flow_to_other_clients_only() {
        let mut t = InvalidationTracker::new(8);
        let a = t.getinv(1, None);
        let b = t.getinv(2, None);
        t.record_modification(fh(7), 1);
        let to_writer = t.getinv(1, Some(a.timestamp));
        assert!(to_writer.handles.is_empty(), "writer does not self-invalidate");
        let to_other = t.getinv(2, Some(b.timestamp));
        assert_eq!(to_other.handles, vec![fh(7)]);
    }

    #[test]
    fn repeated_modifications_coalesce() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        for _ in 0..5 {
            t.record_modification(fh(7), 2);
        }
        t.record_modification(fh(8), 2);
        let res = t.getinv(1, Some(boot.timestamp));
        assert_eq!(res.handles, vec![fh(7), fh(8)]);
    }

    #[test]
    fn buffer_is_cleared_after_drain() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        let first = t.getinv(1, Some(boot.timestamp));
        assert_eq!(first.handles.len(), 1);
        let second = t.getinv(1, Some(first.timestamp));
        assert!(second.handles.is_empty());
    }

    #[test]
    fn wrap_around_forces_full_invalidation() {
        let mut t = InvalidationTracker::new(4);
        let boot = t.getinv(1, None);
        for i in 0..10 {
            t.record_modification(fh(100 + i), 2); // distinct files
        }
        // Entries were dropped; the client's timestamp predates the floor.
        let res = t.getinv(1, Some(boot.timestamp));
        assert!(res.force_invalidate);
        assert!(res.handles.is_empty());
        // After the force, polling resumes normally.
        t.record_modification(fh(55), 2);
        let next = t.getinv(1, Some(res.timestamp));
        assert!(!next.force_invalidate);
        assert_eq!(next.handles, vec![fh(55)]);
    }

    #[test]
    fn overflow_with_fresh_timestamp_still_delivers_remainder() {
        let mut t = InvalidationTracker::new(4);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        let mid = t.getinv(1, Some(boot.timestamp));
        assert_eq!(mid.handles.len(), 1);
        // Fewer than capacity new entries: no wrap, normal delivery.
        for i in 0..3 {
            t.record_modification(fh(10 + i), 2);
        }
        let res = t.getinv(1, Some(mid.timestamp));
        assert!(!res.force_invalidate);
        assert_eq!(res.handles.len(), 3);
    }

    #[test]
    fn poll_again_paginates_large_backlogs() {
        let mut t = InvalidationTracker::new(10_000);
        let boot = t.getinv(1, None);
        let total = MAX_INVALIDATIONS_PER_REPLY + 50;
        for i in 0..total {
            t.record_modification(fh(1000 + i as u64), 2);
        }
        let first = t.getinv(1, Some(boot.timestamp));
        assert!(first.poll_again);
        assert_eq!(first.handles.len(), MAX_INVALIDATIONS_PER_REPLY);
        let second = t.getinv(1, Some(first.timestamp));
        assert!(!second.poll_again);
        assert_eq!(second.handles.len(), 50);
        assert!(!second.force_invalidate);
    }

    #[test]
    fn server_restart_bootstrap() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        // Server "restarts": new tracker, no buffers.
        let mut t2 = InvalidationTracker::new(8);
        let res = t2.getinv(1, Some(boot.timestamp));
        assert!(res.force_invalidate, "unknown client after restart is re-bootstrapped");
    }

    #[test]
    fn client_crash_null_timestamp_rebootstraps() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        assert_eq!(t.pending(1), 1);
        // Client crashed, lost its timestamp, polls with null.
        let res = t.getinv(1, None);
        assert!(res.force_invalidate);
        assert_eq!(t.pending(1), 0, "buffer reset on bootstrap");
        let _ = boot;
    }

    #[test]
    fn timestamps_increase_monotonically() {
        let mut t = InvalidationTracker::new(8);
        t.getinv(1, None);
        let mut last = 0;
        for i in 0..20 {
            t.record_modification(fh(i), 2);
            assert!(t.now() > last);
            last = t.now();
        }
    }

    /// One scripted operation against both tracker shapes.
    enum Op {
        Record(u64, u32),
        Getinv(u32, UseTs),
    }

    enum UseTs {
        Null,
        Last,
        Stale,
    }

    /// The concurrent tracker must be operationally indistinguishable
    /// from the reference tracker: same script, same replies — across
    /// bootstrap, coalescing, wrap-around, pagination and restart.
    #[test]
    fn concurrent_tracker_matches_reference() {
        use Op::{Getinv, Record};
        let mut script = vec![
            Getinv(1, UseTs::Null),
            Getinv(2, UseTs::Null),
            Record(7, 1),
            Record(7, 1), // coalesces
            Record(8, 2),
            Getinv(1, UseTs::Last),
            Getinv(2, UseTs::Last),
            Getinv(3, UseTs::Null), // late first contact
        ];
        // Wrap-around (capacity 4) for client 3, then a stale poll.
        for i in 0..10 {
            script.push(Record(100 + i, 1));
        }
        script.push(Getinv(3, UseTs::Stale));
        script.push(Getinv(3, UseTs::Last));
        script.push(Getinv(2, UseTs::Last));
        script.push(Getinv(1, UseTs::Null)); // client 1 restarts

        let mut reference = InvalidationTracker::new(4);
        let concurrent = ConcurrentInvalidationTracker::new(4);
        let mut last_ts: HashMap<u32, u64> = HashMap::new();
        for op in &script {
            match op {
                Record(id, writer) => {
                    reference.record_modification(fh(*id), *writer);
                    concurrent.record_modification(fh(*id), *writer);
                    assert_eq!(reference.now(), concurrent.now());
                }
                Getinv(client, ts) => {
                    let last = match ts {
                        UseTs::Null => None,
                        UseTs::Last => last_ts.get(client).copied(),
                        UseTs::Stale => Some(0),
                    };
                    let a = reference.getinv(*client, last);
                    let b = concurrent.getinv(*client, last);
                    assert_eq!(a, b, "replies diverged for client {client}");
                    last_ts.insert(*client, a.timestamp);
                }
            }
        }
        assert_eq!(reference.snapshot(), concurrent.snapshot());
        assert_eq!(reference.client_count(), concurrent.client_count());
    }

    #[test]
    fn try_drain_returns_pending_and_matches_poll() {
        let t = ConcurrentInvalidationTracker::new(64);
        let boot = t.getinv(1, None);
        assert!(t.try_drain(1).is_none(), "empty buffer piggybacks nothing");
        t.record_modification(fh(7), 2);
        t.record_modification(fh(8), 2);
        let drained = t.try_drain(1).expect("pending entries piggyback");
        assert!(!drained.force_invalidate);
        assert_eq!(drained.handles, vec![fh(7), fh(8)]);
        // The piggyback advanced the server's view: a poll with the
        // piggybacked timestamp is clean.
        let follow = t.getinv(1, Some(drained.timestamp));
        assert!(!follow.force_invalidate);
        assert!(follow.handles.is_empty());
        let _ = boot;
    }

    #[test]
    fn try_drain_never_creates_buffers() {
        let t = ConcurrentInvalidationTracker::new(64);
        assert!(t.try_drain(9).is_none());
        assert_eq!(t.client_count(), 0);
    }

    #[test]
    fn try_drain_after_wrap_forces() {
        let t = ConcurrentInvalidationTracker::new(4);
        let _boot = t.getinv(1, None);
        for i in 0..10 {
            t.record_modification(fh(100 + i), 2); // wraps past capacity 4
        }
        let drained = t.try_drain(1).expect("wrap must be reported");
        assert!(drained.force_invalidate, "piggyback may not silently skip wrapped entries");
        // Follow-up poll with the piggybacked timestamp is clean.
        let follow = t.getinv(1, Some(drained.timestamp));
        assert!(!follow.force_invalidate);
    }

    #[test]
    fn ignored_piggyback_degrades_to_force_not_staleness() {
        let t = ConcurrentInvalidationTracker::new(64);
        let boot = t.getinv(1, None);
        t.record_modification(fh(7), 2);
        let drained = t.try_drain(1).expect("pending entry");
        assert_eq!(drained.handles, vec![fh(7)]);
        // The client never applied the piggyback and polls with its old
        // timestamp: the floor rule must force a full invalidation, so
        // the drained handle is never silently lost.
        let res = t.getinv(1, Some(boot.timestamp));
        assert!(res.force_invalidate);
    }

    #[test]
    fn batch_getinv_matches_per_client_path() {
        let reference = ConcurrentInvalidationTracker::new(8);
        let batched = ConcurrentInvalidationTracker::new(8);
        for t in [&reference, &batched] {
            for c in 1..=6u32 {
                t.getinv(c, None);
            }
            for i in 0..5 {
                t.record_modification(fh(50 + i), 1);
            }
        }
        let requests: Vec<(u32, Option<u64>)> =
            (1..=6u32).map(|c| (c, Some(reference.now()))).collect();
        let a: Vec<GetinvRes> = requests.iter().map(|&(c, ts)| reference.getinv(c, ts)).collect();
        let b = batched.getinv_batch(&requests);
        assert_eq!(a, b);
        assert_eq!(reference.snapshot(), batched.snapshot());
    }

    #[test]
    fn epoch_eviction_drops_only_idle_clients() {
        let t = ConcurrentInvalidationTracker::new(8);
        for c in 1..=10u32 {
            t.getinv(c, None);
        }
        assert_eq!(t.client_count(), 10);
        // Clients 1 and 2 stay active across epochs; the rest go idle.
        for _ in 0..4 {
            t.advance_epoch(2);
            t.getinv(1, None);
            let _ = t.try_drain(2);
        }
        assert_eq!(t.client_count(), 2, "idle clients evicted, active ones kept");
        // An evicted client re-bootstraps like a first contact.
        let res = t.getinv(5, Some(t.now()));
        assert!(res.force_invalidate);
    }

    #[test]
    fn scale_counters_track_lock_and_batch_activity() {
        let t = ConcurrentInvalidationTracker::new(8);
        t.getinv(1, None);
        t.record_modification(fh(1), 2);
        let drained = t.try_drain(1).expect("pending");
        let c = t.scale_counters();
        assert!(c.lock_acquisitions > 0);
        assert_eq!(c.getinv_replies, 1);
        assert_eq!(c.piggyback_replies, 1);
        assert_eq!(c.piggyback_handles, drained.handles.len() as u64);
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn advertise_and_collect_holders() {
        let t = ConcurrentInvalidationTracker::new(8);
        for c in 1..=4u32 {
            t.getinv(c, None);
        }
        t.advertise(1, fh(7));
        t.advertise(2, fh(7));
        t.advertise(2, fh(7)); // repeat coalesces
        t.advertise(3, fh(9));
        // A client the tracker has never seen gets a slot on advertise
        // (delegation clients may never poll).
        t.advertise(99, fh(7));
        assert_eq!(t.collect_holders(fh(7), 4, 8), vec![1, 2, 99]);
        assert_eq!(t.collect_holders(fh(7), 2, 8), vec![1, 99], "requester excluded");
        assert_eq!(t.collect_holders(fh(7), 4, 1), vec![1], "cap respected");
        assert_eq!(t.collect_holders(fh(9), 4, 8), vec![3]);
        let c = t.scale_counters();
        assert_eq!(c.peer_advertised, 4, "repeat advert coalesced");
    }

    #[test]
    fn modification_condemns_all_adverts_including_writer() {
        let t = ConcurrentInvalidationTracker::new(8);
        for c in 1..=3u32 {
            t.getinv(c, None);
        }
        t.advertise(1, fh(7));
        t.advertise(2, fh(7));
        t.advertise(2, fh(8));
        t.record_modification(fh(7), 1);
        assert!(t.collect_holders(fh(7), 99, 8).is_empty(), "write condemns every copy");
        assert_eq!(t.collect_holders(fh(8), 99, 8), vec![2], "other files untouched");
        assert_eq!(t.scale_counters().peer_condemned, 2);
    }

    #[test]
    fn explicit_condemn_and_client_deadvertise() {
        let t = ConcurrentInvalidationTracker::new(8);
        for c in 1..=3u32 {
            t.getinv(c, None);
        }
        t.advertise(1, fh(7));
        t.advertise(2, fh(7));
        t.advertise(2, fh(8));
        t.condemn(fh(7));
        assert!(t.collect_holders(fh(7), 99, 8).is_empty());
        t.deadvertise_client(2);
        assert!(t.collect_holders(fh(8), 99, 8).is_empty());
    }

    #[test]
    fn force_invalidate_clears_holdings() {
        let t = ConcurrentInvalidationTracker::new(4);
        let _boot = t.getinv(1, None);
        t.advertise(1, fh(7));
        // Client restarts and polls with a null timestamp: force path.
        let res = t.getinv(1, None);
        assert!(res.force_invalidate);
        assert!(t.collect_holders(fh(7), 99, 8).is_empty(), "forced client holds nothing");
    }

    #[test]
    fn eviction_drops_holdings_with_the_slot() {
        let t = ConcurrentInvalidationTracker::new(8);
        t.getinv(1, None);
        t.getinv(2, None);
        t.advertise(1, fh(7));
        t.advertise(2, fh(7));
        // Client 2 stays active; client 1 goes idle past the limit.
        for _ in 0..4 {
            t.advance_epoch(2);
            let _ = t.try_drain(2);
        }
        assert_eq!(t.collect_holders(fh(7), 99, 8), vec![2], "evicted peer de-advertised");
    }

    #[test]
    fn suppression_knob_keeps_condemned_adverts() {
        let t = ConcurrentInvalidationTracker::new(8);
        t.getinv(1, None);
        t.getinv(2, None);
        t.advertise(1, fh(7));
        t.set_deadvertise_suppressed(true);
        t.record_modification(fh(7), 2);
        t.condemn(fh(7));
        assert_eq!(
            t.collect_holders(fh(7), 2, 8),
            vec![1],
            "suppressed de-advertise leaves the stale advert for the oracle to convict"
        );
        t.set_deadvertise_suppressed(false);
        t.record_modification(fh(7), 2);
        assert!(t.collect_holders(fh(7), 2, 8).is_empty());
    }

    #[test]
    fn concurrent_reset_rebootstraps_clients() {
        let t = ConcurrentInvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        assert_eq!(t.pending(1), 1);
        t.reset(8);
        assert_eq!(t.client_count(), 0);
        let res = t.getinv(1, Some(boot.timestamp));
        assert!(res.force_invalidate, "buffers lost in reset force a bootstrap");
    }
}
