/root/repo/target/debug/deps/gvfs_workloads-fa17d3b69b64e8a6.d: crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs

/root/repo/target/debug/deps/gvfs_workloads-fa17d3b69b64e8a6: crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs

crates/workloads/src/lib.rs:
crates/workloads/src/ch1d.rs:
crates/workloads/src/lock.rs:
crates/workloads/src/make.rs:
crates/workloads/src/nanomos.rs:
crates/workloads/src/postmark.rs:
