//! ONC RPC ([RFC 5531]) for the GVFS stack.
//!
//! This crate implements the Remote Procedure Call layer that NFS — and the
//! GVFS proxy extensions — run over:
//!
//! * [`message`] — the `rpc_msg` wire structures: calls, replies, accepted
//!   and rejected status, and the `AUTH_NONE` / `AUTH_SYS` credential
//!   flavors (plus the GVFS session-key flavor used by proxy clients to
//!   identify themselves and advertise their callback port, §4.3.2 of the
//!   paper).
//! * [`record`] — the TCP record-marking stream codec.
//! * [`channel`] — the transport-independent [`channel::RpcChannel`]
//!   abstraction: `send` returns a pending call, `wait` claims its reply,
//!   so many xids can be in flight on one connection (the paper's §4.3
//!   multithreaded proxies pipelining callbacks and delayed writes).
//! * [`dispatch`] — server-side program registration and call routing.
//! * [`drc`] — the duplicate request cache replaying replies to
//!   retransmitted non-idempotent calls.
//! * [`tcp`] — the same stack over real TCP sockets (the simulator in
//!   `gvfs-netsim` is one transport; this is another).
//! * [`stats`] — per-procedure call/byte counters used by the experiment
//!   harness to reproduce the paper's "RPCs transferred over the network"
//!   figures.
//! * [`breaker`] — the per-peer WAN health supervisor: a deterministic
//!   closed/open/half-open circuit breaker fed by call outcomes and a
//!   latency EWMA, consulted by the proxy's degradation ladder and the
//!   server's lease-based recall short-circuit.
//!
//! # Examples
//!
//! Encoding a call and routing it through a dispatcher:
//!
//! ```
//! use gvfs_rpc::dispatch::{Dispatcher, RpcService};
//! use gvfs_rpc::message::{CallBody, OpaqueAuth};
//!
//! struct Echo;
//! impl RpcService for Echo {
//!     fn program(&self) -> u32 { 99 }
//!     fn version(&self) -> u32 { 1 }
//!     fn call(&self, _proc: u32, args: &[u8]) -> Result<Vec<u8>, gvfs_rpc::RpcError> {
//!         Ok(args.to_vec())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dispatcher = Dispatcher::new();
//! dispatcher.register(Echo);
//! let call = CallBody::new(99, 1, 0, OpaqueAuth::none(), vec![1, 2, 3, 4]);
//! let reply = dispatcher.dispatch(7, &call);
//! assert_eq!(reply.results().unwrap(), &[1, 2, 3, 4]);
//! # Ok(())
//! # }
//! ```
//!
//! [RFC 5531]: https://www.rfc-editor.org/rfc/rfc5531

pub mod breaker;
pub mod channel;
pub mod dispatch;
pub mod drc;
pub mod message;
pub mod record;
pub mod stats;
pub mod tcp;

mod error;

pub use error::RpcError;
