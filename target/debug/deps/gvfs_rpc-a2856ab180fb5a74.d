/root/repo/target/debug/deps/gvfs_rpc-a2856ab180fb5a74.d: crates/rpc/src/lib.rs crates/rpc/src/dispatch.rs crates/rpc/src/drc.rs crates/rpc/src/message.rs crates/rpc/src/record.rs crates/rpc/src/stats.rs crates/rpc/src/tcp.rs crates/rpc/src/error.rs

/root/repo/target/debug/deps/libgvfs_rpc-a2856ab180fb5a74.rlib: crates/rpc/src/lib.rs crates/rpc/src/dispatch.rs crates/rpc/src/drc.rs crates/rpc/src/message.rs crates/rpc/src/record.rs crates/rpc/src/stats.rs crates/rpc/src/tcp.rs crates/rpc/src/error.rs

/root/repo/target/debug/deps/libgvfs_rpc-a2856ab180fb5a74.rmeta: crates/rpc/src/lib.rs crates/rpc/src/dispatch.rs crates/rpc/src/drc.rs crates/rpc/src/message.rs crates/rpc/src/record.rs crates/rpc/src/stats.rs crates/rpc/src/tcp.rs crates/rpc/src/error.rs

crates/rpc/src/lib.rs:
crates/rpc/src/dispatch.rs:
crates/rpc/src/drc.rs:
crates/rpc/src/message.rs:
crates/rpc/src/record.rs:
crates/rpc/src/stats.rs:
crates/rpc/src/tcp.rs:
crates/rpc/src/error.rs:
