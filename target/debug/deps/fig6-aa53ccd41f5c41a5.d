/root/repo/target/debug/deps/fig6-aa53ccd41f5c41a5.d: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-aa53ccd41f5c41a5.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
