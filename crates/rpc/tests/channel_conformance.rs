//! The shared cross-transport conformance suite, run over the TCP
//! channel. The netsim crate runs the identical suite over the
//! simulated channel (`crates/netsim/tests/channel_conformance.rs`);
//! keeping both green is what guarantees the two [`RpcChannel`]
//! implementations stay behavior-identical.
//!
//! [`RpcChannel`]: gvfs_rpc::channel::RpcChannel

use gvfs_rpc::channel::testkit;
use gvfs_rpc::dispatch::Dispatcher;
use gvfs_rpc::tcp::{TcpRpcClient, TcpRpcServer};

fn start() -> gvfs_rpc::tcp::TcpServerHandle {
    let mut dispatcher = Dispatcher::new();
    dispatcher.register(testkit::ConformanceService);
    TcpRpcServer::bind("127.0.0.1:0", dispatcher).expect("bind").spawn()
}

#[test]
fn tcp_channel_echo_roundtrip() {
    let handle = start();
    let client = TcpRpcClient::connect(handle.addr()).expect("connect");
    testkit::check_echo_roundtrip(&client);
    handle.shutdown();
}

#[test]
fn tcp_channel_garbage_args() {
    let handle = start();
    let client = TcpRpcClient::connect(handle.addr()).expect("connect");
    testkit::check_garbage_args(&client);
    handle.shutdown();
}

#[test]
fn tcp_channel_unknown_procedure() {
    let handle = start();
    let client = TcpRpcClient::connect(handle.addr()).expect("connect");
    testkit::check_unknown_procedure(&client);
    handle.shutdown();
}

#[test]
fn tcp_channel_oversized_record() {
    let handle = start();
    let client = TcpRpcClient::connect(handle.addr()).expect("connect");
    testkit::check_oversized_record(&client);
    handle.shutdown();
}

#[test]
fn tcp_channel_concurrent_xids_out_of_order() {
    let handle = start();
    let client = TcpRpcClient::connect(handle.addr()).expect("connect");
    testkit::check_concurrent_xids_out_of_order(&client);
    handle.shutdown();
}

#[test]
fn tcp_channel_concurrent_read_burst() {
    let handle = start();
    let client = TcpRpcClient::connect(handle.addr()).expect("connect");
    testkit::check_concurrent_read_burst(&client);
    handle.shutdown();
}

#[test]
fn tcp_channel_concurrent_peerread_burst() {
    let handle = start();
    let client = TcpRpcClient::connect(handle.addr()).expect("connect");
    testkit::check_concurrent_peerread_burst(&client);
    handle.shutdown();
}
