/root/repo/target/debug/deps/gvfs_analysis-6dee41489f993954.d: crates/analysis/src/main.rs

/root/repo/target/debug/deps/gvfs_analysis-6dee41489f993954: crates/analysis/src/main.rs

crates/analysis/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analysis
