//! Figure 4: the Make benchmark.
//!
//! (a) RPCs transferred over the network and (b) runtimes, for native
//! NFS, GVFS with read-only caching, and GVFS with write-back caching,
//! on LAN and WAN. Also prints the §5.1.1 LAN interception-overhead
//! numbers (E8).
//!
//! Run: `cargo run --release -p gvfs-bench --bin fig4 [--small]`

use gvfs_bench::{print_table, rpc_meta, save_json, small_mode, RpcBreakdown};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_rpc::stats::RpcStats;
use gvfs_vfs::Vfs;
use gvfs_workloads::make::{self, MakeConfig};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Setup {
    Nfs,
    Gvfs,
    GvfsWb,
}

impl Setup {
    fn name(self) -> &'static str {
        match self {
            Setup::Nfs => "NFS",
            Setup::Gvfs => "GVFS",
            Setup::GvfsWb => "GVFS-WB",
        }
    }
}

struct Outcome {
    runtime: Duration,
    rpcs: RpcBreakdown,
    rpc: serde_json::Value,
    /// Proxy read-path counters (absent for native NFS, which has no proxy).
    read_path: serde_json::Value,
}

fn run_one(setup: Setup, link: LinkConfig, config: &MakeConfig) -> Outcome {
    let vfs = Arc::new(Vfs::new());
    make::populate(&vfs, config);
    let sim = Sim::new();
    let result = Arc::new(Mutex::new(None));

    let (transport, root, stats): (_, _, RpcStats) = match setup {
        Setup::Nfs => {
            let native = NativeMount::establish(1, link, Some(vfs));
            (native.client_transport(0), native.root_fh(), native.stats().clone())
        }
        Setup::Gvfs | Setup::GvfsWb => {
            let session_config = SessionConfig {
                model: ConsistencyModel::polling_30s(),
                write_back: setup == Setup::GvfsWb,
                ..SessionConfig::default()
            };
            let session =
                Session::builder(session_config).clients(1).wan(link).vfs(vfs).establish(&sim);
            let t = session.client_transport(0);
            let root = session.root_fh();
            let stats = session.wan_stats().clone();
            let handle = session.handle();
            let r2 = Arc::clone(&result);
            let cfg = config.clone();
            sim.spawn("builder", move || {
                let client = NfsClient::new(t, root, MountOptions::default());
                let report = make::run(&client, &cfg);
                // Unmount at the end of the session: flush delayed writes
                // (charged to the build, as unmounting would be).
                handle.shutdown();
                *r2.lock() = Some(report);
            });
            sim.run();
            let report = result.lock().take().expect("report");
            let snap = stats.snapshot();
            return Outcome {
                runtime: report.runtime,
                rpcs: RpcBreakdown::from_snapshot(&snap),
                rpc: rpc_meta(&snap),
                read_path: gvfs_bench::read_path_json(&session.proxy_client(0).stats()),
            };
        }
    };

    let r2 = Arc::clone(&result);
    let cfg = config.clone();
    sim.spawn("builder", move || {
        let client = NfsClient::new(transport, root, MountOptions::default());
        *r2.lock() = Some(make::run(&client, &cfg));
    });
    sim.run();
    let report = result.lock().take().expect("report");
    let snap = stats.snapshot();
    Outcome {
        runtime: report.runtime,
        rpcs: RpcBreakdown::from_snapshot(&snap),
        rpc: rpc_meta(&snap),
        read_path: serde_json::Value::Null,
    }
}

fn main() {
    let config = if small_mode() { MakeConfig::small() } else { MakeConfig::default() };
    let setups = [Setup::Nfs, Setup::Gvfs, Setup::GvfsWb];

    // --- Figure 4(a): WAN RPC counts ---
    let mut wan_outcomes = Vec::new();
    for setup in setups {
        wan_outcomes.push((setup, run_one(setup, LinkConfig::wan(), &config)));
    }
    let rows: Vec<Vec<String>> = wan_outcomes
        .iter()
        .map(|(s, o)| {
            vec![
                s.name().to_string(),
                o.rpcs.getattr.to_string(),
                o.rpcs.lookup.to_string(),
                o.rpcs.read.to_string(),
                o.rpcs.write.to_string(),
                o.rpcs.getinv.to_string(),
                o.rpcs.other.to_string(),
                o.rpcs.total().to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 4(a): Make — RPCs over the WAN",
        &["setup", "GETATTR", "LOOKUP", "READ", "WRITE", "GETINV", "other", "total"],
        &rows,
    );

    // --- Figure 4(b): runtimes LAN and WAN ---
    let mut lan_outcomes = Vec::new();
    for setup in setups {
        lan_outcomes.push((setup, run_one(setup, LinkConfig::lan(), &config)));
    }
    let rows: Vec<Vec<String>> = setups
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                s.name().to_string(),
                format!("{:.1}", lan_outcomes[i].1.runtime.as_secs_f64()),
                format!("{:.1}", wan_outcomes[i].1.runtime.as_secs_f64()),
            ]
        })
        .collect();
    print_table("Figure 4(b): Make — runtime (seconds)", &["setup", "LAN", "WAN"], &rows);

    let nfs_wan = wan_outcomes[0].1.runtime.as_secs_f64();
    let gvfs_wan = wan_outcomes[1].1.runtime.as_secs_f64();
    println!("\nWAN speedup GVFS vs NFS: {:.2}x", nfs_wan / gvfs_wan);

    // --- §5.1.1 LAN overhead (E8) ---
    let nfs_lan = lan_outcomes[0].1.runtime.as_secs_f64();
    let overhead_ro = (lan_outcomes[1].1.runtime.as_secs_f64() / nfs_lan - 1.0) * 100.0;
    let overhead_wb = (lan_outcomes[2].1.runtime.as_secs_f64() / nfs_lan - 1.0) * 100.0;
    println!(
        "LAN interception overhead: GVFS {overhead_ro:+.1}%  GVFS-WB {overhead_wb:+.1}%  (paper: 4% / 8%)"
    );

    save_json(
        "fig4.json",
        &serde_json::json!({
            "experiment": "fig4-make",
            "config": { "sources": config.sources, "headers": config.headers, "objects": config.objects },
            "wan": wan_outcomes.iter().map(|(s, o)| serde_json::json!({
                "setup": s.name(),
                "runtime_s": o.runtime.as_secs_f64(),
                "rpcs": o.rpcs.to_json(),
                "rpc": o.rpc,
                "read_path": o.read_path,
            })).collect::<Vec<_>>(),
            "lan": lan_outcomes.iter().map(|(s, o)| serde_json::json!({
                "setup": s.name(),
                "runtime_s": o.runtime.as_secs_f64(),
            })).collect::<Vec<_>>(),
            "wan_speedup_gvfs_vs_nfs": nfs_wan / gvfs_wan,
            "lan_overhead_pct": { "gvfs": overhead_ro, "gvfs_wb": overhead_wb },
        }),
    );
}
