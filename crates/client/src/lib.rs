//! Kernel NFSv3 client emulation.
//!
//! The paper's measurements hinge on how the *kernel* NFS client behaves:
//! its attribute cache issues timeout-driven `GETATTR` revalidations
//! (tens of thousands during a `make`), its lookup cache (dnlc) converts
//! repeated path walks into `GETATTR`s on directories, and its page cache
//! serves repeated reads but is validated against file mtimes. This crate
//! reproduces that behaviour over the simulated transport:
//!
//! * **Attribute cache** with Linux-style adaptive timeouts
//!   (`acregmin`/`acregmax`, `acdirmin`/`acdirmax`): the timeout doubles
//!   each time revalidation finds the file unchanged and resets to the
//!   minimum when it changed. `noac` disables caching entirely (the
//!   paper's NFS-noac setup).
//! * **Lookup cache** mapping `(dir, name) → fh`, validated through the
//!   directory's attribute cache; a directory mtime change drops its
//!   entries.
//! * **Page cache** in transfer-size blocks with LRU eviction, validated
//!   by mtime: a changed mtime purges the file's pages
//!   (close-to-open consistency on [`NfsClient::open`]).
//! * **Retry** with exponential backoff on timeouts and partitions, like
//!   a hard NFS mount.
//!
//! # Examples
//!
//! See `tests/` in this crate and the workspace integration tests; an
//! `NfsClient` needs a simulation actor to run in:
//!
//! ```no_run
//! use gvfs_client::{MountOptions, NfsClient};
//! # fn transport() -> gvfs_netsim::transport::SimRpcClient { unimplemented!() }
//! # fn root() -> gvfs_nfs3::Fh3 { unimplemented!() }
//! let client = NfsClient::new(transport(), root(), MountOptions::default());
//! let data = client.read_file("/etc/motd").unwrap();
//! ```

mod cache;
mod client;
mod options;

pub use cache::{AttrCache, LookupCache, PageCache};
pub use client::{mount, ClientError, DirEntryInfo, NfsClient};
pub use options::MountOptions;
