/root/repo/target/debug/deps/proptest_roundtrip-465132eb2d8f32f6.d: crates/xdr/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-465132eb2d8f32f6: crates/xdr/tests/proptest_roundtrip.rs

crates/xdr/tests/proptest_roundtrip.rs:
