//! Mount options mirroring the Linux NFS client knobs the paper varies.

use std::time::Duration;

/// NFS mount options.
///
/// The defaults match a stock Linux NFSv3 mount; the paper's setups map
/// to: `NFS-inv` = `with_attr_timeout(30s)`, `NFS-noac` = [`MountOptions::noac`],
/// GVFS2's base = `noac` on the kernel client with GVFS providing
/// consistency above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MountOptions {
    /// Minimum attribute cache timeout for regular files.
    pub acregmin: Duration,
    /// Maximum attribute cache timeout for regular files.
    pub acregmax: Duration,
    /// Minimum attribute cache timeout for directories.
    pub acdirmin: Duration,
    /// Maximum attribute cache timeout for directories.
    pub acdirmax: Duration,
    /// Disable attribute caching entirely (`noac`).
    pub noac: bool,
    /// Enforce close-to-open consistency: revalidate attributes on every
    /// [`crate::NfsClient::open`].
    pub close_to_open: bool,
    /// Read/write transfer size in bytes (also the page size).
    pub transfer_size: u32,
    /// Page cache capacity in bytes (the VM buffer cache; the paper's
    /// clients were 256 MB VMs, leaving roughly this much for pages).
    pub page_cache_bytes: usize,
    /// Lookup (dnlc) cache capacity in entries.
    pub lookup_cache_entries: usize,
    /// Maximum RPC retries before giving up (hard mounts retry long).
    pub max_retries: u32,
    /// Backoff between retries.
    pub retry_backoff: Duration,
}

impl Default for MountOptions {
    fn default() -> Self {
        MountOptions {
            acregmin: Duration::from_secs(3),
            acregmax: Duration::from_secs(60),
            acdirmin: Duration::from_secs(30),
            acdirmax: Duration::from_secs(60),
            noac: false,
            close_to_open: true,
            transfer_size: 32 * 1024,
            page_cache_bytes: 64 * 1024 * 1024,
            lookup_cache_entries: 4096,
            max_retries: 120,
            retry_backoff: Duration::from_secs(1),
        }
    }
}

impl MountOptions {
    /// A mount with a fixed attribute timeout for files and directories
    /// (the paper's 30-second revalidation period setups).
    pub fn with_attr_timeout(timeout: Duration) -> Self {
        MountOptions {
            acregmin: timeout,
            acregmax: timeout,
            acdirmin: timeout,
            acdirmax: timeout,
            ..Default::default()
        }
    }

    /// A `noac` mount: every access revalidates attributes.
    pub fn noac() -> Self {
        MountOptions { noac: true, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_linux_like() {
        let o = MountOptions::default();
        assert_eq!(o.acregmin, Duration::from_secs(3));
        assert!(!o.noac);
        assert!(o.close_to_open);
    }

    #[test]
    fn fixed_timeout_sets_all_four() {
        let o = MountOptions::with_attr_timeout(Duration::from_secs(30));
        assert_eq!(o.acregmin, o.acregmax);
        assert_eq!(o.acdirmin, Duration::from_secs(30));
    }

    #[test]
    fn noac_flag() {
        assert!(MountOptions::noac().noac);
    }
}
