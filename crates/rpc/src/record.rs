//! TCP record marking (RFC 5531 §11).
//!
//! When RPC runs over a byte stream, each message is sent as a *record*
//! split into one or more *fragments*. Each fragment is preceded by a
//! 32-bit header: the top bit marks the final fragment of the record and
//! the low 31 bits carry the fragment length.
//!
//! [`write_record`] frames a message; [`RecordReader`] incrementally
//! reassembles records from arbitrarily-chunked input, as a socket would
//! deliver it.

use crate::RpcError;

/// Largest fragment this implementation emits. Readers accept any
/// RFC-legal fragment size.
pub const MAX_FRAGMENT: usize = 1 << 20;

/// Hard cap on a reassembled record, to bound memory under hostile input.
pub const MAX_RECORD: usize = 1 << 26;

/// Checks that a message of `len` bytes may legally be sent as one
/// record. Senders on every transport apply this before transmitting so
/// an oversized message is rejected locally instead of poisoning the
/// connection (receivers would drop it per [`RecordReader::push`]).
///
/// # Errors
///
/// Returns [`RpcError::SystemError`] when `len` exceeds [`MAX_RECORD`].
pub fn ensure_sendable(len: usize) -> Result<(), RpcError> {
    if len > MAX_RECORD {
        return Err(RpcError::SystemError {
            detail: format!("message of {len} bytes exceeds the {MAX_RECORD}-byte record limit"),
        });
    }
    Ok(())
}

/// Frames `payload` as a record-marked byte sequence, splitting into
/// fragments of at most `max_fragment` bytes.
///
/// # Panics
///
/// Panics if `max_fragment` is zero.
///
/// # Examples
///
/// ```
/// let framed = gvfs_rpc::record::write_record(&[1, 2, 3], gvfs_rpc::record::MAX_FRAGMENT);
/// assert_eq!(framed, vec![0x80, 0, 0, 3, 1, 2, 3]);
/// ```
pub fn write_record(payload: &[u8], max_fragment: usize) -> Vec<u8> {
    assert!(max_fragment > 0, "max_fragment must be positive");
    let mut out = Vec::with_capacity(payload.len() + 8);
    if payload.is_empty() {
        out.extend_from_slice(&0x8000_0000u32.to_be_bytes());
        return out;
    }
    let mut chunks = payload.chunks(max_fragment).peekable();
    while let Some(chunk) = chunks.next() {
        let mut header = chunk.len() as u32;
        if chunks.peek().is_none() {
            header |= 0x8000_0000;
        }
        out.extend_from_slice(&header.to_be_bytes());
        out.extend_from_slice(chunk);
    }
    out
}

/// Incremental reassembler of record-marked streams.
///
/// Feed it bytes in any chunking with [`RecordReader::push`]; complete
/// records come out of [`RecordReader::pop`].
///
/// # Examples
///
/// ```
/// use gvfs_rpc::record::{write_record, RecordReader, MAX_FRAGMENT};
///
/// # fn main() -> Result<(), gvfs_rpc::RpcError> {
/// let framed = write_record(b"hello", MAX_FRAGMENT);
/// let mut reader = RecordReader::new();
/// for byte in framed {
///     reader.push(&[byte])?; // worst-case chunking: one byte at a time
/// }
/// assert_eq!(reader.pop().as_deref(), Some(&b"hello"[..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct RecordReader {
    buf: Vec<u8>,
    record: Vec<u8>,
    complete: std::collections::VecDeque<Vec<u8>>,
}

impl RecordReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes, reassembling any records they complete.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError::SystemError`] if a record would exceed
    /// [`MAX_RECORD`].
    pub fn push(&mut self, data: &[u8]) -> Result<(), RpcError> {
        self.buf.extend_from_slice(data);
        loop {
            if self.buf.len() < 4 {
                return Ok(());
            }
            let header = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
            let last = header & 0x8000_0000 != 0;
            let len = (header & 0x7fff_ffff) as usize;
            if self.record.len() + len > MAX_RECORD {
                return Err(RpcError::SystemError {
                    detail: format!("record exceeds {MAX_RECORD} bytes"),
                });
            }
            if self.buf.len() < 4 + len {
                return Ok(());
            }
            self.record.extend_from_slice(&self.buf[4..4 + len]);
            self.buf.drain(..4 + len);
            if last {
                self.complete.push_back(std::mem::take(&mut self.record));
            }
        }
    }

    /// Removes and returns the oldest complete record, if any.
    pub fn pop(&mut self) -> Option<Vec<u8>> {
        self.complete.pop_front()
    }

    /// Number of complete records waiting to be popped.
    pub fn pending(&self) -> usize {
        self.complete.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fragment_roundtrip() {
        let framed = write_record(b"abcd", MAX_FRAGMENT);
        let mut r = RecordReader::new();
        r.push(&framed).unwrap();
        assert_eq!(r.pop().unwrap(), b"abcd");
        assert!(r.pop().is_none());
    }

    #[test]
    fn multi_fragment_roundtrip() {
        let payload: Vec<u8> = (0..=255).collect();
        let framed = write_record(&payload, 16);
        // 256/16 = 16 fragments, each with a 4-byte header
        assert_eq!(framed.len(), 256 + 16 * 4);
        let mut r = RecordReader::new();
        r.push(&framed).unwrap();
        assert_eq!(r.pop().unwrap(), payload);
    }

    #[test]
    fn empty_record_roundtrip() {
        let framed = write_record(&[], MAX_FRAGMENT);
        assert_eq!(framed, vec![0x80, 0, 0, 0]);
        let mut r = RecordReader::new();
        r.push(&framed).unwrap();
        assert_eq!(r.pop().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let framed = write_record(b"stream me", 4);
        let mut r = RecordReader::new();
        for b in &framed {
            r.push(std::slice::from_ref(b)).unwrap();
        }
        assert_eq!(r.pop().unwrap(), b"stream me");
    }

    #[test]
    fn two_records_in_one_push() {
        let mut stream = write_record(b"one", MAX_FRAGMENT);
        stream.extend(write_record(b"two!", MAX_FRAGMENT));
        let mut r = RecordReader::new();
        r.push(&stream).unwrap();
        assert_eq!(r.pending(), 2);
        assert_eq!(r.pop().unwrap(), b"one");
        assert_eq!(r.pop().unwrap(), b"two!");
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut r = RecordReader::new();
        // Non-final fragment claiming 0x7fffffff bytes repeatedly would
        // overflow MAX_RECORD; the header alone triggers the check once
        // enough has accumulated. Simulate with headers claiming max size.
        let header = 0x7fff_ffffu32.to_be_bytes();
        let err = r.push(&header).unwrap_err();
        assert!(matches!(err, RpcError::SystemError { .. }));
    }

    #[test]
    #[should_panic(expected = "max_fragment")]
    fn zero_fragment_size_panics() {
        let _ = write_record(b"x", 0);
    }
}
