//! Session establishment — the middleware role (Figure 1).
//!
//! A GVFS session overlays shared physical resources: one kernel NFS
//! server, a proxy server beside it, and per-client proxy clients, each
//! pair joined by a WAN link and fronted to its kernel NFS client over
//! loopback. The [`SessionBuilder`] performs what the paper's
//! middleware does — dynamic creation and configuration of the proxies
//! with the session's consistency model and cache policy — and spawns
//! the background actors (invalidation pollers, write-back flushers,
//! the delegation sweeper).
//!
//! [`NativeMount`] builds the baseline the paper compares against:
//! kernel NFS clients talking straight to the kernel NFS server across
//! the WAN, no proxies.

use crate::model::ConsistencyModel;
use crate::proxy::client::{CallbackService, ProxyClient};
use crate::proxy::server::ProxyServer;
use gvfs_netsim::link::{Link, LinkConfig};
use gvfs_netsim::transport::{ServerNode, SimRpcClient};
use gvfs_netsim::Sim;
use gvfs_nfs3::Fh3;
use gvfs_rpc::dispatch::Dispatcher;
use gvfs_rpc::message::{GvfsCred, OpaqueAuth};
use gvfs_rpc::stats::RpcStats;
use gvfs_server::Nfs3Server;
use gvfs_vfs::{Timestamp, Vfs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Forwards a whole RPC program to an upstream node unmodified — used
/// to carry the MOUNT protocol through the proxy chain so kernel
/// clients bootstrap "in the same way as conventional NFS" (§2).
struct ForwardService {
    program: u32,
    version: u32,
    upstream: SimRpcClient,
}

impl gvfs_rpc::dispatch::RpcService for ForwardService {
    fn program(&self) -> u32 {
        self.program
    }
    fn version(&self) -> u32 {
        self.version
    }
    fn call(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, gvfs_rpc::RpcError> {
        self.upstream.call(self.program, self.version, procedure, args.to_vec())
    }
}

/// The export path every session and native mount publishes via the
/// MOUNT protocol.
pub const EXPORT_PATH: &str = "/export/grid";

/// Session-wide configuration chosen by the middleware.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// The consistency model.
    pub model: ConsistencyModel,
    /// Enable write-back caching at the proxy clients (the paper's
    /// GVFS-WB setup; under delegation, delayed writes additionally
    /// require a write delegation).
    pub write_back: bool,
    /// Proxy disk-cache capacity per client, in bytes.
    pub disk_cache_bytes: usize,
    /// Per-client invalidation buffer capacity (entries).
    pub invalidation_buffer: usize,
    /// Per-RPC processing time modelled for each proxy process (the
    /// user-level interception overhead the paper measures at 4–8 % on
    /// a LAN: forwarded calls pay two extra process traversals).
    pub proxy_proc_time: Duration,
    /// Per-RPC processing time of the kernel NFS server.
    pub nfs_proc_time: Duration,
    /// Delegation sweeper period (speculated closes); `None` disables.
    pub sweep_interval: Option<Duration>,
    /// Pipeline write-back WRITE batches over the WAN (xid-multiplexed
    /// sends sharing one round trip). Disabled, each flushed block pays
    /// a full round trip; the `pipelining` ablation measures the gap.
    pub pipeline_writeback: bool,
    /// Pipeline the read path: fetch only the uncached gaps of a READ
    /// as one concurrent burst, and run the sequential read-ahead
    /// window. Disabled, a miss forwards the whole READ and pays one
    /// round trip per request; the `readahead` ablation measures the
    /// gap.
    pub pipeline_read: bool,
    /// Sequential read-ahead window, in `BLOCK_SIZE` blocks
    /// speculatively fetched past a detected sequential run. Zero
    /// disables speculation while keeping gap-only fetching.
    pub readahead_window: usize,
    /// Number of consecutive sequential reads that arms the
    /// read-ahead window.
    pub readahead_trigger: usize,
    /// Maximum transparent retransmissions of one forwarded call before
    /// the proxy gives up and surfaces the transport error (hard-mount
    /// semantics bounded by a budget instead of the clock). Back-off
    /// between attempts is exponential with per-client jitter.
    pub retry_budget: u32,
    /// How long a client's WAN breaker must have been open before the
    /// degradation ladder engages and cached reads are served without
    /// revalidation (delegation model only; see `max_staleness`).
    pub degrade_after: Duration,
    /// Bounded-staleness limit for degraded serving: while the breaker
    /// is open, a cached read is answered locally only if the cache was
    /// validated against the server within this window. `None` disables
    /// the degradation ladder entirely — forwarded calls hard-retry
    /// through the outage (the availability ablation's baseline arm).
    pub max_staleness: Option<Duration>,
    /// Back each proxy client's cache with the persistent
    /// content-addressed block store instead of the in-memory one: the
    /// cache survives a proxy-machine crash (torn writes discarded) and
    /// a restarted session over the same disks serves clean blocks warm.
    pub persistent_store: bool,
    /// Files at or below this size are stored as one whole-file chunk
    /// by the persistent store (full-file mode); larger files are
    /// chunked per transfer block. Ignored by the in-memory store.
    pub store_file_threshold: u64,
    /// Simulated performance envelope of each proxy machine's local
    /// disk (seek time and throughput, charged to virtual time).
    /// Ignored by the in-memory store.
    pub disk: gvfs_netsim::disk::DiskConfig,
    /// Enable peer-to-peer block sourcing (`PEERREAD`): the origin
    /// advertises live holders of clean blocks, and gap fetches try the
    /// lowest-latency advertised peer over a LAN link before paying the
    /// WAN round trip to the origin. Off, the wire traffic is
    /// byte-identical to a star-only session.
    pub peer_read: bool,
    /// Link configuration of every client↔client peer link (only built
    /// when [`SessionConfig::peer_read`] is on).
    pub peer_lan: LinkConfig,
    /// Background scrub period per client: each tick verifies a batch
    /// of stored checksums ahead of demand and re-fetches whatever the
    /// sweep quarantines. `None` (the default) disables the scrub
    /// actor; only meaningful with [`SessionConfig::persistent_store`].
    pub scrub_period: Option<Duration>,
    /// Bytes of stored content each scrub tick verifies.
    pub scrub_batch: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            model: ConsistencyModel::Passthrough,
            write_back: false,
            disk_cache_bytes: 4 << 30,
            invalidation_buffer: 4096,
            proxy_proc_time: Duration::from_micros(1000),
            nfs_proc_time: Duration::from_micros(200),
            sweep_interval: Some(Duration::from_secs(60)),
            pipeline_writeback: true,
            pipeline_read: true,
            readahead_window: 8,
            readahead_trigger: 2,
            retry_budget: 600,
            degrade_after: Duration::from_secs(2),
            max_staleness: Some(Duration::from_secs(120)),
            persistent_store: false,
            store_file_threshold: 64 * 1024,
            disk: gvfs_netsim::disk::DiskConfig::ssd(),
            peer_read: false,
            peer_lan: LinkConfig::lan(),
            scrub_period: None,
            scrub_batch: 4 << 20,
        }
    }
}

/// Builder for a [`Session`].
#[derive(Debug)]
pub struct SessionBuilder {
    config: SessionConfig,
    clients: usize,
    wan: LinkConfig,
    client_links: Option<Vec<LinkConfig>>,
    loopback: LinkConfig,
    vfs: Option<Arc<Vfs>>,
    client_disks: Option<Vec<Arc<gvfs_netsim::disk::VirtualDisk>>>,
    session_key: u64,
}

impl SessionBuilder {
    /// Number of proxy clients (client machines) in the session.
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n;
        self
    }

    /// The WAN link configuration used for every client–server link.
    pub fn wan(mut self, config: LinkConfig) -> Self {
        self.wan = config;
        self
    }

    /// Per-client link configurations (overrides [`SessionBuilder::wan`]
    /// and [`SessionBuilder::clients`]); lets a session mix WAN users
    /// with a LAN administrator, as in the paper's software-repository
    /// scenario (Figure 1, VC5).
    pub fn client_links(mut self, links: Vec<LinkConfig>) -> Self {
        self.clients = links.len();
        self.client_links = Some(links);
        self
    }

    /// Uses an existing (pre-populated) filesystem instead of an empty
    /// one.
    pub fn vfs(mut self, vfs: Arc<Vfs>) -> Self {
        self.vfs = Some(vfs);
        self
    }

    /// Uses existing per-client virtual disks for the persistent store
    /// instead of fresh ones — a session established over the disks of
    /// a previous session models a restart: the stores replay their
    /// on-disk indexes and serve surviving clean blocks warm. Implies
    /// [`SessionConfig::persistent_store`]. Entries beyond the list get
    /// fresh disks.
    pub fn client_disks(mut self, disks: Vec<Arc<gvfs_netsim::disk::VirtualDisk>>) -> Self {
        self.config.persistent_store = true;
        self.client_disks = Some(disks);
        self
    }

    /// The session key carried in every request credential.
    pub fn session_key(mut self, key: u64) -> Self {
        self.session_key = key;
        self
    }

    /// Establishes the session: creates the proxies, registers callback
    /// routes, and spawns the background actors on `sim`.
    pub fn establish(self, sim: &Sim) -> Session {
        let config = self.config;
        let vfs = self.vfs.unwrap_or_else(|| Arc::new(Vfs::new()));
        let clock: gvfs_server::Clock =
            Arc::new(|| Timestamp::from_nanos(gvfs_netsim::now().as_nanos()));
        let nfs = Nfs3Server::new(Arc::clone(&vfs), clock);
        let root = nfs.root_fh();
        let mut dispatcher = Dispatcher::new();
        dispatcher.register(nfs);
        dispatcher.register(gvfs_server::MountServer::new(Arc::clone(&vfs), EXPORT_PATH));
        let nfs_node = ServerNode::new("nfs-server", dispatcher, config.nfs_proc_time);

        // Proxy server beside the NFS server (loopback link).
        let server_loop = Link::new(self.loopback);
        let lan_stats = RpcStats::new();
        let proxy_server = ProxyServer::new(
            config.model,
            SimRpcClient::new(server_loop.forward(), Arc::clone(&nfs_node), lan_stats.clone()),
        );
        proxy_server.set_invalidation_capacity(config.invalidation_buffer);
        let mut ps_dispatcher = Dispatcher::new();
        ps_dispatcher
            .register_arc(Arc::clone(&proxy_server) as Arc<dyn gvfs_rpc::dispatch::RpcService>);
        // MOUNT passes through the proxy server to the NFS host.
        ps_dispatcher.register(ForwardService {
            program: gvfs_nfs3::mount::MOUNT_PROGRAM,
            version: gvfs_nfs3::mount::MOUNT_V3,
            upstream: SimRpcClient::new(
                server_loop.forward(),
                Arc::clone(&nfs_node),
                lan_stats.clone(),
            ),
        });
        let proxy_server_node =
            ServerNode::new("proxy-server", ps_dispatcher, config.proxy_proc_time);

        let wan_stats = RpcStats::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut clients = Vec::with_capacity(self.clients);
        for i in 0..self.clients {
            let id = i as u32 + 1;
            let link_config = self
                .client_links
                .as_ref()
                .and_then(|links| links.get(i).copied())
                .unwrap_or(self.wan);
            let wan_link = Link::new(link_config);
            let cred =
                GvfsCred { session_key: self.session_key, client_id: id, callback_port: 7000 + id };
            let wan = SimRpcClient::new(
                wan_link.forward(),
                Arc::clone(&proxy_server_node),
                wan_stats.clone(),
            )
            .with_credential(OpaqueAuth::gvfs(&cred).expect("encode credential"));
            let (proxy, disk) = if config.persistent_store {
                let disk = self
                    .client_disks
                    .as_ref()
                    .and_then(|disks| disks.get(i).cloned())
                    .unwrap_or_else(|| gvfs_netsim::disk::VirtualDisk::new(config.disk));
                let store = crate::store::persist::PersistentStore::open(
                    Arc::clone(&disk),
                    crate::store::persist::PersistConfig {
                        capacity: config.disk_cache_bytes,
                        block_size: u64::from(gvfs_server::TRANSFER_SIZE),
                        file_threshold: config.store_file_threshold,
                        ..crate::store::persist::PersistConfig::default()
                    },
                );
                let proxy = ProxyClient::with_store(
                    id,
                    config.model,
                    config.write_back,
                    wan,
                    Box::new(store),
                );
                (proxy, Some(disk))
            } else {
                let proxy = ProxyClient::new(
                    id,
                    config.model,
                    config.write_back,
                    wan,
                    config.disk_cache_bytes,
                );
                (proxy, None)
            };
            proxy.set_pipelining(config.pipeline_writeback);
            proxy.set_read_pipelining(config.pipeline_read);
            proxy.set_readahead(config.readahead_window, config.readahead_trigger);
            proxy.set_resilience(config.retry_budget, config.degrade_after, config.max_staleness);

            // Callback service node, reached from the proxy server over
            // the reverse WAN direction.
            let mut cb_dispatcher = Dispatcher::new();
            cb_dispatcher.register(CallbackService(Arc::clone(&proxy)));
            let cb_node = ServerNode::new(
                &format!("proxy-client-{id}-callback"),
                cb_dispatcher,
                config.proxy_proc_time,
            );
            proxy_server.register_callback(
                id,
                SimRpcClient::new(wan_link.reverse(), Arc::clone(&cb_node), wan_stats.clone()),
            );

            // Kernel-facing node over loopback: NFS via the proxy
            // client, MOUNT forwarded over the WAN.
            let mut pc_dispatcher = Dispatcher::new();
            pc_dispatcher
                .register_arc(Arc::clone(&proxy) as Arc<dyn gvfs_rpc::dispatch::RpcService>);
            pc_dispatcher.register(ForwardService {
                program: gvfs_nfs3::mount::MOUNT_PROGRAM,
                version: gvfs_nfs3::mount::MOUNT_V3,
                upstream: SimRpcClient::new(
                    wan_link.forward(),
                    Arc::clone(&proxy_server_node),
                    wan_stats.clone(),
                ),
            });
            let pc_node = ServerNode::new(
                &format!("proxy-client-{id}"),
                pc_dispatcher,
                config.proxy_proc_time,
            );
            let loopback = Link::new(self.loopback);

            // Background actors.
            if let ConsistencyModel::InvalidationPolling { period, backoff_max } = config.model {
                let p = Arc::clone(&proxy);
                sim.spawn(&format!("poller-{id}"), move || p.run_poller(period, backoff_max));
            }
            {
                let p = Arc::clone(&proxy);
                sim.spawn(&format!("flusher-{id}"), move || p.run_flusher());
            }
            // The WAN health supervisor drives half-open probes and
            // post-heal re-promotion for the degradation ladder; only
            // the delegation model degrades (polling sessions already
            // serve stale-bounded reads by construction).
            if matches!(config.model, ConsistencyModel::DelegationCallback(_))
                && config.max_staleness.is_some()
            {
                let p = Arc::clone(&proxy);
                sim.spawn(&format!("supervisor-{id}"), move || p.run_supervisor());
            }
            // The scrub actor only makes sense over a store with
            // checksums; over the in-memory store every step is a no-op.
            if let (true, Some(period)) = (config.persistent_store, config.scrub_period) {
                let p = Arc::clone(&proxy);
                let batch = config.scrub_batch;
                sim.spawn(&format!("scrubber-{id}"), move || p.run_scrubber(period, batch));
            }

            clients.push(ClientEnd { proxy, node: pc_node, loopback, wan_link, cb_node, disk });
        }

        // Peer mesh: one LAN link per client pair, used forward in one
        // direction and reverse in the other, each end registered as a
        // peer transport targeting the other end's callback node (where
        // the PEERREAD service lives). The origin starts advertising
        // holders only once its own knob is on.
        let peer_stats = RpcStats::new();
        let mut peer_links = std::collections::HashMap::new();
        if config.peer_read {
            proxy_server.set_peer_read(true);
            for end in &clients {
                end.proxy.set_peer_read(true);
            }
            for i in 0..clients.len() {
                for j in i + 1..clients.len() {
                    let (id_i, id_j) = (i as u32 + 1, j as u32 + 1);
                    let link = Link::new(config.peer_lan);
                    clients[i].proxy.add_peer(
                        id_j,
                        SimRpcClient::new(
                            link.forward(),
                            Arc::clone(&clients[j].cb_node),
                            peer_stats.clone(),
                        ),
                    );
                    clients[j].proxy.add_peer(
                        id_i,
                        SimRpcClient::new(
                            link.reverse(),
                            Arc::clone(&clients[i].cb_node),
                            peer_stats.clone(),
                        ),
                    );
                    peer_links.insert((id_i, id_j), link);
                }
            }
        }

        if let (ConsistencyModel::DelegationCallback(_), Some(interval)) =
            (config.model, config.sweep_interval)
        {
            let ps = Arc::clone(&proxy_server);
            let stop_flag = Arc::clone(&stop);
            sim.spawn("delegation-sweeper", move || loop {
                gvfs_netsim::park_timeout(interval);
                if stop_flag.load(Ordering::SeqCst) {
                    return;
                }
                ps.sweep();
            });
        }

        Session {
            config,
            vfs,
            nfs_node,
            proxy_server,
            proxy_server_node,
            clients,
            wan_stats,
            lan_stats,
            peer_stats,
            peer_links,
            root,
            stop,
        }
    }
}

struct ClientEnd {
    proxy: Arc<ProxyClient>,
    node: Arc<ServerNode>,
    loopback: Arc<Link>,
    wan_link: Arc<Link>,
    cb_node: Arc<ServerNode>,
    disk: Option<Arc<gvfs_netsim::disk::VirtualDisk>>,
}

/// An established GVFS session.
pub struct Session {
    config: SessionConfig,
    vfs: Arc<Vfs>,
    nfs_node: Arc<ServerNode>,
    proxy_server: Arc<ProxyServer>,
    proxy_server_node: Arc<ServerNode>,
    clients: Vec<ClientEnd>,
    wan_stats: RpcStats,
    lan_stats: RpcStats,
    peer_stats: RpcStats,
    peer_links: std::collections::HashMap<(u32, u32), Arc<Link>>,
    root: Fh3,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("model", &self.config.model)
            .field("clients", &self.clients.len())
            .finish()
    }
}

impl Session {
    /// Starts building a session with `config`.
    pub fn builder(config: SessionConfig) -> SessionBuilder {
        SessionBuilder {
            config,
            clients: 1,
            wan: LinkConfig::wan(),
            client_links: None,
            loopback: LinkConfig::loopback(),
            vfs: None,
            client_disks: None,
            session_key: 0x6776_6673,
        }
    }

    /// The transport a kernel NFS client on machine `i` mounts through
    /// (loopback to that machine's proxy client).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn client_transport(&self, i: usize) -> SimRpcClient {
        let end = &self.clients[i];
        SimRpcClient::new(end.loopback.forward(), Arc::clone(&end.node), RpcStats::new())
    }

    /// The export's root file handle.
    pub fn root_fh(&self) -> Fh3 {
        self.root
    }

    /// The exported filesystem (for out-of-band population).
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    /// WAN traffic counters — the paper's "RPCs transferred over the
    /// network". Covers all clients' WAN links, both directions
    /// (callbacks included).
    pub fn wan_stats(&self) -> &RpcStats {
        &self.wan_stats
    }

    /// Loopback traffic counters (proxy server ↔ NFS server).
    pub fn lan_stats(&self) -> &RpcStats {
        &self.lan_stats
    }

    /// Peer-mesh traffic counters (`PEERREAD`s between clients); all
    /// zero unless [`SessionConfig::peer_read`] is on.
    pub fn peer_stats(&self) -> &RpcStats {
        &self.peer_stats
    }

    /// The LAN link between clients `i` and `j` (partition injection
    /// for the peer-partition chaos scenario); `None` when the session
    /// runs without a peer mesh or `i == j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn peer_link(&self, i: usize, j: usize) -> Option<&Arc<Link>> {
        assert!(i < self.clients.len() && j < self.clients.len());
        let (a, b) = ((i.min(j)) as u32 + 1, (i.max(j)) as u32 + 1);
        self.peer_links.get(&(a, b))
    }

    /// The proxy server (failure injection, diagnostics).
    pub fn proxy_server(&self) -> &Arc<ProxyServer> {
        &self.proxy_server
    }

    /// Installs a fresh protocol-trace buffer into the proxy server and
    /// every proxy client, emits the `meta` record the replay checker
    /// needs, and returns the shared buffer. Call once, before virtual
    /// time starts.
    #[cfg(feature = "trace")]
    pub fn install_trace(&self) -> Arc<crate::trace::TraceBuffer> {
        let buf = crate::trace::TraceBuffer::new();
        let lease_ms = match self.config.model {
            ConsistencyModel::DelegationCallback(c) => c.lease.as_millis() as u64,
            _ => 0,
        };
        buf.record_at(
            0,
            crate::trace::ProtocolEvent::Meta {
                lease_ms,
                degrade_after_ms: self.config.degrade_after.as_millis() as u64,
                max_staleness_ms: self
                    .config
                    .max_staleness
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
                clients: self.clients.len() as u32,
            },
        );
        self.proxy_server.install_trace(Arc::clone(&buf));
        for end in &self.clients {
            end.proxy.install_trace(Arc::clone(&buf));
        }
        buf
    }

    /// The proxy client of machine `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn proxy_client(&self, i: usize) -> &Arc<ProxyClient> {
        &self.clients[i].proxy
    }

    /// The WAN link of machine `i` (partition injection).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn wan_link(&self, i: usize) -> &Arc<Link> {
        &self.clients[i].wan_link
    }

    /// The kernel NFS server node (failure injection).
    pub fn nfs_node(&self) -> &Arc<ServerNode> {
        &self.nfs_node
    }

    /// The proxy server node (failure injection).
    pub fn proxy_server_node(&self) -> &Arc<ServerNode> {
        &self.proxy_server_node
    }

    /// Crashes the proxy server: it stops answering and loses its
    /// volatile state (buffers, timestamps, delegation table).
    pub fn crash_proxy_server(&self) {
        self.proxy_server_node.set_up(false);
        self.proxy_server.crash();
    }

    /// Restarts the proxy server and runs recovery (the cache-wide
    /// callback round, §4.3.4). Returns how many clients answered.
    pub fn restart_proxy_server(&self) -> usize {
        self.proxy_server_node.set_up(true);
        self.proxy_server.recover()
    }

    /// Crashes proxy client `i`: both its kernel-facing node and its
    /// callback node stop answering. The disk cache (and the volatile
    /// state, untouchable while the node is down) stays in place until
    /// [`Session::restart_proxy_client`] reconciles it.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn crash_proxy_client(&self, i: usize) {
        let end = &self.clients[i];
        end.node.set_up(false);
        end.cb_node.set_up(false);
    }

    /// Restarts proxy client `i` and runs client-side crash recovery
    /// (§4.3.4): volatile state is cleared, attributes invalidated, and
    /// dirty files reconciled against the server. Must be called from a
    /// simulation actor (recovery performs WAN RPCs). Returns the
    /// handles whose dirty data was discarded as corrupted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn restart_proxy_client(&self, i: usize) -> Vec<Fh3> {
        let end = &self.clients[i];
        end.node.set_up(true);
        end.cb_node.set_up(true);
        if self.config.persistent_store {
            // The machine crashed, not just the process: the store
            // reopens from its disk, losing whatever a durability
            // barrier didn't cover, before the protocol reconciles.
            end.proxy.crash_restart()
        } else {
            end.proxy.crash_recover()
        }
    }

    /// The virtual disk backing client `i`'s persistent store, if the
    /// session runs one — hand it to a later session's
    /// [`SessionBuilder::client_disks`] to model a restart.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn client_disk(&self, i: usize) -> Option<Arc<gvfs_netsim::disk::VirtualDisk>> {
        self.clients[i].disk.clone()
    }

    /// A cloneable control handle usable from workload actors.
    pub fn handle(&self) -> SessionHandle {
        SessionHandle {
            proxies: self.clients.iter().map(|c| Arc::clone(&c.proxy)).collect(),
            stop: Arc::clone(&self.stop),
        }
    }

    /// Shuts the session down from outside the simulation (only valid
    /// when no flushing is needed; prefer [`SessionHandle::shutdown`]
    /// from an actor).
    pub fn shutdown_external(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for end in &self.clients {
            end.proxy.shutdown();
        }
    }
}

/// Cloneable session control passed into workload actors.
#[derive(Clone)]
pub struct SessionHandle {
    proxies: Vec<Arc<ProxyClient>>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle").field("clients", &self.proxies.len()).finish()
    }
}

impl SessionHandle {
    /// Unmount semantics: flush all delayed writes (charging the calling
    /// actor's clock), then stop the background actors.
    pub fn shutdown(&self) {
        for proxy in &self.proxies {
            proxy.flush_all();
            // Clean unmount: make the block store durable so a session
            // re-established over the same disks restarts warm.
            proxy.sync_store();
        }
        self.stop.store(true, Ordering::SeqCst);
        for proxy in &self.proxies {
            proxy.shutdown();
        }
    }
}

/// The no-proxy baseline: kernel clients mount the kernel NFS server
/// straight across the WAN.
pub struct NativeMount {
    vfs: Arc<Vfs>,
    nfs_node: Arc<ServerNode>,
    links: Vec<Arc<Link>>,
    stats: RpcStats,
    root: Fh3,
}

impl std::fmt::Debug for NativeMount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeMount").field("clients", &self.links.len()).finish()
    }
}

impl NativeMount {
    /// Builds the baseline with `clients` links shaped by `wan`.
    pub fn establish(clients: usize, wan: LinkConfig, vfs: Option<Arc<Vfs>>) -> Self {
        Self::establish_with_links(vec![wan; clients], vfs)
    }

    /// Builds the baseline with one explicit link configuration per
    /// client (mixing WAN users with a LAN administrator).
    pub fn establish_with_links(links: Vec<LinkConfig>, vfs: Option<Arc<Vfs>>) -> Self {
        let vfs = vfs.unwrap_or_else(|| Arc::new(Vfs::new()));
        let clock: gvfs_server::Clock =
            Arc::new(|| Timestamp::from_nanos(gvfs_netsim::now().as_nanos()));
        let nfs = Nfs3Server::new(Arc::clone(&vfs), clock);
        let root = nfs.root_fh();
        let mut dispatcher = Dispatcher::new();
        dispatcher.register(nfs);
        dispatcher.register(gvfs_server::MountServer::new(Arc::clone(&vfs), EXPORT_PATH));
        let nfs_node = ServerNode::new("nfs-server", dispatcher, Duration::from_micros(200));
        let links = links.into_iter().map(Link::new).collect();
        NativeMount { vfs, nfs_node, links, stats: RpcStats::new(), root }
    }

    /// The WAN transport for kernel client `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn client_transport(&self, i: usize) -> SimRpcClient {
        SimRpcClient::new(self.links[i].forward(), Arc::clone(&self.nfs_node), self.stats.clone())
    }

    /// The export root handle.
    pub fn root_fh(&self) -> Fh3 {
        self.root
    }

    /// The exported filesystem.
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    /// WAN traffic counters.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    /// The WAN link of client `i` (partition injection).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn link(&self, i: usize) -> &Arc<Link> {
        &self.links[i]
    }

    /// The server node (failure injection).
    pub fn nfs_node(&self) -> &Arc<ServerNode> {
        &self.nfs_node
    }
}
