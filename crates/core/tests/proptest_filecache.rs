//! Model-based property test for the proxy's extent cache.
//!
//! [`FileCache`](gvfs_core::cache::FileCache) maintains non-overlapping
//! clean/dirty extents with splitting, coalescing, overlays (dirty beats
//! incoming clean) and block-grained cleaning. This test drives it with
//! random operation sequences against a flat reference model (one byte +
//! one state flag per offset) and checks every observable after every
//! step.

use gvfs_core::cache::FileCache;
use proptest::prelude::*;

const SPACE: usize = 4096; // model address space
const BLOCK: u64 = 256;

#[derive(Debug, Clone)]
enum Op {
    InsertClean { offset: usize, len: usize, byte: u8 },
    WriteDirty { offset: usize, len: usize, byte: u8 },
    CleanRange { offset: usize, len: usize },
    DropClean,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let range = (0usize..SPACE - 1, 1usize..512, any::<u8>());
    prop_oneof![
        range.clone().prop_map(|(offset, len, byte)| Op::InsertClean {
            offset,
            len: len.min(SPACE - offset),
            byte
        }),
        range.prop_map(|(offset, len, byte)| Op::WriteDirty {
            offset,
            len: len.min(SPACE - offset),
            byte
        }),
        (0usize..SPACE - 1, 1usize..1024)
            .prop_map(|(offset, len)| Op::CleanRange { offset, len: len.min(SPACE - offset) }),
        Just(Op::DropClean),
    ]
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CellState {
    Absent,
    Clean,
    Dirty,
}

struct Model {
    bytes: [u8; SPACE],
    state: [CellState; SPACE],
}

impl Model {
    fn new() -> Self {
        Model { bytes: [0; SPACE], state: [CellState::Absent; SPACE] }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::InsertClean { offset, len, byte } => {
                for i in offset..offset + len {
                    // Dirty bytes beat incoming clean data.
                    if self.state[i] != CellState::Dirty {
                        self.bytes[i] = byte;
                        self.state[i] = CellState::Clean;
                    }
                }
            }
            Op::WriteDirty { offset, len, byte } => {
                for i in offset..offset + len {
                    self.bytes[i] = byte;
                    self.state[i] = CellState::Dirty;
                }
            }
            Op::CleanRange { offset, len } => {
                for i in offset..offset + len {
                    if self.state[i] == CellState::Dirty {
                        self.state[i] = CellState::Clean;
                    }
                }
            }
            Op::DropClean => {
                for i in 0..SPACE {
                    if self.state[i] == CellState::Clean {
                        self.state[i] = CellState::Absent;
                    }
                }
            }
        }
    }

    /// `Some(bytes)` iff the whole range is present.
    fn read(&self, offset: usize, len: usize) -> Option<Vec<u8>> {
        if (offset..offset + len).all(|i| self.state[i] != CellState::Absent) {
            Some(self.bytes[offset..offset + len].to_vec())
        } else {
            None
        }
    }

    fn dirty_mask(&self) -> Vec<bool> {
        self.state.iter().map(|s| *s == CellState::Dirty).collect()
    }
}

fn apply_real(fc: &mut FileCache, op: &Op) {
    match *op {
        Op::InsertClean { offset, len, byte } => fc.insert_clean(offset as u64, vec![byte; len]),
        Op::WriteDirty { offset, len, byte } => fc.write_dirty(offset as u64, vec![byte; len]),
        Op::CleanRange { offset, len } => fc.clean_range(offset as u64, len as u64),
        Op::DropClean => fc.drop_clean(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn file_cache_matches_flat_model(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        probes in proptest::collection::vec((0usize..SPACE - 1, 1usize..256), 8),
    ) {
        let mut fc = FileCache::default();
        let mut model = Model::new();
        for op in &ops {
            apply_real(&mut fc, op);
            model.apply(op);

            // Probe random reads.
            for &(offset, len) in &probes {
                let len = len.min(SPACE - offset);
                let real = fc.read(offset as u64, len);
                let expected = model.read(offset, len);
                prop_assert_eq!(&real, &expected,
                    "read({}, {}) diverged after {:?}", offset, len, op);
            }

            // Dirty ranges must match the model's dirty mask exactly.
            let mask = model.dirty_mask();
            let mut real_mask = vec![false; SPACE];
            for (off, len) in fc.dirty_ranges() {
                prop_assert!(off as usize + len <= SPACE);
                for flag in &mut real_mask[off as usize..off as usize + len] {
                    prop_assert!(!*flag, "overlapping dirty extents");
                    *flag = true;
                }
            }
            prop_assert_eq!(&real_mask, &mask, "dirty mask diverged after {:?}", op);

            // dirty_blocks covers exactly the blocks containing dirty bytes.
            let expected_blocks: Vec<u64> = (0..SPACE as u64 / BLOCK)
                .map(|b| b * BLOCK)
                .filter(|&b| (b..b + BLOCK).any(|i| mask[i as usize]))
                .collect();
            prop_assert_eq!(fc.dirty_blocks(BLOCK), expected_blocks);

            // dirty_in_block segments reassemble the block's dirty bytes.
            for &block in &fc.dirty_blocks(BLOCK) {
                for (seg_off, seg) in fc.dirty_in_block(block, BLOCK) {
                    for (k, &byte) in seg.iter().enumerate() {
                        let i = seg_off as usize + k;
                        prop_assert!(mask[i], "segment byte not dirty in model");
                        prop_assert_eq!(byte, model.bytes[i]);
                    }
                }
            }

            // has_dirty agrees.
            prop_assert_eq!(fc.has_dirty(), mask.iter().any(|&d| d));
        }
    }

    /// `missing_ranges` is the read path's gap planner: the union of the
    /// returned gaps and the cached cells must tile the requested range
    /// exactly, gaps must be in order and disjoint, and dirty bytes must
    /// never be scheduled for refetch.
    #[test]
    fn missing_ranges_tiles_the_requested_range(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        probes in proptest::collection::vec((0usize..SPACE - 1, 0usize..512), 8),
    ) {
        let mut fc = FileCache::default();
        let mut model = Model::new();
        for op in &ops {
            apply_real(&mut fc, op);
            model.apply(op);

            for &(offset, len) in &probes {
                let len = len.min(SPACE - offset);
                let gaps = fc.missing_ranges(offset as u64, len);
                prop_assert_eq!(gaps.is_empty(), len == 0 || model.read(offset, len).is_some(),
                    "no gaps iff the whole range is cached");

                let mut in_gap = vec![false; len];
                let mut last_end = offset as u64;
                for &(goff, glen) in &gaps {
                    prop_assert!(glen > 0, "empty gap");
                    prop_assert!(goff >= last_end, "gaps out of order or overlapping");
                    prop_assert!(goff as usize + glen <= offset + len, "gap leaks past range");
                    last_end = goff + glen as u64;
                    for flag in &mut in_gap[goff as usize - offset..goff as usize - offset + glen] {
                        *flag = true;
                    }
                }

                // Gaps ∪ cached cells == requested range, disjointly:
                // a cell is in a gap exactly when the model lacks it.
                for (i, &flag) in in_gap.iter().enumerate() {
                    let absent = model.state[offset + i] == CellState::Absent;
                    prop_assert_eq!(flag, absent,
                        "cell {} of range ({}, {}) miscategorized", i, offset, len);
                    if model.state[offset + i] == CellState::Dirty {
                        prop_assert!(!flag, "dirty byte scheduled for refetch");
                    }
                }
            }
        }
    }
}
