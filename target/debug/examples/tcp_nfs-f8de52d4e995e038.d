/root/repo/target/debug/examples/tcp_nfs-f8de52d4e995e038.d: crates/bench/../../examples/tcp_nfs.rs

/root/repo/target/debug/examples/tcp_nfs-f8de52d4e995e038: crates/bench/../../examples/tcp_nfs.rs

crates/bench/../../examples/tcp_nfs.rs:
