//! The XDR decoder: a checked cursor over a byte slice.

use crate::XdrError;

/// Deserializes XDR primitives from a borrowed byte slice.
///
/// Every read is bounds-checked and enforces RFC 4506 padding rules
/// (pad bytes must be zero).
///
/// # Examples
///
/// ```
/// use gvfs_xdr::Decoder;
///
/// # fn main() -> Result<(), gvfs_xdr::XdrError> {
/// let mut dec = Decoder::new(&[0, 0, 0, 5, b'h', b'e', b'l', b'l', b'o', 0, 0, 0]);
/// assert_eq!(dec.get_string()?, "hello");
/// dec.finish()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder reading from `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Decoder { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Current read offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Asserts that the entire input has been consumed.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), XdrError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(XdrError::TrailingBytes { remaining: self.remaining() })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::UnexpectedEof { needed: n, available: self.remaining() });
        }
        let slice = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads an unsigned 32-bit integer.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::UnexpectedEof`] on truncated input.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a signed 32-bit integer.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::UnexpectedEof`] on truncated input.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Reads an unsigned 64-bit integer ("unsigned hyper").
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::UnexpectedEof`] on truncated input.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    /// Reads a signed 64-bit integer ("hyper").
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::UnexpectedEof`] on truncated input.
    pub fn get_i64(&mut self) -> Result<i64, XdrError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a boolean word.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::InvalidDiscriminant`] if the word is neither
    /// 0 nor 1, or [`XdrError::UnexpectedEof`] on truncated input.
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(XdrError::InvalidDiscriminant { type_name: "bool", value }),
        }
    }

    /// Reads `len` bytes of fixed-length opaque data plus padding.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::UnexpectedEof`] on truncated input or
    /// [`XdrError::NonZeroPadding`] if pad bytes are non-zero.
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<Vec<u8>, XdrError> {
        let data = self.take(len)?.to_vec();
        let pad = (4 - len % 4) % 4;
        let pad_bytes = self.take(pad)?;
        if pad_bytes.iter().any(|&b| b != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(data)
    }

    /// Reads variable-length opaque data (length prefix + bytes + padding).
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::UnexpectedEof`] if the declared length exceeds
    /// the remaining input, or padding errors as in
    /// [`Decoder::get_opaque_fixed`].
    pub fn get_opaque(&mut self) -> Result<Vec<u8>, XdrError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(XdrError::UnexpectedEof { needed: len, available: self.remaining() });
        }
        self.get_opaque_fixed(len)
    }

    /// Reads variable-length opaque data, enforcing a protocol bound.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::LengthBound`] if the declared length exceeds
    /// `max`, plus the errors of [`Decoder::get_opaque`].
    pub fn get_opaque_bounded(
        &mut self,
        type_name: &'static str,
        max: usize,
    ) -> Result<Vec<u8>, XdrError> {
        let len = self.get_u32()? as usize;
        if len > max {
            return Err(XdrError::LengthBound { type_name, declared: len, max });
        }
        if len > self.remaining() {
            return Err(XdrError::UnexpectedEof { needed: len, available: self.remaining() });
        }
        self.get_opaque_fixed(len)
    }

    /// Reads a UTF-8 string (variable-length opaque).
    ///
    /// # Errors
    ///
    /// Returns [`XdrError::InvalidUtf8`] on non-UTF-8 data, plus the errors
    /// of [`Decoder::get_opaque`].
    pub fn get_string(&mut self) -> Result<String, XdrError> {
        let bytes = self.get_opaque()?;
        String::from_utf8(bytes).map_err(|_| XdrError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_reports_needed_and_available() {
        let mut dec = Decoder::new(&[0, 0]);
        let err = dec.get_u32().unwrap_err();
        assert_eq!(err, XdrError::UnexpectedEof { needed: 4, available: 2 });
    }

    #[test]
    fn opaque_fixed_checks_padding_is_zero() {
        let mut dec = Decoder::new(&[0xaa, 1, 0, 0]);
        assert_eq!(dec.get_opaque_fixed(1).unwrap_err(), XdrError::NonZeroPadding);
    }

    #[test]
    fn opaque_variable_round_trip() {
        let mut dec = Decoder::new(&[0, 0, 0, 3, 9, 8, 7, 0]);
        assert_eq!(dec.get_opaque().unwrap(), vec![9, 8, 7]);
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn opaque_with_declared_length_beyond_input_is_eof_not_alloc() {
        let mut dec = Decoder::new(&[0x7f, 0xff, 0xff, 0xff]);
        assert!(matches!(dec.get_opaque().unwrap_err(), XdrError::UnexpectedEof { .. }));
    }

    #[test]
    fn bounded_opaque_enforces_bound() {
        let mut dec = Decoder::new(&[0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8]);
        let err = dec.get_opaque_bounded("fh", 4).unwrap_err();
        assert_eq!(err, XdrError::LengthBound { type_name: "fh", declared: 8, max: 4 });
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut dec = Decoder::new(&[0, 0, 0, 1, 0xff, 0, 0, 0]);
        assert_eq!(dec.get_string().unwrap_err(), XdrError::InvalidUtf8);
    }

    #[test]
    fn position_tracks_consumption() {
        let mut dec = Decoder::new(&[0, 0, 0, 1, 0, 0, 0, 2]);
        assert_eq!(dec.position(), 0);
        dec.get_u32().unwrap();
        assert_eq!(dec.position(), 4);
        assert_eq!(dec.remaining(), 4);
    }
}
