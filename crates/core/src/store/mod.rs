//! Pluggable block stores backing the proxy client's disk cache.
//!
//! The paper's proxy clients keep *disk* caches (§4.1) whose validity is
//! maintained by the consistency protocol alone. [`BlockStore`] is the
//! storage abstraction under [`crate::cache::DiskCache`]: byte extents
//! per file handle, clean or dirty, with LRU eviction of clean data and
//! an mtime *tag* per file used for revalidation-by-invalidation.
//!
//! Two implementations:
//!
//! * [`mem::MemStore`] — the original in-memory extent maps. Volatile:
//!   a restart is a cold WAN start.
//! * [`persist::PersistentStore`] — an on-disk content-addressed layout
//!   over a [`gvfs_netsim::disk::VirtualDisk`]: sharded per-handle data
//!   files for dirty bytes, refcounted content-hash chunks for clean
//!   bytes (duplicate blocks stored once), and a write-ahead-logged
//!   index replayed on restart so clean blocks are served warm with
//!   ~0 WAN data RPCs.
//!
//! All methods operate on one file handle's extent map; semantics are
//! pinned by the differential proptest
//! (`crates/core/tests/proptest_blockstore.rs`), which drives both
//! implementations through random op sequences — including crash and
//! reopen — and requires identical reads and `missing_ranges` tilings.

pub mod mem;
pub mod persist;

use gvfs_nfs3::{Fh3, NfsTime3};
use std::time::Duration;

/// Counters every store maintains, surfaced via `ProxyClientStats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes of file content currently cached.
    pub bytes: u64,
    /// Files whose clean content was evicted to stay within capacity.
    pub evictions: u64,
    /// Clean chunk insertions satisfied by an already-stored identical
    /// chunk (content-hash dedup). Always 0 for the in-memory store.
    pub dedup_hits: u64,
    /// Clean blocks served warm from the replayed index after the last
    /// crash/reopen. Always 0 for the in-memory store.
    pub restart_warm_blocks: u64,
    /// Checksum verifications that failed (a flipped bit, a torn write,
    /// an unreadable region). Always 0 for the in-memory store.
    pub integrity_failures: u64,
    /// Extents quarantined — dropped from the index instead of being
    /// served — after a failed verification.
    pub quarantined_blocks: u64,
    /// Interior WAL frames skipped (quarantined) during replay; later
    /// durable frames were still applied.
    pub wal_quarantined_frames: u64,
}

/// One quarantined extent, reported by [`BlockStore::take_integrity_events`].
///
/// Clean extents are re-fetchable: the quarantine turns them into cache
/// misses the normal origin/peer read path repairs. Dirty extents are
/// unrecoverable local writes — the client must surface them as explicit
/// data loss, never refetch over them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityEvent {
    /// The file the extent belonged to.
    pub fh: Fh3,
    /// Absolute offset of the quarantined extent.
    pub offset: u64,
    /// Length of the quarantined extent.
    pub len: u64,
    /// Whether the extent held dirty (locally written) bytes.
    pub dirty: bool,
    /// Whether the corrupt bytes were served anyway (only possible with
    /// verification disabled via [`BlockStore::set_verify`] — the
    /// `--break-scrub` selftest knob).
    pub served: bool,
}

/// Extent storage for the disk cache; see the module docs.
///
/// Dirty data is sacred: no operation other than [`BlockStore::forget`],
/// [`BlockStore::clean_range`] and an unsynced crash may lose it —
/// eviction, revalidation and clean inserts must all preserve dirty
/// bytes exactly as [`crate::cache::FileCache`] does.
pub trait BlockStore: std::fmt::Debug + Send {
    /// The bytes in `[offset, offset+len)` if fully covered, touching
    /// the file in the LRU.
    fn read(&mut self, fh: Fh3, offset: u64, len: usize) -> Option<Vec<u8>>;

    /// The sub-ranges of `[offset, offset+len)` not covered by cached
    /// extents, in order; an unknown file is one whole gap. Dirty
    /// extents count as covered.
    fn missing_ranges(&self, fh: Fh3, offset: u64, len: usize) -> Vec<(u64, usize)>;

    /// Stores server-fetched bytes; cached dirty bytes beat the
    /// incoming clean data.
    fn insert_clean(&mut self, fh: Fh3, offset: u64, data: Vec<u8>);

    /// Records locally written bytes as dirty (write-back mode).
    fn write_dirty(&mut self, fh: Fh3, offset: u64, data: Vec<u8>);

    /// Marks every byte of `[offset, offset+len)` clean after a
    /// successful write-back, splitting extents at the boundaries.
    fn clean_range(&mut self, fh: Fh3, offset: u64, len: u64);

    /// Drops the file's clean extents, keeping dirty data.
    fn drop_clean(&mut self, fh: Fh3);

    /// Drops everything known about the file (it was removed),
    /// including its mtime tag.
    fn forget(&mut self, fh: Fh3);

    /// Offsets and lengths of the file's dirty extents, in order.
    fn dirty_ranges(&self, fh: Fh3) -> Vec<(u64, usize)>;

    /// Aligned offsets of every `block_size` block holding dirty bytes
    /// — the "list of blocks' offsets" a recalled write delegation
    /// reports (§4.3.2).
    fn dirty_blocks(&self, fh: Fh3, block_size: u64) -> Vec<u64>;

    /// The dirty byte segments inside one aligned block, as
    /// `(absolute_offset, bytes)` pairs.
    fn dirty_in_block(&self, fh: Fh3, block_offset: u64, block_size: u64) -> Vec<(u64, Vec<u8>)>;

    /// Whether the file holds any dirty extent.
    fn has_dirty(&self, fh: Fh3) -> bool;

    /// All files holding dirty data, sorted.
    fn dirty_files(&self) -> Vec<Fh3>;

    /// Revalidates the file against a server mtime: if the recorded tag
    /// differs, clean content is dropped (the protocol invalidated it).
    /// Records `mtime` as the new tag either way.
    fn revalidate(&mut self, fh: Fh3, mtime: NfsTime3);

    /// Records `mtime` as the file's tag without dropping content (the
    /// mtime moved because of our own write).
    fn retag(&mut self, fh: Fh3, mtime: NfsTime3);

    /// Hints the file's size (from attributes); persistent stores use
    /// it to pick full-file vs block chunking.
    fn note_size(&mut self, fh: Fh3, size: u64);

    /// Bytes of file content cached.
    fn used_bytes(&self) -> usize;

    /// Current counters.
    fn stats(&self) -> StoreStats;

    /// Durability barrier: everything stored so far survives a crash.
    /// No-op for the in-memory store.
    fn sync(&mut self);

    /// Simulates a machine crash followed by a reopen: volatile state is
    /// lost, the index is replayed from disk, and entries whose dirty
    /// WAL records are torn are discarded. The in-memory store simply
    /// loses everything.
    fn crash_reopen(&mut self);

    /// Drains accrued simulated I/O cost. The caller charges it to its
    /// actor clock while holding no locks.
    fn take_cost(&mut self) -> Duration {
        Duration::ZERO
    }

    /// Drains the extents quarantined since the last drain. The caller
    /// attributes them: the demand read path counts clean ones as
    /// refetch repairs, the scrub actor as scrub repairs, and dirty
    /// ones as explicit data loss. Stores without verification (the
    /// in-memory store) never report any.
    fn take_integrity_events(&mut self) -> Vec<IntegrityEvent> {
        Vec::new()
    }

    /// Verifies up to `max_bytes` of stored content ahead of demand,
    /// advancing a persistent sweep cursor; mismatches quarantine
    /// exactly as verify-on-read does. Returns the bytes verified (0
    /// when there is nothing to scrub). No-op for stores without
    /// checksums.
    fn scrub_step(&mut self, _max_bytes: usize) -> usize {
        0
    }

    /// Disables (or re-enables) verify-on-read — the `--break-scrub`
    /// selftest knob: with verification off, corrupt bytes are served
    /// as-is, which the chaos oracles and the analysis invariant must
    /// convict. No-op for stores without checksums.
    fn set_verify(&mut self, _on: bool) {}
}
