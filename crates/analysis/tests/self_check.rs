//! Proves the analysis pass actually detects what it claims to detect:
//! each lint rule is fed a minimal fixture containing a seeded
//! violation (and a clean twin), and the model checkers are run to
//! confirm they really explore and hold on the shipped implementation.

use gvfs_analysis::lint::{
    lint_lock_order_drift, lint_source, lint_source_with_graph, lint_workspace, CallGraph,
    Diagnostic, LOCK_ORDER,
};
use gvfs_analysis::model;
use std::path::Path;

const PROTOCOL_ENUMS: &[&str] = &["DelegationGrant", "SessionOp"];

fn lint(file: &str, src: &str) -> Vec<Diagnostic> {
    let enums: Vec<String> = PROTOCOL_ENUMS.iter().map(|s| s.to_string()).collect();
    lint_source(file, src, &enums)
}

fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn detects_guard_across_send() {
    let src = r#"
        fn recall(&self) {
            let st = self.state.lock();
            self.transport.call(proc, args);
        }
    "#;
    let diags = lint("crates/core/src/proxy/server.rs", src);
    assert_eq!(rules(&diags), ["guard-across-send"], "{diags:?}");
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains("`st`"));
}

#[test]
fn guard_released_by_scope_or_drop_is_clean() {
    let src = r#"
        fn recall(&self) {
            let actions = {
                let st = self.state.lock();
                st.deleg.access(fh)
            };
            self.transport.call(proc, actions);
            let st2 = self.state.lock();
            drop(st2);
            self.transport.call(proc, args);
        }
    "#;
    let diags = lint("crates/core/src/proxy/server.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn detects_lock_order_inversion() {
    // `state` (rank 2) is held while `disk` (rank 1) is acquired.
    let src = r#"
        fn op(&self) {
            let st = self.state.lock();
            let d = self.disk.lock();
        }
    "#;
    let diags = lint("crates/core/src/proxy/client.rs", src);
    assert_eq!(rules(&diags), ["lock-order"], "{diags:?}");
    assert_eq!(diags[0].line, 4);

    // The declared order (disk before state) is clean.
    let ok = r#"
        fn op(&self) {
            let d = self.disk.lock();
            let st = self.state.lock();
        }
    "#;
    assert!(lint("crates/core/src/proxy/client.rs", ok).is_empty());
}

#[test]
fn detects_unknown_lock_in_nesting() {
    let src = r#"
        fn op(&self) {
            let st = self.state.lock();
            let x = self.mystery.lock();
        }
    "#;
    let diags = lint("crates/core/src/proxy/client.rs", src);
    assert_eq!(rules(&diags), ["lock-order"], "{diags:?}");
    assert!(diags[0].message.contains("not in the declared lock-order table"), "{diags:?}");
}

#[test]
fn detects_unwrap_in_request_path() {
    let src = r#"
        fn handle(&self) {
            let v = decode(bytes).unwrap();
            let w = decode(bytes).expect("fine");
        }
    "#;
    let diags = lint("crates/rpc/src/x.rs", src);
    assert_eq!(rules(&diags), ["unwrap-in-request-path", "unwrap-in-request-path"]);

    // Same text outside the request-path crates is not flagged.
    assert!(lint("crates/workloads/src/x.rs", src).is_empty());

    // ... and inside a #[cfg(test)] module it is exempt.
    let test_mod = r#"
        #[cfg(test)]
        mod tests {
            fn check() { decode(bytes).unwrap(); }
        }
    "#;
    assert!(lint("crates/rpc/src/x.rs", test_mod).is_empty());
}

#[test]
fn detects_wildcard_match_on_protocol_enum() {
    let src = r#"
        fn grant_name(g: DelegationGrant) -> u32 {
            match g {
                DelegationGrant::Write => 2,
                _ => 0,
            }
        }
    "#;
    let diags = lint("crates/client/src/cache.rs", src);
    assert_eq!(rules(&diags), ["protocol-match-exhaustive"], "{diags:?}");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn exhaustive_protocol_match_is_clean() {
    let src = r#"
        fn grant_name(g: DelegationGrant) -> u32 {
            match g {
                DelegationGrant::None => 0,
                DelegationGrant::Read => 1,
                DelegationGrant::Write => 2,
                DelegationGrant::NonCacheable => 3,
            }
        }
    "#;
    assert!(lint("crates/client/src/cache.rs", src).is_empty());
}

#[test]
fn wildcard_on_non_protocol_match_is_clean() {
    // The enum reference is in an arm *body*, not a pattern: this match
    // is over something else entirely and may use `_` freely.
    let src = r#"
        fn pick(n: u32) -> DelegationGrant {
            match n {
                2 => DelegationGrant::Write,
                _ => DelegationGrant::None,
            }
        }
    "#;
    assert!(lint("crates/client/src/cache.rs", src).is_empty());
}

#[test]
fn detects_guard_across_send_through_helper() {
    // The helper is not a send-marker name, so the purely textual scan
    // missed this; the call graph follows it to the wire.
    let src = r#"
        fn issue_recall(&self) {
            let st = self.state.lock();
            self.notify_holder(st.fh);
        }
        fn notify_holder(&self, fh: Fh3) {
            self.transport.call(RECALL, fh);
        }
    "#;
    let diags = lint("crates/core/src/proxy/server.rs", src);
    assert_eq!(rules(&diags), ["guard-across-send"], "{diags:?}");
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains("via `notify_holder`"), "{diags:?}");

    // Releasing the guard before the helper call is clean.
    let ok = r#"
        fn issue_recall(&self) {
            let fh = { let st = self.state.lock(); st.fh };
            self.notify_holder(fh);
        }
        fn notify_holder(&self, fh: Fh3) {
            self.transport.call(RECALL, fh);
        }
    "#;
    assert!(lint("crates/core/src/proxy/server.rs", ok).is_empty());
}

#[test]
fn interprocedural_send_followed_across_files() {
    let caller = r#"
        fn issue_recall(&self) {
            let st = self.state.lock();
            notify(self, st.fh);
        }
    "#;
    let helper = r#"
        fn notify(c: &Proxy, fh: Fh3) {
            deeper(c, fh);
        }
        fn deeper(c: &Proxy, fh: Fh3) {
            c.transport.call(RECALL, fh);
        }
    "#;
    let sources = vec![
        ("crates/core/src/proxy/server.rs".to_string(), caller.to_string()),
        ("crates/core/src/proxy/notify.rs".to_string(), helper.to_string()),
    ];
    let graph = CallGraph::build(&sources);
    let enums: Vec<String> = PROTOCOL_ENUMS.iter().map(|s| s.to_string()).collect();
    let diags = lint_source_with_graph("crates/core/src/proxy/server.rs", caller, &enums, &graph);
    assert_eq!(rules(&diags), ["guard-across-send"], "{diags:?}");
    assert!(diags[0].message.contains("notify -> deeper"), "{diags:?}");
}

#[test]
fn detects_lock_order_inversion_through_helper() {
    let src = r#"
        fn op(&self) {
            let st = self.state.lock();
            self.read_disk(st.fh);
        }
        fn read_disk(&self, fh: Fh3) {
            let d = self.disk.lock();
            d.len();
        }
    "#;
    let diags = lint("crates/core/src/proxy/client.rs", src);
    assert_eq!(rules(&diags), ["lock-order"], "{diags:?}");
    assert!(diags[0].message.contains("`read_disk()` acquires `disk`"), "{diags:?}");
}

#[test]
fn detects_blocking_call_in_actor_scope() {
    let src = r#"
        fn backoff(&self) {
            std::thread::sleep(Duration::from_millis(50));
        }
    "#;
    let diags = lint("crates/core/src/proxy/client.rs", src);
    assert_eq!(rules(&diags), ["blocking-in-actor"], "{diags:?}");

    // The same text outside actor scope is fine, and the netsim
    // virtual-clock equivalents are exempt inside it.
    assert!(lint("crates/bench/src/soak.rs", src).is_empty());
    let virt = r#"
        fn backoff(&self) {
            gvfs_netsim::park_timeout(gvfs_netsim::now() + 50);
        }
    "#;
    assert!(lint("crates/core/src/proxy/client.rs", virt).is_empty());
}

#[test]
fn detects_blocking_call_through_out_of_scope_helper() {
    // The blocking terminus lives outside crates/core, so the direct
    // form never fires there; only the chain report can catch it.
    let caller = r#"
        fn tick(&self) {
            real_sleep(50);
        }
    "#;
    let helper = r#"
        fn real_sleep(ms: u64) {
            thread::sleep(Duration::from_millis(ms));
        }
    "#;
    let sources = vec![
        ("crates/core/src/proxy/client.rs".to_string(), caller.to_string()),
        ("crates/rpc/src/transport.rs".to_string(), helper.to_string()),
    ];
    let graph = CallGraph::build(&sources);
    let enums: Vec<String> = PROTOCOL_ENUMS.iter().map(|s| s.to_string()).collect();
    let diags = lint_source_with_graph("crates/core/src/proxy/client.rs", caller, &enums, &graph);
    assert_eq!(rules(&diags), ["blocking-in-actor"], "{diags:?}");
    assert!(diags[0].message.contains("real_sleep"), "{diags:?}");
    // The helper's own crate is not actor-scoped: no diagnostic there.
    assert!(
        lint_source_with_graph("crates/rpc/src/transport.rs", helper, &enums, &graph).is_empty()
    );
}

#[test]
fn lock_order_drift_flags_both_directions() {
    // Sources acquiring every ranked lock: the table is in sync.
    let all: String = LOCK_ORDER
        .iter()
        .map(|(name, _)| format!("fn f_{name}(&self) {{ let g = self.{name}.lock(); }}\n"))
        .collect();
    let mut diags = Vec::new();
    lint_lock_order_drift(&[("crates/core/src/all.rs".into(), all.clone())], &mut diags);
    assert!(diags.is_empty(), "{diags:?}");

    // A receiver the table does not rank.
    let mut diags = Vec::new();
    let extra = format!("{all}fn g(&self) {{ let m = self.mystery.lock(); }}\n");
    lint_lock_order_drift(&[("crates/core/src/all.rs".into(), extra)], &mut diags);
    assert_eq!(rules(&diags), ["lock-order-drift"], "{diags:?}");
    assert!(diags[0].message.contains("`mystery`"), "{diags:?}");

    // A table entry nothing acquires any more (drop the last lock's fn).
    let (stale, _) = LOCK_ORDER.last().expect("table is non-empty");
    let missing: String = LOCK_ORDER
        .iter()
        .filter(|(name, _)| name != stale)
        .map(|(name, _)| format!("fn f_{name}(&self) {{ let g = self.{name}.lock(); }}\n"))
        .collect();
    let mut diags = Vec::new();
    lint_lock_order_drift(&[("crates/core/src/all.rs".into(), missing)], &mut diags);
    assert_eq!(rules(&diags), ["lock-order-drift"], "{diags:?}");
    assert!(diags[0].message.contains(stale), "{diags:?}");

    // Acquisitions outside crates/core never count towards the table.
    let mut diags = Vec::new();
    lint_lock_order_drift(&[("crates/bench/src/all.rs".into(), all)], &mut diags);
    assert_eq!(diags.len(), LOCK_ORDER.len(), "{diags:?}");
}

#[test]
fn golden_fixtures_trip_exactly_their_rule() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 7, "expected one known-bad fixture per rule, got {entries:?}");
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let mut lines = src.lines();
        let expect = lines
            .next()
            .and_then(|l| l.strip_prefix("// expect: "))
            .unwrap_or_else(|| panic!("{path:?} missing `// expect:` header"))
            .trim();
        let as_path = lines
            .next()
            .and_then(|l| l.strip_prefix("// as: "))
            .unwrap_or_else(|| panic!("{path:?} missing `// as:` header"))
            .trim();
        let diags = lint(as_path, &src);
        assert!(!diags.is_empty(), "{path:?}: known-bad fixture produced no diagnostics");
        for d in &diags {
            assert_eq!(d.rule, expect, "{path:?}: unexpected rule in {diags:?}");
        }
    }
}

#[test]
fn shipped_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint_workspace(&root).expect("workspace lints");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn delegation_model_explores_and_holds() {
    let report = model::check_delegation();
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(report.states >= 1_000, "only {} states", report.states);
}

#[test]
fn invalidation_model_explores_and_holds() {
    let report = model::check_invalidation();
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(report.states >= 1_000, "only {} states", report.states);
}
