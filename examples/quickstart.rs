//! Quickstart: establish a GVFS session and use it like a filesystem.
//!
//! ```sh
//! cargo run --release -p gvfs-bench --example quickstart
//! ```
//!
//! This brings up the full stack on a simulated WAN — kernel NFS client
//! emulation → proxy client (disk cache) → 40 ms / 4 Mbit/s link →
//! proxy server → kernel NFS server — with the relaxed invalidation-
//! polling consistency model, then shows the cache absorbing the kernel
//! client's consistency checks.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use std::time::Duration;

fn main() {
    // The simulation hosts every machine in the deployment.
    let sim = Sim::new();

    // Middleware step: create a GVFS session with an application-
    // tailored consistency model (here: 30-second invalidation polling).
    let config = SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(30),
            backoff_max: None,
        },
        ..SessionConfig::default()
    };
    let session = Session::builder(config).clients(1).wan(LinkConfig::wan()).establish(&sim);

    let transport = session.client_transport(0);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let handle = session.handle();

    // The application runs as a simulation actor on "client machine 0".
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::default());

        // Ordinary file operations.
        client.write_file("/results/.keep", b"").unwrap_err(); // no parent dir yet
        let dir = client.mkdir(client.root(), "results").unwrap();
        let file = client.create(dir, "run-001.dat", true).unwrap();
        client.write(file, 0, b"grid computing output").unwrap();
        assert_eq!(client.read_file("/results/run-001.dat").unwrap(), b"grid computing output");

        // The kernel's consistency-check storm is absorbed by the proxy.
        let before = wan.snapshot();
        for _ in 0..100 {
            client.stat("/results/run-001.dat").unwrap();
        }
        let delta = wan.snapshot().since(&before);
        println!(
            "100 stats -> {} WAN RPCs (proxy disk cache served the rest)",
            delta.total_calls()
        );

        println!("virtual time elapsed: {}", gvfs_netsim::now());
        handle.shutdown();
    });

    sim.run();
    println!("final WAN traffic:\n{}", session.wan_stats().snapshot());
}
