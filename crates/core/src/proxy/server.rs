//! The GVFS proxy server.
//!
//! Sits beside the kernel NFS server. For every proxy-program call it
//! forwards the native NFSv3 procedure over loopback, and around that
//! forwarding implements the session's consistency model:
//!
//! * **invalidation polling** — appends modified file handles to the
//!   per-client invalidation buffers and answers `GETINV`;
//! * **delegation/callback** — consults the [`DelegationTable`], issues
//!   recall callbacks to proxy clients *before* serving conflicting
//!   requests, and piggybacks grants on replies;
//! * tracks the participating-client list persistently, so a restarted
//!   proxy server can multicast recovery callbacks (§4.3.4).

use crate::delegation::{DelegationKind, DelegationTable, RecallAction};
use crate::invalidation::InvalidationTracker;
use crate::model::ConsistencyModel;
use crate::protocol::{
    proc_ext, CallbackArgs, CallbackKind, CallbackRes, DelegationGrant, GetinvArgs, GetinvRes,
    RecoverRes, WrappedReply, GVFS_CALLBACK_PROGRAM, GVFS_PROXY_PROGRAM, GVFS_VERSION,
};
use crate::proxy::{block_of, classify, OpClass};
use gvfs_netsim::transport::SimRpcClient;
use gvfs_nfs3::{proc3, Fh3, LookupArgs, LookupRes, NFS_PROGRAM, NFS_V3};
use gvfs_rpc::dispatch::RpcService;
use gvfs_rpc::message::OpaqueAuth;
use gvfs_rpc::RpcError;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

#[derive(Debug)]
struct VolatileState {
    inval: InvalidationTracker,
    deleg: DelegationTable,
}

/// The proxy server service. Register it (wrapped in an `Arc`) with a
/// [`gvfs_netsim::transport::ServerNode`]; proxy clients call it on
/// [`GVFS_PROXY_PROGRAM`].
pub struct ProxyServer {
    model: ConsistencyModel,
    nfs: SimRpcClient,
    state: Mutex<VolatileState>,
    /// Callback transports per client id, registered by the session.
    callbacks: RwLock<HashMap<u32, SimRpcClient>>,
    /// The client list is "always stored directly on disk" (§4.3.4):
    /// it survives crashes.
    persisted_clients: Mutex<HashSet<u32>>,
    /// Back-reference for spawning parallel recall actors.
    self_ref: Mutex<std::sync::Weak<ProxyServer>>,
}

impl std::fmt::Debug for ProxyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyServer").field("model", &self.model).finish()
    }
}

impl ProxyServer {
    /// Creates a proxy server forwarding to the kernel NFS server via
    /// `nfs` (a loopback transport), applying `model`.
    pub fn new(model: ConsistencyModel, nfs: SimRpcClient) -> Arc<Self> {
        let deleg_config = match model {
            ConsistencyModel::DelegationCallback(c) => c,
            _ => crate::model::DelegationConfig::default(),
        };
        let server = Arc::new(ProxyServer {
            model,
            nfs,
            state: Mutex::new(VolatileState {
                inval: InvalidationTracker::new(4096),
                deleg: DelegationTable::new(deleg_config),
            }),
            callbacks: RwLock::new(HashMap::new()),
            persisted_clients: Mutex::new(HashSet::new()),
            self_ref: Mutex::new(std::sync::Weak::new()),
        });
        *server.self_ref.lock() = Arc::downgrade(&server);
        server
    }

    /// Performs a batch of recalls concurrently — the proxies are
    /// multithreaded (§4.3.2), so callbacks to distinct clients overlap
    /// on the wire rather than serializing their round trips.
    fn perform_recalls(&self, actions: Vec<RecallAction>) {
        if actions.len() <= 1 {
            for action in &actions {
                self.perform_recall(action);
            }
            return;
        }
        let me = gvfs_netsim::current_actor();
        let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(actions.len()));
        let weak = self.self_ref.lock().clone();
        for action in actions {
            let remaining = Arc::clone(&remaining);
            let me = me.clone();
            let weak = weak.clone();
            gvfs_netsim::spawn_from_actor("recall", move || {
                if let Some(server) = weak.upgrade() {
                    server.perform_recall(&action);
                }
                if remaining.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) == 1 {
                    me.unpark();
                }
            });
        }
        while remaining.load(std::sync::atomic::Ordering::SeqCst) > 0 {
            gvfs_netsim::park();
        }
    }

    /// Overrides the invalidation-buffer capacity (ablation knob).
    pub fn set_invalidation_capacity(&self, capacity: usize) {
        self.state.lock().inval = InvalidationTracker::new(capacity);
    }

    /// Registers the callback transport for a proxy client (done by the
    /// middleware when the session is established; in the real system
    /// the port arrives in each request's credential).
    pub fn register_callback(&self, client: u32, transport: SimRpcClient) {
        self.callbacks.write().insert(client, transport);
    }

    /// The consistency model in effect.
    pub fn model(&self) -> ConsistencyModel {
        self.model
    }

    /// Simulates a crash: volatile state (invalidation buffers,
    /// timestamps, delegation table) is lost; the persisted client list
    /// survives.
    pub fn crash(&self) {
        let mut st = self.state.lock();
        st.inval = InvalidationTracker::new(4096);
        let config = *st.deleg.config();
        st.deleg = DelegationTable::new(config);
    }

    /// Recovery after restart (§4.3.4): multicasts a cache-wide
    /// `RECOVER` callback to every known client and rebuilds the
    /// delegation table from their dirty-file lists. Incoming requests
    /// are implicitly blocked for the duration (the grace period) by the
    /// sequential callback round.
    ///
    /// Returns the number of clients that answered.
    pub fn recover(&self) -> usize {
        if !matches!(self.model, ConsistencyModel::DelegationCallback(_)) {
            return 0;
        }
        let mut clients: Vec<u32> = self.persisted_clients.lock().iter().copied().collect();
        clients.sort_unstable();
        // "A single multicasted callback to the clients" (§4.3.4): the
        // recovery round goes out in parallel, keeping the grace period
        // to roughly one WAN round trip.
        let me = gvfs_netsim::current_actor();
        let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(clients.len()));
        let answered = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let weak = self.self_ref.lock().clone();
        for client in clients {
            let remaining = Arc::clone(&remaining);
            let answered = Arc::clone(&answered);
            let me = me.clone();
            let weak = weak.clone();
            gvfs_netsim::spawn_from_actor("recover-callback", move || {
                if let Some(server) = weak.upgrade() {
                    let transport = server.callbacks.read().get(&client).cloned();
                    if let Some(transport) = transport {
                        if let Ok(bytes) = transport.call(
                            GVFS_CALLBACK_PROGRAM,
                            GVFS_VERSION,
                            proc_ext::RECOVER,
                            Vec::new(),
                        ) {
                            if let Ok(res) = gvfs_xdr::from_bytes::<RecoverRes>(&bytes) {
                                answered.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                                let now = gvfs_netsim::now();
                                server.state.lock().deleg.recover_client(
                                    client,
                                    &res.dirty_files,
                                    now,
                                );
                            }
                        }
                    }
                }
                if remaining.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) == 1 {
                    me.unpark();
                }
            });
        }
        while remaining.load(std::sync::atomic::Ordering::SeqCst) > 0 {
            gvfs_netsim::park();
        }
        answered.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Runs one delegation sweep (speculated closes, LRU eviction); the
    /// session's sweeper actor calls this periodically.
    pub fn sweep(&self) {
        let actions = {
            let now = gvfs_netsim::now();
            self.state.lock().deleg.sweep(now)
        };
        for action in actions {
            self.state.lock().deleg.begin_recall(action.fh);
            self.perform_recall(&action);
            let mut st = self.state.lock();
            st.deleg.end_recall(action.fh);
            st.deleg.sweep_done(action.fh, action.client);
        }
    }

    /// Number of files currently tracked by the delegation table.
    pub fn tracked_files(&self) -> usize {
        self.state.lock().deleg.tracked_files()
    }

    fn forward(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        self.nfs.call(NFS_PROGRAM, NFS_V3, procedure, args.to_vec())
    }

    /// Resolves the file handle a REMOVE/RENAME will affect, so its
    /// holders can be invalidated/recalled. Loopback lookup; cheap.
    fn resolve_target(&self, dir: Fh3, name: &str) -> Option<Fh3> {
        let args = gvfs_xdr::to_bytes(&LookupArgs { dir, name: name.to_string() }).ok()?;
        let bytes = self.forward(proc3::LOOKUP, &args).ok()?;
        match gvfs_xdr::from_bytes::<LookupRes>(&bytes).ok()? {
            LookupRes::Ok { object, .. } => Some(object),
            LookupRes::Fail { .. } => None,
        }
    }

    fn perform_recall(&self, action: &RecallAction) {
        if std::env::var_os("GVFS_DEBUG_RECALL").is_some() {
            eprintln!("[{}] recall {:?}", gvfs_netsim::now(), action);
        }
        let transport = self.callbacks.read().get(&action.client).cloned();
        let Some(transport) = transport else {
            // Unknown callback route: nothing to recall against.
            self.state.lock().deleg.recall_done(action.fh, action.client, Vec::new());
            return;
        };
        let kind = match action.kind {
            DelegationKind::Read => CallbackKind::RecallRead,
            DelegationKind::Write => CallbackKind::RecallWrite,
        };
        let args = CallbackArgs { fh: action.fh, kind, requested_offset: action.requested_offset };
        let encoded = gvfs_xdr::to_bytes(&args).unwrap_or_default();
        match transport.call(GVFS_CALLBACK_PROGRAM, GVFS_VERSION, proc_ext::CALLBACK, encoded) {
            Ok(bytes) => {
                let pending = gvfs_xdr::from_bytes::<CallbackRes>(&bytes)
                    .map(|r| r.pending_blocks)
                    .unwrap_or_default();
                self.state.lock().deleg.recall_done(action.fh, action.client, pending);
            }
            Err(_) => {
                // Client unreachable: treat the delegation as revoked
                // with nothing recovered (its writes are lost unless it
                // reconciles after recovery, §4.3.4).
                self.state.lock().deleg.recall_done(action.fh, action.client, Vec::new());
            }
        }
    }

    fn record_invalidations(&self, class: &OpClass, client: u32, removed_targets: &[Fh3]) {
        let mut st = self.state.lock();
        match class {
            OpClass::Write { fh, .. } | OpClass::SetAttr { fh } => {
                st.inval.record_modification(*fh, client);
            }
            OpClass::DirModify { dir, extra, file, .. } => {
                st.inval.record_modification(*dir, client);
                if let Some((extra_dir, _)) = extra {
                    st.inval.record_modification(*extra_dir, client);
                }
                if let Some(fh) = file {
                    st.inval.record_modification(*fh, client);
                }
                for fh in removed_targets {
                    st.inval.record_modification(*fh, client);
                }
            }
            _ => {}
        }
    }

    /// Delegation-model admission: returns the grant for the reply after
    /// performing any recalls the access requires.
    fn admit_delegation(&self, class: &OpClass, client: u32) -> DelegationGrant {
        let accesses: Vec<(Fh3, bool, Option<u64>)> = match class {
            OpClass::AttrRead { fh } => vec![(*fh, false, None)],
            OpClass::Lookup { dir, .. } | OpClass::ReadDir { dir } => vec![(*dir, false, None)],
            OpClass::Read { fh, offset, .. } => vec![(*fh, false, Some(block_of(*offset)))],
            OpClass::Write { fh, offset } => {
                // A write that is part of a tracked partial write-back
                // bypasses conflict processing.
                {
                    let mut st = self.state.lock();
                    if st.deleg.note_writeback(*fh, client, block_of(*offset)) {
                        return DelegationGrant::None;
                    }
                }
                vec![(*fh, true, Some(block_of(*offset)))]
            }
            OpClass::SetAttr { fh } => vec![(*fh, true, None)],
            OpClass::DirModify { dir, extra, file, .. } => {
                let mut v = vec![(*dir, true, None)];
                if let Some((extra_dir, _)) = extra {
                    v.push((*extra_dir, true, None));
                }
                if let Some(fh) = file {
                    v.push((*fh, true, None));
                }
                v
            }
            OpClass::Other => return DelegationGrant::None,
        };

        let mut grant = DelegationGrant::None;
        for (i, (fh, write, offset)) in accesses.iter().enumerate() {
            loop {
                let (g, recalls) = {
                    let now = gvfs_netsim::now();
                    self.state.lock().deleg.access(*fh, client, *write, *offset, now)
                };
                if recalls.is_empty() {
                    if i == 0 {
                        grant = g;
                    }
                    break;
                }
                // The file is temporarily non-cacheable while the recall
                // round is in flight: no delegation may be granted in the
                // window, or the round's completion would silently revoke
                // it server-side.
                self.state.lock().deleg.begin_recall(*fh);
                self.perform_recalls(recalls);
                self.state.lock().deleg.end_recall(*fh);
                // Re-admit after the recalls completed: the pending
                // write-back (if any) may still cover the block, in
                // which case another targeted recall is issued; the
                // inline flush of the requested block guarantees
                // progress.
                let covered = {
                    let st = self.state.lock();
                    match (offset, st.deleg.pending_writeback(*fh)) {
                        (Some(off), Some(p)) => p.blocks.contains(off),
                        _ => false,
                    }
                };
                if !covered {
                    if i == 0 {
                        grant = DelegationGrant::NonCacheable;
                    }
                    break;
                }
            }
        }
        grant
    }

    fn handle_nfs(&self, procedure: u32, args: &[u8], client: u32) -> Result<Vec<u8>, RpcError> {
        let class = classify(procedure, args)?;

        // Resolve handles that REMOVE/RENAME will detach, before the
        // operation destroys the name.
        let mut removed_targets = Vec::new();
        if let OpClass::DirModify { dir, names, extra, .. } = &class {
            if matches!(procedure, proc3::REMOVE | proc3::RENAME) {
                for name in names {
                    if let Some(fh) = self.resolve_target(*dir, name) {
                        removed_targets.push(fh);
                    }
                }
                if let Some((extra_dir, extra_name)) = extra {
                    if let Some(fh) = self.resolve_target(*extra_dir, extra_name) {
                        removed_targets.push(fh);
                    }
                }
            }
        }

        let grant = match self.model {
            ConsistencyModel::DelegationCallback(_) => {
                // Recall delegations on files a REMOVE/RENAME destroys.
                for fh in &removed_targets {
                    let class = OpClass::SetAttr { fh: *fh };
                    let _ = self.admit_delegation(&class, client);
                }
                self.admit_delegation(&class, client)
            }
            _ => DelegationGrant::None,
        };

        let nfs_bytes = self.forward(procedure, args)?;

        if matches!(self.model, ConsistencyModel::InvalidationPolling { .. })
            && class.is_modification()
        {
            self.record_invalidations(&class, client, &removed_targets);
        }

        Ok(gvfs_xdr::to_bytes(&WrappedReply { grant, nfs_bytes })?)
    }

    fn handle_getinv(&self, args: &[u8], client: u32) -> Result<Vec<u8>, RpcError> {
        let a: GetinvArgs = gvfs_xdr::from_bytes(args).map_err(|_| RpcError::GarbageArgs)?;
        let res: GetinvRes = self.state.lock().inval.getinv(client, a.last_timestamp);
        Ok(gvfs_xdr::to_bytes(&res)?)
    }
}

impl RpcService for ProxyServer {
    fn program(&self) -> u32 {
        GVFS_PROXY_PROGRAM
    }
    fn version(&self) -> u32 {
        GVFS_VERSION
    }
    fn call(&self, _procedure: u32, _args: &[u8]) -> Result<Vec<u8>, RpcError> {
        // The proxy server authenticates every call; reject
        // credential-less entry.
        Err(RpcError::AuthError)
    }
    fn call_with_cred(
        &self,
        procedure: u32,
        args: &[u8],
        credential: &OpaqueAuth,
    ) -> Result<Vec<u8>, RpcError> {
        let cred = credential.as_gvfs()?;
        self.persisted_clients.lock().insert(cred.client_id);
        match procedure {
            proc_ext::GETINV => self.handle_getinv(args, cred.client_id),
            proc3::NULL => Ok(Vec::new()),
            p if p <= proc3::COMMIT => self.handle_nfs(p, args, cred.client_id),
            p => Err(RpcError::ProcedureUnavailable { program: GVFS_PROXY_PROGRAM, procedure: p }),
        }
    }
}
