/root/repo/target/debug/deps/fig5-f92a6e0677dda654.d: /root/repo/clippy.toml crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-f92a6e0677dda654.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
