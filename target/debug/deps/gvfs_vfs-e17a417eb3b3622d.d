/root/repo/target/debug/deps/gvfs_vfs-e17a417eb3b3622d.d: crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs

/root/repo/target/debug/deps/gvfs_vfs-e17a417eb3b3622d: crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs

crates/vfs/src/lib.rs:
crates/vfs/src/attr.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
