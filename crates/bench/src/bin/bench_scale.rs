//! Proxy-server scale bench: 1k–10k lightweight protocol clients
//! against one proxy server, measuring the hot paths the fan-out and
//! invalidation rework targets:
//!
//! 1. **recall fan-out** — N read-delegation holders on one shared
//!    file; a writer triggers an N-recall round. The round is driven
//!    through the bounded fan-out window (pre-rework arm: window 1 =
//!    sequential issue-and-wait). Measured: round latency, recalls/sec,
//!    in-flight high-water mark.
//! 2. **GETINV at scale** — N polling clients bootstrap, a writer
//!    churns files, every client drains. Measured: poll throughput,
//!    p50/p99 GETINV latency, stripe-lock contention, and the
//!    batched-drain coalescing (stripe passes instead of per-client
//!    lock acquisitions).
//! 3. **piggybacked drains** — the same drain riding back on ordinary
//!    NFS replies: steady-state polls cost zero extra WAN messages.
//! 4. **paged drains** — a churn burst larger than one reply pages
//!    through `poll_again`.
//! 5. **idle eviction** — after the churn, epoch sweeps must evict
//!    every idle client's buffers and breakers while keeping the
//!    active set, bounding delegation/invalidation/breaker state.
//!
//! Unlike the `fig*` binaries this harness does not build full proxy
//! clients (disk cache, poller, flusher per client — far too heavy at
//! 10k): it drives credentialed wire-level calls against the proxy
//! server from a small pool of driver actors, one `GvfsCred` per
//! simulated client, which is exactly what the server sees from 10k
//! real proxies.
//!
//! Run: `cargo run --release -p gvfs-bench --bin bench_scale [--small]`
//! Writes `results/BENCH_scale.json`.

use gvfs_bench::scale::{
    cred, drive, fanout_round, getinv_call, percentile, write_call, World, DRIVERS,
};
use gvfs_core::protocol::{proc_ext, GetinvRes, WrappedReply, GVFS_PROXY_PROGRAM, GVFS_VERSION};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::transport::SimRpcClient;
use gvfs_netsim::Sim;
use gvfs_nfs3::{proc3, Fh3};
use gvfs_vfs::Timestamp;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Phases 2–5: polling world. Bootstraps N clients, churns, drains
/// (plain + piggybacked), pages a big burst, then evicts the idle.
fn polling_phases(clients: usize) -> (f64, f64, serde_json::Value) {
    const CHURN_FILES: usize = 32;
    const ACTIVE: usize = 8;
    let sim = Sim::new();
    let result = Arc::new(Mutex::new(None));
    let out = Arc::clone(&result);
    sim.spawn("bench-main", move || {
        let world = World::establish(
            ConsistencyModel::InvalidationPolling {
                period: Duration::from_secs(30),
                backoff_max: None,
            },
            clients,
        );
        let churn: Vec<Fh3> =
            (0..CHURN_FILES).map(|n| world.seed_file(&format!("churn-{n:04}"))).collect();
        let transports: Arc<Vec<SimRpcClient>> =
            Arc::new((0..DRIVERS).map(|d| world.transport(d)).collect());

        // Bootstrap: every client's first GETINV registers its buffer.
        let timestamps: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; clients]));
        {
            let ts = Arc::clone(&timestamps);
            let tx = Arc::clone(&transports);
            drive(clients, move |d, i| {
                let res = getinv_call(&tx[d], i as u32 + 1, None);
                ts.lock()[i] = res.timestamp;
            });
        }

        // Churn: one writer dirties the working set.
        let writer = clients as u32 + 1;
        for &fh in &churn {
            write_call(&transports[0], writer, fh);
        }

        // Plain drains, timed per call.
        let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let drained: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
        let t0 = gvfs_netsim::now();
        {
            let ts = Arc::clone(&timestamps);
            let lat = Arc::clone(&latencies);
            let drained = Arc::clone(&drained);
            let tx = Arc::clone(&transports);
            drive(clients, move |d, i| {
                let last = ts.lock()[i];
                let c0 = gvfs_netsim::now();
                let res = getinv_call(&tx[d], i as u32 + 1, Some(last));
                lat.lock().push(gvfs_netsim::now().saturating_since(c0).as_secs_f64());
                drained.fetch_add(res.handles.len(), Ordering::Relaxed);
                ts.lock()[i] = res.timestamp;
            });
        }
        let drain_s = gvfs_netsim::now().saturating_since(t0).as_secs_f64();
        let mut lat = latencies.lock().clone();
        lat.sort_by(f64::total_cmp);
        assert_eq!(
            drained.load(Ordering::Relaxed),
            clients * CHURN_FILES,
            "every client must drain the full churn set"
        );

        // Piggyback: churn again, then every client does one ordinary
        // GETATTR; the drain rides back on the reply and the poll is
        // skipped. Steady-state consistency costs zero extra messages.
        world.server.set_piggyback_inval(true);
        for &fh in &churn {
            write_call(&transports[0], writer, fh);
        }
        let getinv_before = world.wan_stats.snapshot().calls(GVFS_PROXY_PROGRAM, proc_ext::GETINV);
        let piggybacked: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
        let fell_back: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
        {
            let ts = Arc::clone(&timestamps);
            let piggybacked = Arc::clone(&piggybacked);
            let fell_back = Arc::clone(&fell_back);
            let tx = Arc::clone(&transports);
            let churn0 = churn[0];
            drive(clients, move |d, i| {
                let id = i as u32 + 1;
                let args = gvfs_xdr::to_bytes(&gvfs_nfs3::GetattrArgs { object: churn0 })
                    .expect("encode getattr");
                let bytes = tx[d]
                    .call_with_cred(
                        GVFS_PROXY_PROGRAM,
                        GVFS_VERSION,
                        proc3::GETATTR,
                        args,
                        cred(id),
                    )
                    .expect("getattr");
                let reply: WrappedReply = gvfs_xdr::from_bytes(&bytes).expect("decode");
                match reply.inv {
                    Some(inv) if !inv.poll_again => {
                        piggybacked.fetch_add(inv.handles.len(), Ordering::Relaxed);
                        ts.lock()[i] = inv.timestamp;
                    }
                    _ => {
                        // Paged or missing: fall back to a real poll.
                        fell_back.fetch_add(1, Ordering::Relaxed);
                        let last = ts.lock()[i];
                        let res = getinv_call(&tx[d], id, Some(last));
                        ts.lock()[i] = res.timestamp;
                    }
                }
            });
        }
        let getinv_extra =
            world.wan_stats.snapshot().calls(GVFS_PROXY_PROGRAM, proc_ext::GETINV) - getinv_before;
        assert_eq!(
            piggybacked.load(Ordering::Relaxed),
            clients * CHURN_FILES,
            "every drain must ride back piggybacked"
        );
        assert_eq!(getinv_extra, 0, "steady-state polls must cost zero extra GETINV messages");
        world.server.set_piggyback_inval(false);

        // Paging: a churn burst larger than one reply; client 1 pages
        // through `poll_again`.
        let burst = gvfs_core::protocol::MAX_INVALIDATIONS_PER_REPLY + 80;
        {
            let t = Timestamp::from_nanos(0);
            for n in 0..burst {
                let id =
                    world.vfs.create(world.vfs.root(), &format!("burst-{n:05}"), 0o644, t).unwrap();
                let fh = Fh3::from_fileid(id.as_u64());
                write_call(&transports[0], writer, fh);
            }
        }
        let mut pages = 0usize;
        let mut paged_handles = 0usize;
        {
            let mut last = timestamps.lock()[0];
            loop {
                let res = getinv_call(&transports[0], 1, Some(last));
                pages += 1;
                paged_handles += res.handles.len();
                last = res.timestamp;
                assert!(!res.force_invalidate, "paged drain must not degrade to a force");
                if !res.poll_again {
                    break;
                }
            }
            timestamps.lock()[0] = last;
        }
        assert!(pages >= 2, "burst of {burst} must page, got {pages} page(s)");
        assert_eq!(paged_handles, burst, "paged drain must deliver the full burst");

        // Idle eviction: only ACTIVE clients keep polling while epochs
        // pass; everyone else's buffers must be evicted.
        world.server.set_idle_epochs(2);
        for _ in 0..4 {
            for i in 0..ACTIVE.min(clients) {
                let last = timestamps.lock()[i];
                let res = getinv_call(&transports[0], i as u32 + 1, Some(last));
                timestamps.lock()[i] = res.timestamp;
            }
            world.server.maintain();
        }
        let stats = world.server.scale_stats();
        assert!(
            stats.inval_clients <= ACTIVE,
            "idle eviction must bound tracker state: {} clients tracked after churn of {}",
            stats.inval_clients,
            clients
        );
        assert!(
            stats.inval.evicted_buffers >= (clients - ACTIVE) as u64,
            "expected >= {} evictions, saw {}",
            clients - ACTIVE,
            stats.inval.evicted_buffers
        );

        let snap = world.wan_stats.snapshot();
        let polls_per_sec = clients as f64 / drain_s;
        let p99 = percentile(&lat, 0.99);
        let json = serde_json::json!({
            "drain": {
                "throughput_polls_per_sec": polls_per_sec,
                "p50_s": percentile(&lat, 0.50),
                "p99_s": p99,
                "handles": drained.load(Ordering::Relaxed),
            },
            "piggyback": {
                "piggybacked_handles": piggybacked.load(Ordering::Relaxed),
                "fallback_polls": fell_back.load(Ordering::Relaxed),
                "extra_getinv_msgs": getinv_extra,
            },
            "paging": { "burst": burst, "pages": pages },
            "eviction": {
                "tracked_after_churn": stats.inval_clients,
                "evicted_buffers": stats.inval.evicted_buffers,
                "active_kept": ACTIVE.min(clients),
            },
            "server": gvfs_bench::server_meta(&world.server),
            "rpc": gvfs_bench::rpc_meta(&snap),
        });
        *out.lock() = Some((polls_per_sec, p99, json));
    });
    sim.run();
    let v = result.lock().take();
    v.expect("polling phases produced no result")
}

/// Tracker-level coalescing: many clients drained under one stripe
/// pass (`getinv_batch`) against one lock acquisition per client. Pure
/// data-structure comparison — deterministic counters, no sim.
fn batch_coalescing(clients: usize) -> serde_json::Value {
    use gvfs_core::invalidation::ConcurrentInvalidationTracker;
    let run = |batched: bool| -> (u64, Vec<GetinvRes>) {
        let tracker = ConcurrentInvalidationTracker::new(1024);
        for i in 0..clients {
            tracker.getinv(i as u32 + 1, None);
        }
        for fh in 0..16u64 {
            tracker.record_modification(Fh3::from_fileid(fh), 0);
        }
        let before = tracker.scale_counters().lock_acquisitions;
        let requests: Vec<(u32, Option<u64>)> =
            (0..clients).map(|i| (i as u32 + 1, Some(0))).collect();
        let replies = if batched {
            tracker.getinv_batch(&requests)
        } else {
            requests.iter().map(|&(c, last)| tracker.getinv(c, last)).collect()
        };
        (tracker.scale_counters().lock_acquisitions - before, replies)
    };
    let (unbatched_locks, unbatched_replies) = run(false);
    let (batched_locks, batched_replies) = run(true);
    assert_eq!(unbatched_replies, batched_replies, "coalescing must not change replies");
    assert!(
        batched_locks < unbatched_locks,
        "one stripe pass must beat per-client locking ({batched_locks} vs {unbatched_locks})"
    );
    serde_json::json!({
        "drains": clients,
        "unbatched_lock_acquisitions": unbatched_locks,
        "batched_lock_acquisitions": batched_locks,
    })
}

fn main() {
    let small = gvfs_bench::small_mode();
    let arms: &[usize] = if small { &[48, 96] } else { &[1000, 2500] };
    let windows: &[usize] = &[1, 64];

    let mut arm_docs = Vec::new();
    let mut rows = Vec::new();
    for &clients in arms {
        let mut fanout = Vec::new();
        let mut round = [0.0f64; 2];
        for (i, &w) in windows.iter().enumerate() {
            let (round_s, v) = fanout_round(clients, w);
            round[i] = round_s;
            fanout.push(v);
        }
        let speedup = round[0] / round[1];
        let (polls_per_sec, p99, polling) = polling_phases(clients);
        let batch = batch_coalescing(clients);
        rows.push(vec![
            clients.to_string(),
            format!("{:.3}", round[0]),
            format!("{:.3}", round[1]),
            format!("{speedup:.1}x"),
            format!("{polls_per_sec:.0}"),
            format!("{p99:.4}"),
        ]);
        arm_docs.push(serde_json::json!({
            "clients": clients,
            "fanout": fanout,
            "fanout_speedup": speedup,
            "polling": polling,
            "batch_coalescing": batch,
        }));
        assert!(
            speedup >= 2.0,
            "bounded fan-out window must beat sequential-wait >=2x at {clients} clients, \
             got {speedup:.2}x"
        );
    }
    print_summary(&rows);
    gvfs_bench::save_json(
        "BENCH_scale.json",
        &serde_json::json!({
            "experiment": "bench_scale",
            "small": small,
            "fanout_windows": windows,
            "arms": arm_docs,
        }),
    );
}

fn print_summary(rows: &[Vec<String>]) {
    gvfs_bench::print_table(
        "Proxy-server scale (recall fan-out round + GETINV drains)",
        &["clients", "round w=1 (s)", "round w=64 (s)", "speedup", "polls/s", "drain p99 (s)"],
        rows,
    );
}
