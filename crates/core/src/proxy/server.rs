//! The GVFS proxy server.
//!
//! Sits beside the kernel NFS server. For every proxy-program call it
//! forwards the native NFSv3 procedure over loopback, and around that
//! forwarding implements the session's consistency model:
//!
//! * **invalidation polling** — appends modified file handles to the
//!   per-client invalidation buffers and answers `GETINV`;
//! * **delegation/callback** — consults the [`DelegationTable`], issues
//!   recall callbacks to proxy clients *before* serving conflicting
//!   requests, and piggybacks grants on replies;
//! * tracks the participating-client list persistently, so a restarted
//!   proxy server can multicast recovery callbacks (§4.3.4).
//!
//! # Concurrency
//!
//! The proxy is multithreaded (§4.3.2): while one handler waits out a
//! WAN callback, others keep serving. Consistency state is therefore
//! decomposed rather than held under one global mutex:
//!
//! * delegation state is **sharded by file handle** — each shard owns a
//!   [`DelegationTable`] behind its own lock, so handlers touching
//!   different files never contend;
//! * invalidation buffers are **per client**
//!   ([`ConcurrentInvalidationTracker`]): appends and `GETINV` drains
//!   for different clients proceed in parallel.
//!
//! Recall fan-out and the `RECOVER` multicast use the RPC channel's
//! send/wait split ([`SimRpcClient::send`]): every callback goes on the
//! wire before the first reply is claimed, so a round to N clients
//! costs one WAN round trip, not N. No lock is ever held across the
//! wire.

use crate::delegation::{DelegationKind, DelegationTable, RecallAction};
use crate::invalidation::ConcurrentInvalidationTracker;
use crate::model::ConsistencyModel;
use crate::protocol::{
    proc_ext, CallbackArgs, CallbackKind, CallbackRes, DelegationGrant, GetinvArgs, GetinvRes,
    RecoverRes, WrappedReply, GVFS_CALLBACK_PROGRAM, GVFS_PROXY_PROGRAM, GVFS_VERSION,
};
use crate::proxy::{block_of, classify, OpClass};
#[cfg(feature = "trace")]
use crate::trace::{ProtocolEvent, TraceBuffer, TraceKind};
use gvfs_netsim::transport::SimRpcClient;
use gvfs_netsim::SimTime;
use gvfs_nfs3::{proc3, Fh3, LookupArgs, LookupRes, NFS_PROGRAM, NFS_V3};
use gvfs_rpc::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use gvfs_rpc::channel::PendingCall;
use gvfs_rpc::dispatch::RpcService;
use gvfs_rpc::message::OpaqueAuth;
use gvfs_rpc::RpcError;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Virtual time as a `Duration` since the simulation epoch (the
/// breaker's clock representation).
fn now_dur() -> Duration {
    gvfs_netsim::now().saturating_since(SimTime::ZERO)
}

/// Number of delegation shards. Shard choice hashes the file handle, so
/// all state for one file lives in exactly one shard; the per-shard
/// lock is held only for table operations, never across the wire.
const DELEG_SHARDS: usize = 8;

/// One delegation shard: the files whose handles hash here.
#[derive(Debug)]
struct DelegShard {
    deleg: Mutex<DelegationTable>,
}

/// Deterministic shard index for a file handle (fixed-key hasher, so
/// simulations reproduce across runs and processes).
fn shard_of(fh: Fh3) -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    fh.hash(&mut hasher);
    (hasher.finish() as usize) % DELEG_SHARDS
}

/// A recall callback that has been put on the wire but not yet
/// acknowledged (phase one of a fan-out round).
struct RecallInFlight {
    action: RecallAction,
    call: Option<(SimRpcClient, PendingCall)>,
}

/// The proxy server service. Register it (wrapped in an `Arc`) with a
/// [`gvfs_netsim::transport::ServerNode`]; proxy clients call it on
/// [`GVFS_PROXY_PROGRAM`].
pub struct ProxyServer {
    model: ConsistencyModel,
    nfs: SimRpcClient,
    /// Delegation state, sharded by file handle.
    shards: Vec<DelegShard>,
    /// Per-client invalidation buffers (internally locked).
    inval: ConcurrentInvalidationTracker,
    /// Callback transports per client id, registered by the session.
    callbacks: RwLock<HashMap<u32, SimRpcClient>>,
    /// The client list is "always stored directly on disk" (§4.3.4):
    /// it survives crashes.
    persisted_clients: Mutex<HashSet<u32>>,
    /// Breakage knob for the chaos harness: when set, recall callbacks
    /// are silently discarded instead of sent, so holders are revoked
    /// without ever learning about it. A correct run never sets this;
    /// the chaos oracles must catch the resulting stale reads.
    recall_suppressed: AtomicBool,
    /// Recall callbacks actually put on the wire.
    recalls_sent: AtomicU64,
    /// Recalls short-circuited because the target's breaker was open.
    recalls_short_circuited: AtomicU64,
    /// `RECOVER` multicast rounds performed after a restart.
    recover_rounds: AtomicU64,
    /// Per-client WAN health, fed by recall outcomes: a recall to a
    /// breaker-open client is short-circuited (the holder is revoked as
    /// unreachable immediately) instead of burning a callback timeout
    /// per conflicting access. Guards are scoped to the map lookup and
    /// never held across the wire or another lock.
    health: Mutex<HashMap<u32, Arc<CircuitBreaker>>>,
    /// Protocol-event sink for spec-conformance replay, installed once
    /// by the session. Grant/recall/revocation events are recorded
    /// under the owning shard's lock so the per-file subsequence is
    /// linearized exactly as the table decided it.
    #[cfg(feature = "trace")]
    trace: std::sync::OnceLock<Arc<TraceBuffer>>,
}

impl std::fmt::Debug for ProxyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyServer").field("model", &self.model).finish()
    }
}

impl ProxyServer {
    /// Creates a proxy server forwarding to the kernel NFS server via
    /// `nfs` (a loopback transport), applying `model`.
    pub fn new(model: ConsistencyModel, nfs: SimRpcClient) -> Arc<Self> {
        let mut deleg_config = match model {
            ConsistencyModel::DelegationCallback(c) => c,
            _ => crate::model::DelegationConfig::default(),
        };
        // The open-file budget is global; each shard polices its slice.
        deleg_config.max_tracked_files = (deleg_config.max_tracked_files / DELEG_SHARDS).max(1);
        let shards = (0..DELEG_SHARDS)
            .map(|_| DelegShard { deleg: Mutex::new(DelegationTable::new(deleg_config)) })
            .collect();
        Arc::new(ProxyServer {
            model,
            nfs,
            shards,
            inval: ConcurrentInvalidationTracker::new(4096),
            callbacks: RwLock::new(HashMap::new()),
            persisted_clients: Mutex::new(HashSet::new()),
            recall_suppressed: AtomicBool::new(false),
            recalls_sent: AtomicU64::new(0),
            recalls_short_circuited: AtomicU64::new(0),
            recover_rounds: AtomicU64::new(0),
            health: Mutex::new(HashMap::new()),
            #[cfg(feature = "trace")]
            trace: std::sync::OnceLock::new(),
        })
    }

    /// Installs the shared protocol-trace buffer (first call wins) and
    /// turns on per-event lease-revocation recording in every shard.
    #[cfg(feature = "trace")]
    pub fn install_trace(&self, buf: Arc<TraceBuffer>) {
        let _ = self.trace.set(buf);
        for shard in &self.shards {
            shard.deleg.lock().set_revocation_log(true);
        }
    }

    #[cfg(feature = "trace")]
    fn emit_trace(&self, ev: ProtocolEvent) {
        if let Some(buf) = self.trace.get() {
            buf.record(ev);
        }
    }

    /// The health breaker for one client, created closed on first use.
    fn client_breaker(&self, client: u32) -> Arc<CircuitBreaker> {
        let mut health = self.health.lock();
        Arc::clone(
            health
                .entry(client)
                .or_insert_with(|| Arc::new(CircuitBreaker::new(BreakerConfig::default()))),
        )
    }

    /// The shard owning `fh`'s delegation state.
    fn deleg_shard(&self, fh: Fh3) -> &DelegShard {
        &self.shards[shard_of(fh)]
    }

    /// Performs a batch of recalls concurrently — every callback is put
    /// on the wire before the first reply is claimed, so callbacks to
    /// distinct clients overlap on the wire rather than serializing
    /// their round trips (§4.3.2).
    fn perform_recalls(&self, actions: Vec<RecallAction>) {
        let round: Vec<RecallInFlight> = actions
            .into_iter()
            .map(|action| {
                let call = self.send_recall(&action);
                RecallInFlight { action, call }
            })
            .collect();
        for in_flight in round {
            self.finish_recall(&in_flight.action, in_flight.call);
        }
    }

    /// Overrides the invalidation-buffer capacity (ablation knob).
    pub fn set_invalidation_capacity(&self, capacity: usize) {
        self.inval.reset(capacity);
    }

    /// Registers the callback transport for a proxy client (done by the
    /// middleware when the session is established; in the real system
    /// the port arrives in each request's credential).
    pub fn register_callback(&self, client: u32, transport: SimRpcClient) {
        self.callbacks.write().insert(client, transport);
    }

    /// The consistency model in effect.
    pub fn model(&self) -> ConsistencyModel {
        self.model
    }

    /// Simulates a crash: volatile state (invalidation buffers,
    /// timestamps, delegation table) is lost; the persisted client list
    /// survives.
    pub fn crash(&self) {
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::ServerCrash);
        self.inval.reset(4096);
        for shard in &self.shards {
            let mut table = shard.deleg.lock();
            let config = *table.config();
            *table = DelegationTable::new(config);
            #[cfg(feature = "trace")]
            if self.trace.get().is_some() {
                table.set_revocation_log(true);
            }
        }
    }

    /// Recovery after restart (§4.3.4): multicasts a cache-wide
    /// `RECOVER` callback to every known client and rebuilds the
    /// delegation tables from their dirty-file lists. Incoming requests
    /// are implicitly blocked for the duration (the grace period) by the
    /// callback round.
    ///
    /// Returns the number of clients that answered.
    pub fn recover(&self) -> usize {
        if !matches!(self.model, ConsistencyModel::DelegationCallback(_)) {
            return 0;
        }
        self.recover_rounds.fetch_add(1, Ordering::SeqCst);
        let mut clients: Vec<u32> = self.persisted_clients.lock().iter().copied().collect();
        clients.sort_unstable();
        // "A single multicasted callback to the clients" (§4.3.4): the
        // whole round goes on the wire before any reply is claimed,
        // keeping the grace period to roughly one WAN round trip.
        let round: Vec<(u32, Option<(SimRpcClient, PendingCall)>)> = clients
            .into_iter()
            .map(|client| {
                let transport = self.callbacks.read().get(&client).cloned();
                let call = transport.and_then(|t| {
                    t.send(GVFS_CALLBACK_PROGRAM, GVFS_VERSION, proc_ext::RECOVER, Vec::new())
                        .ok()
                        .map(|call| (t, call))
                });
                (client, call)
            })
            .collect();
        let mut answered = 0;
        for (client, call) in round {
            let Some((transport, call)) = call else { continue };
            let Ok(bytes) = transport.wait_pending(call) else { continue };
            let Ok(res) = gvfs_xdr::from_bytes::<RecoverRes>(&bytes) else { continue };
            answered += 1;
            let now = gvfs_netsim::now();
            // Re-enter each dirty file in its owning shard.
            let mut by_shard: Vec<Vec<Fh3>> = vec![Vec::new(); DELEG_SHARDS];
            for &fh in &res.dirty_files {
                by_shard[shard_of(fh)].push(fh);
            }
            for (i, files) in by_shard.iter().enumerate() {
                if !files.is_empty() {
                    let mut table = self.shards[i].deleg.lock();
                    table.recover_client(client, files, now);
                    #[cfg(feature = "trace")]
                    for &fh in files.iter() {
                        self.emit_trace(ProtocolEvent::Regrant { client, fh: fh.fileid() });
                    }
                }
            }
        }
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::ServerRecover { answered: answered as u32 });
        answered
    }

    /// Runs one delegation sweep (speculated closes, LRU eviction); the
    /// session's sweeper actor calls this periodically.
    pub fn sweep(&self) {
        let now = gvfs_netsim::now();
        for shard in &self.shards {
            let actions = shard.deleg.lock().sweep(now);
            for action in actions {
                shard.deleg.lock().begin_recall(action.fh);
                self.perform_recall(&action);
                let mut table = shard.deleg.lock();
                table.end_recall(action.fh);
                table.sweep_done(action.fh, action.client);
            }
        }
    }

    /// Number of files currently tracked across all delegation shards.
    pub fn tracked_files(&self) -> usize {
        self.shards.iter().map(|s| s.deleg.lock().tracked_files()).sum()
    }

    /// Aggregated [`DelegationTable::snapshot`] across all shards, for
    /// diagnostics and the chaos harness's write-exclusion oracle.
    pub fn delegation_snapshot(&self) -> Vec<crate::delegation::FileSnapshot> {
        self.shards.iter().flat_map(|s| s.deleg.lock().snapshot()).collect()
    }

    /// Enables or disables the recall-suppression breakage knob (see
    /// the field docs; chaos-harness self-test only).
    pub fn set_recall_suppressed(&self, suppressed: bool) {
        self.recall_suppressed.store(suppressed, Ordering::SeqCst);
    }

    /// Recall callbacks put on the wire since construction.
    pub fn recalls_sent(&self) -> u64 {
        self.recalls_sent.load(Ordering::SeqCst)
    }

    /// Recalls short-circuited because the target's breaker was open.
    pub fn recalls_short_circuited(&self) -> u64 {
        self.recalls_short_circuited.load(Ordering::SeqCst)
    }

    /// Delegations revoked server-side by lease expiry, across shards.
    pub fn lease_revocations(&self) -> u64 {
        self.shards.iter().map(|s| s.deleg.lock().lease_revocations()).sum()
    }

    /// `RECOVER` multicast rounds performed since construction.
    pub fn recover_rounds(&self) -> u64 {
        self.recover_rounds.load(Ordering::SeqCst)
    }

    fn forward(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        self.nfs.call(NFS_PROGRAM, NFS_V3, procedure, args.to_vec())
    }

    /// Resolves the file handle a REMOVE/RENAME will affect, so its
    /// holders can be invalidated/recalled. Loopback lookup; cheap.
    fn resolve_target(&self, dir: Fh3, name: &str) -> Option<Fh3> {
        let args = gvfs_xdr::to_bytes(&LookupArgs { dir, name: name.to_string() }).ok()?;
        let bytes = self.forward(proc3::LOOKUP, &args).ok()?;
        match gvfs_xdr::from_bytes::<LookupRes>(&bytes).ok()? {
            LookupRes::Ok { object, .. } => Some(object),
            LookupRes::Fail { .. } => None,
        }
    }

    /// Phase one of a recall: put the callback on the wire. Returns
    /// `None` when there is no route or the link rejects the send — the
    /// recall then completes immediately with nothing recovered.
    fn send_recall(&self, action: &RecallAction) -> Option<(SimRpcClient, PendingCall)> {
        if std::env::var_os("GVFS_DEBUG_RECALL").is_some() {
            eprintln!("[{}] recall {:?}", gvfs_netsim::now(), action);
        }
        if self.recall_suppressed.load(Ordering::SeqCst) {
            // The holder is revoked without being told: exactly the bug
            // class the chaos oracles exist to catch.
            return None;
        }
        // Health short-circuit: a recall to a client whose breaker is
        // open would only burn a callback timeout before reaching the
        // same "revoked as unreachable" outcome — take it immediately.
        // A half-open breaker lets the recall through as the probe.
        if self.client_breaker(action.client).state(now_dur()) == BreakerState::Open {
            self.recalls_short_circuited.fetch_add(1, Ordering::SeqCst);
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::RecallShort {
                client: action.client,
                fh: action.fh.fileid(),
            });
            return None;
        }
        let transport = self.callbacks.read().get(&action.client).cloned();
        let Some(transport) = transport else {
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::RecallFail {
                client: action.client,
                fh: action.fh.fileid(),
            });
            return None;
        };
        let kind = match action.kind {
            DelegationKind::Read => CallbackKind::RecallRead,
            DelegationKind::Write => CallbackKind::RecallWrite,
        };
        let args = CallbackArgs { fh: action.fh, kind, requested_offset: action.requested_offset };
        let encoded = gvfs_xdr::to_bytes(&args).unwrap_or_default();
        let sent = match transport.send(
            GVFS_CALLBACK_PROGRAM,
            GVFS_VERSION,
            proc_ext::CALLBACK,
            encoded,
        ) {
            Ok(call) => Some((transport, call)),
            Err(e) => {
                // A partitioned client fails at send time: feed the
                // breaker here so later recalls short-circuit.
                if e.trips_breaker() {
                    self.client_breaker(action.client).on_failure(now_dur());
                }
                #[cfg(feature = "trace")]
                self.emit_trace(ProtocolEvent::RecallFail {
                    client: action.client,
                    fh: action.fh.fileid(),
                });
                None
            }
        };
        if sent.is_some() {
            self.recalls_sent.fetch_add(1, Ordering::SeqCst);
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::RecallSent {
                client: action.client,
                fh: action.fh.fileid(),
                kind: match action.kind {
                    DelegationKind::Read => TraceKind::Read,
                    DelegationKind::Write => TraceKind::Write,
                },
            });
        }
        sent
    }

    /// Phase two of a recall: claim the reply and report the outcome to
    /// the owning shard. An unreachable client is treated as revoked
    /// with nothing recovered (its writes are lost unless it reconciles
    /// after recovery, §4.3.4).
    fn finish_recall(&self, action: &RecallAction, call: Option<(SimRpcClient, PendingCall)>) {
        let (pending_blocks, answered) = match call {
            Some((transport, call)) => {
                let breaker = self.client_breaker(action.client);
                let started = now_dur();
                match transport.wait_pending(call) {
                    Ok(bytes) => {
                        let now = now_dur();
                        breaker.on_success(now, now.saturating_sub(started));
                        let blocks = gvfs_xdr::from_bytes::<CallbackRes>(&bytes)
                            .map(|r| r.pending_blocks)
                            .unwrap_or_default();
                        (blocks, true)
                    }
                    Err(e) => {
                        if e.trips_breaker() {
                            breaker.on_failure(now_dur());
                        }
                        (Vec::new(), false)
                    }
                }
            }
            None => (Vec::new(), false),
        };
        let _ = answered;
        #[cfg(feature = "trace")]
        let pending = pending_blocks.len() as u32;
        let mut table = self.deleg_shard(action.fh).deleg.lock();
        table.recall_done(action.fh, action.client, pending_blocks);
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::RecallDone {
            client: action.client,
            fh: action.fh.fileid(),
            ok: answered,
            pending,
        });
    }

    fn perform_recall(&self, action: &RecallAction) {
        let call = self.send_recall(action);
        self.finish_recall(action, call);
    }

    fn record_invalidations(&self, class: &OpClass, client: u32, removed_targets: &[Fh3]) {
        match class {
            OpClass::Write { fh, .. } | OpClass::SetAttr { fh } => {
                self.inval.record_modification(*fh, client);
            }
            OpClass::DirModify { dir, extra, file, .. } => {
                self.inval.record_modification(*dir, client);
                if let Some((extra_dir, _)) = extra {
                    self.inval.record_modification(*extra_dir, client);
                }
                if let Some(fh) = file {
                    self.inval.record_modification(*fh, client);
                }
                for fh in removed_targets {
                    self.inval.record_modification(*fh, client);
                }
            }
            _ => {}
        }
    }

    /// Delegation-model admission: returns the grant for the reply after
    /// performing any recalls the access requires.
    fn admit_delegation(&self, class: &OpClass, client: u32) -> DelegationGrant {
        let accesses: Vec<(Fh3, bool, Option<u64>)> = match class {
            OpClass::AttrRead { fh } => vec![(*fh, false, None)],
            OpClass::Lookup { dir, .. } | OpClass::ReadDir { dir } => vec![(*dir, false, None)],
            OpClass::Read { fh, offset, .. } => vec![(*fh, false, Some(block_of(*offset)))],
            OpClass::Write { fh, offset } => {
                // A write that is part of a tracked partial write-back
                // bypasses conflict processing.
                if self.deleg_shard(*fh).deleg.lock().note_writeback(*fh, client, block_of(*offset))
                {
                    return DelegationGrant::None;
                }
                vec![(*fh, true, Some(block_of(*offset)))]
            }
            OpClass::SetAttr { fh } => vec![(*fh, true, None)],
            OpClass::DirModify { dir, extra, file, .. } => {
                let mut v = vec![(*dir, true, None)];
                if let Some((extra_dir, _)) = extra {
                    v.push((*extra_dir, true, None));
                }
                if let Some(fh) = file {
                    v.push((*fh, true, None));
                }
                v
            }
            OpClass::Other => return DelegationGrant::None,
        };

        let mut grant = DelegationGrant::None;
        for (i, (fh, write, offset)) in accesses.iter().enumerate() {
            loop {
                let (g, recalls) = {
                    let now = gvfs_netsim::now();
                    let mut table = self.deleg_shard(*fh).deleg.lock();
                    let (g, recalls) = table.access(*fh, client, *write, *offset, now);
                    // Emission happens under the shard lock so the
                    // trace's per-file order is the table's own.
                    #[cfg(feature = "trace")]
                    {
                        for (revoked, rfh) in table.take_revocations() {
                            self.emit_trace(ProtocolEvent::LeaseRevoke {
                                client: revoked,
                                fh: rfh.fileid(),
                            });
                        }
                        if recalls.is_empty() {
                            let kind = match g {
                                DelegationGrant::Read => Some(TraceKind::Read),
                                DelegationGrant::Write => Some(TraceKind::Write),
                                DelegationGrant::NonCacheable => Some(TraceKind::NonCacheable),
                                DelegationGrant::None => None,
                            };
                            if let Some(kind) = kind {
                                self.emit_trace(ProtocolEvent::Grant {
                                    client,
                                    fh: fh.fileid(),
                                    kind,
                                });
                            }
                        }
                    }
                    (g, recalls)
                };
                if recalls.is_empty() {
                    if i == 0 {
                        grant = g;
                    }
                    break;
                }
                // The file is temporarily non-cacheable while the recall
                // round is in flight: no delegation may be granted in the
                // window, or the round's completion would silently revoke
                // it server-side.
                self.deleg_shard(*fh).deleg.lock().begin_recall(*fh);
                self.perform_recalls(recalls);
                self.deleg_shard(*fh).deleg.lock().end_recall(*fh);
                // Re-admit after the recalls completed: the pending
                // write-back (if any) may still cover the block, in
                // which case another targeted recall is issued; the
                // inline flush of the requested block guarantees
                // progress.
                let covered = {
                    let table = self.deleg_shard(*fh).deleg.lock();
                    match (offset, table.pending_writeback(*fh)) {
                        (Some(off), Some(p)) => p.blocks.contains(off),
                        _ => false,
                    }
                };
                if !covered {
                    if i == 0 {
                        grant = DelegationGrant::NonCacheable;
                    }
                    #[cfg(feature = "trace")]
                    self.emit_trace(ProtocolEvent::Grant {
                        client,
                        fh: fh.fileid(),
                        kind: TraceKind::NonCacheable,
                    });
                    break;
                }
            }
        }
        grant
    }

    fn handle_nfs(&self, procedure: u32, args: &[u8], client: u32) -> Result<Vec<u8>, RpcError> {
        let class = classify(procedure, args)?;

        // Resolve handles that REMOVE/RENAME will detach, before the
        // operation destroys the name.
        let mut removed_targets = Vec::new();
        if let OpClass::DirModify { dir, names, extra, .. } = &class {
            if matches!(procedure, proc3::REMOVE | proc3::RENAME) {
                for name in names {
                    if let Some(fh) = self.resolve_target(*dir, name) {
                        removed_targets.push(fh);
                    }
                }
                if let Some((extra_dir, extra_name)) = extra {
                    if let Some(fh) = self.resolve_target(*extra_dir, extra_name) {
                        removed_targets.push(fh);
                    }
                }
            }
        }

        let grant = match self.model {
            ConsistencyModel::DelegationCallback(_) => {
                // Recall delegations on files a REMOVE/RENAME destroys.
                for fh in &removed_targets {
                    let class = OpClass::SetAttr { fh: *fh };
                    let _ = self.admit_delegation(&class, client);
                }
                self.admit_delegation(&class, client)
            }
            _ => DelegationGrant::None,
        };

        let nfs_bytes = self.forward(procedure, args)?;

        // Invalidations are recorded for every caching model, not just
        // polling: a delegation client whose breaker opened degrades to
        // invalidation-polling semantics, and its GETINV probes must see
        // the modifications it missed. Buffers only exist for clients
        // that have actually polled, so under healthy delegation
        // sessions this records into zero buffers.
        if self.model.caches() && class.is_modification() {
            self.record_invalidations(&class, client, &removed_targets);
        }

        Ok(gvfs_xdr::to_bytes(&WrappedReply { grant, nfs_bytes })?)
    }

    fn handle_getinv(&self, args: &[u8], client: u32) -> Result<Vec<u8>, RpcError> {
        let a: GetinvArgs = gvfs_xdr::from_bytes(args).map_err(|_| RpcError::GarbageArgs)?;
        let res: GetinvRes = self.inval.getinv(client, a.last_timestamp);
        Ok(gvfs_xdr::to_bytes(&res)?)
    }
}

impl RpcService for ProxyServer {
    fn program(&self) -> u32 {
        GVFS_PROXY_PROGRAM
    }
    fn version(&self) -> u32 {
        GVFS_VERSION
    }
    fn call(&self, _procedure: u32, _args: &[u8]) -> Result<Vec<u8>, RpcError> {
        // The proxy server authenticates every call; reject
        // credential-less entry.
        Err(RpcError::AuthError)
    }
    fn call_with_cred(
        &self,
        procedure: u32,
        args: &[u8],
        credential: &OpaqueAuth,
    ) -> Result<Vec<u8>, RpcError> {
        let cred = credential.as_gvfs()?;
        self.persisted_clients.lock().insert(cred.client_id);
        match procedure {
            proc_ext::GETINV => self.handle_getinv(args, cred.client_id),
            proc3::NULL => Ok(Vec::new()),
            p if p <= proc3::COMMIT => self.handle_nfs(p, args, cred.client_id),
            p => Err(RpcError::ProcedureUnavailable { program: GVFS_PROXY_PROGRAM, procedure: p }),
        }
    }
}
