//! NFS version 3 protocol types and XDR codecs.
//!
//! A faithful subset of [RFC 1813] sufficient to run the paper's
//! workloads: file handles, `fattr3`/`sattr3` attributes, weak cache
//! consistency (`wcc_data`) and the argument/result structures of the
//! procedures GVFS exercises — `GETATTR`, `SETATTR`, `LOOKUP`, `ACCESS`,
//! `READLINK`, `READ`, `WRITE`, `CREATE`, `MKDIR`, `SYMLINK`, `REMOVE`,
//! `RMDIR`, `RENAME`, `LINK`, `READDIR`, `FSSTAT`, `FSINFO` and `COMMIT`.
//! (`MKNOD`, `READDIRPLUS` and `PATHCONF` are omitted; no workload in the
//! paper uses them.)
//!
//! All structures implement [`gvfs_xdr::Xdr`], so what travels over the
//! simulated links is byte-for-byte valid NFSv3 wire format — transfer
//! sizes in the experiments are therefore realistic.
//!
//! # Examples
//!
//! ```
//! use gvfs_nfs3::{Fh3, LookupArgs, proc3};
//!
//! # fn main() -> Result<(), gvfs_xdr::XdrError> {
//! let args = LookupArgs { dir: Fh3::from_fileid(1), name: "Makefile".into() };
//! let bytes = gvfs_xdr::to_bytes(&args)?;
//! let back: LookupArgs = gvfs_xdr::from_bytes(&bytes)?;
//! assert_eq!(back.name, "Makefile");
//! assert_eq!(proc3::LOOKUP, 3);
//! # Ok(())
//! # }
//! ```
//!
//! [RFC 1813]: https://www.rfc-editor.org/rfc/rfc1813

pub mod mount;

mod procs;
mod status;
mod types;

pub use procs::*;
pub use status::Nfsstat3;
pub use types::{
    Fattr3, Fh3, Ftype3, NfsTime3, PostOpAttr, PostOpFh3, PreOpAttr, Sattr3, TimeHow, WccAttr,
    WccData, FHSIZE3,
};

/// The ONC RPC program number of NFS.
pub const NFS_PROGRAM: u32 = 100003;
/// NFS protocol version implemented by this crate.
pub const NFS_V3: u32 = 3;

/// NFSv3 procedure numbers (RFC 1813 §3).
pub mod proc3 {
    /// Do nothing (ping).
    pub const NULL: u32 = 0;
    /// Get file attributes.
    pub const GETATTR: u32 = 1;
    /// Set file attributes.
    pub const SETATTR: u32 = 2;
    /// Look up a file name.
    pub const LOOKUP: u32 = 3;
    /// Check access permission.
    pub const ACCESS: u32 = 4;
    /// Read a symbolic link.
    pub const READLINK: u32 = 5;
    /// Read from a file.
    pub const READ: u32 = 6;
    /// Write to a file.
    pub const WRITE: u32 = 7;
    /// Create a file.
    pub const CREATE: u32 = 8;
    /// Create a directory.
    pub const MKDIR: u32 = 9;
    /// Create a symbolic link.
    pub const SYMLINK: u32 = 10;
    /// Remove a file.
    pub const REMOVE: u32 = 12;
    /// Remove a directory.
    pub const RMDIR: u32 = 13;
    /// Rename a file or directory.
    pub const RENAME: u32 = 14;
    /// Create a hard link.
    pub const LINK: u32 = 15;
    /// Read a directory.
    pub const READDIR: u32 = 16;
    /// Read a directory with attributes and handles.
    pub const READDIRPLUS: u32 = 17;
    /// Get dynamic filesystem statistics.
    pub const FSSTAT: u32 = 18;
    /// Get static filesystem info.
    pub const FSINFO: u32 = 19;
    /// Commit cached writes to stable storage.
    pub const COMMIT: u32 = 21;

    /// A readable name for a procedure number (diagnostics and reports).
    pub fn name(procedure: u32) -> &'static str {
        match procedure {
            NULL => "NULL",
            GETATTR => "GETATTR",
            SETATTR => "SETATTR",
            LOOKUP => "LOOKUP",
            ACCESS => "ACCESS",
            READLINK => "READLINK",
            READ => "READ",
            WRITE => "WRITE",
            CREATE => "CREATE",
            MKDIR => "MKDIR",
            SYMLINK => "SYMLINK",
            REMOVE => "REMOVE",
            RMDIR => "RMDIR",
            RENAME => "RENAME",
            LINK => "LINK",
            READDIR => "READDIR",
            READDIRPLUS => "READDIRPLUS",
            FSSTAT => "FSSTAT",
            FSINFO => "FSINFO",
            COMMIT => "COMMIT",
            _ => "UNKNOWN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procedure_names() {
        assert_eq!(proc3::name(proc3::GETATTR), "GETATTR");
        assert_eq!(proc3::name(999), "UNKNOWN");
    }

    #[test]
    fn program_constants() {
        assert_eq!(NFS_PROGRAM, 100003);
        assert_eq!(NFS_V3, 3);
    }
}
