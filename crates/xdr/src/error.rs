//! Error type for XDR encoding and decoding.

use std::error::Error;
use std::fmt;

/// An error produced while encoding or decoding XDR data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XdrError {
    /// The input ended before a complete value could be read.
    UnexpectedEof {
        /// Bytes that were needed to finish the read.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// A union or enum discriminant had no corresponding arm.
    InvalidDiscriminant {
        /// The XDR type being decoded.
        type_name: &'static str,
        /// The offending discriminant value.
        value: u32,
    },
    /// Variable-length data exceeded `u32::MAX` or a declared bound.
    LengthOverflow,
    /// A declared length exceeded a protocol-imposed maximum.
    LengthBound {
        /// The XDR type being decoded.
        type_name: &'static str,
        /// The declared length.
        declared: usize,
        /// The maximum the protocol allows.
        max: usize,
    },
    /// Pad bytes were non-zero.
    NonZeroPadding,
    /// A string held invalid UTF-8 (RFC 4506 strings are ASCII by
    /// convention; this implementation requires UTF-8).
    InvalidUtf8,
    /// Input remained after a complete value was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::UnexpectedEof { needed, available } => {
                write!(f, "unexpected end of input: needed {needed} bytes, {available} available")
            }
            XdrError::InvalidDiscriminant { type_name, value } => {
                write!(f, "invalid discriminant {value} for {type_name}")
            }
            XdrError::LengthOverflow => write!(f, "length exceeds XDR limit"),
            XdrError::LengthBound { type_name, declared, max } => {
                write!(f, "declared length {declared} for {type_name} exceeds bound {max}")
            }
            XdrError::NonZeroPadding => write!(f, "pad bytes were not zero"),
            XdrError::InvalidUtf8 => write!(f, "string was not valid utf-8"),
            XdrError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
        }
    }
}

impl Error for XdrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants: Vec<XdrError> = vec![
            XdrError::UnexpectedEof { needed: 4, available: 1 },
            XdrError::InvalidDiscriminant { type_name: "bool", value: 9 },
            XdrError::LengthOverflow,
            XdrError::LengthBound { type_name: "fh", declared: 99, max: 64 },
            XdrError::NonZeroPadding,
            XdrError::InvalidUtf8,
            XdrError::TrailingBytes { remaining: 3 },
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(!s.chars().next().unwrap().is_uppercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XdrError>();
    }
}
