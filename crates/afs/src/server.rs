//! The AFS file server: path-based operations over a [`Vfs`] with
//! callback promises broken on mutation.

use crate::proto::{
    procs, AfsStat, AfsStatus, DataRes, PathArgs, StatusRes, StoreArgs, TwoPathArgs,
    AFS_CALLBACK_PROGRAM, AFS_PROGRAM, AFS_VERSION,
};
use gvfs_netsim::transport::SimRpcClient;
use gvfs_rpc::dispatch::RpcService;
use gvfs_rpc::message::OpaqueAuth;
use gvfs_rpc::RpcError;
use gvfs_vfs::{Timestamp, Vfs, VfsError};
use gvfs_xdr::Xdr;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The AFS server service.
pub struct AfsServer {
    vfs: Arc<Vfs>,
    versions: Mutex<HashMap<u64, u64>>,
    /// Callback promises: fid → clients holding one. The root directory
    /// participates (fid of the parent dir guards name visibility).
    promises: Mutex<HashMap<u64, HashSet<u32>>>,
    callbacks: RwLock<HashMap<u32, SimRpcClient>>,
}

impl std::fmt::Debug for AfsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AfsServer").finish()
    }
}

fn now() -> Timestamp {
    Timestamp::from_nanos(gvfs_netsim::now().as_nanos())
}

impl AfsServer {
    /// Creates a server exporting `vfs`.
    pub fn new(vfs: Arc<Vfs>) -> Arc<Self> {
        Arc::new(AfsServer {
            vfs,
            versions: Mutex::new(HashMap::new()),
            promises: Mutex::new(HashMap::new()),
            callbacks: RwLock::new(HashMap::new()),
        })
    }

    /// Registers a client's callback transport.
    pub fn register_callback(&self, client: u32, transport: SimRpcClient) {
        self.callbacks.write().insert(client, transport);
    }

    /// The exported filesystem.
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    fn status_of(&self, fid: u64) -> Result<AfsStatus, VfsError> {
        let attr = self.vfs.getattr(gvfs_vfs::FileId::from_u64(fid))?;
        let version = *self.versions.lock().get(&fid).unwrap_or(&1);
        Ok(AfsStatus { fid, length: attr.size, version })
    }

    fn promise(&self, fid: u64, client: u32) {
        self.promises.lock().entry(fid).or_default().insert(client);
    }

    /// Breaks all other clients' promises on `fid` with callback RPCs
    /// (in client-id order, for deterministic simulations).
    fn break_promises(&self, fid: u64, mutator: u32) {
        let mut holders: Vec<u32> = {
            let mut promises = self.promises.lock();
            match promises.get_mut(&fid) {
                Some(set) => {
                    let holders = set.iter().copied().filter(|&c| c != mutator).collect();
                    set.retain(|&c| c == mutator);
                    holders
                }
                None => Vec::new(),
            }
        };
        holders.sort_unstable();
        for client in holders {
            let transport = self.callbacks.read().get(&client).cloned();
            if let Some(t) = transport {
                let args = gvfs_xdr::to_bytes(&fid).unwrap_or_default();
                let _ = t.call(AFS_CALLBACK_PROGRAM, AFS_VERSION, procs::BREAK, args);
            }
        }
    }

    fn parent_fid(&self, path: &str) -> Result<(gvfs_vfs::FileId, String), VfsError> {
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        let Some((leaf, dirs)) = parts.split_last() else { return Err(VfsError::InvalidArgument) };
        let mut cur = self.vfs.root();
        for part in dirs {
            cur = self.vfs.lookup(cur, part)?;
        }
        Ok((cur, (*leaf).to_string()))
    }

    fn lookup(&self, args: PathArgs, client: u32) -> StatusRes {
        match self.vfs.lookup_path(&args.path) {
            Ok(id) => {
                let fid = id.as_u64();
                self.promise(fid, client);
                // Also promise on the parent so name changes are pushed.
                if let Ok((dir, _)) = self.parent_fid(&args.path) {
                    self.promise(dir.as_u64(), client);
                }
                StatusRes { stat: AfsStat::Ok, status: self.status_of(fid).ok() }
            }
            Err(VfsError::NotFound) => {
                if let Ok((dir, _)) = self.parent_fid(&args.path) {
                    self.promise(dir.as_u64(), client);
                }
                StatusRes { stat: AfsStat::NoEnt, status: None }
            }
            Err(_) => StatusRes { stat: AfsStat::Fault, status: None },
        }
    }

    fn fetch_status(&self, fid: u64, client: u32) -> StatusRes {
        match self.status_of(fid) {
            Ok(status) => {
                self.promise(fid, client);
                StatusRes { stat: AfsStat::Ok, status: Some(status) }
            }
            Err(_) => StatusRes { stat: AfsStat::NoEnt, status: None },
        }
    }

    fn fetch_data(&self, fid: u64, client: u32) -> DataRes {
        let id = gvfs_vfs::FileId::from_u64(fid);
        match self.vfs.getattr(id).and_then(|a| self.vfs.read(id, 0, a.size as u32).map(|d| d.0)) {
            Ok(data) => {
                self.promise(fid, client);
                DataRes { stat: AfsStat::Ok, status: self.status_of(fid).ok(), data }
            }
            Err(_) => DataRes { stat: AfsStat::NoEnt, status: None, data: Vec::new() },
        }
    }

    fn store(&self, args: StoreArgs, client: u32) -> StatusRes {
        let (dir, leaf) = match self.parent_fid(&args.path) {
            Ok(v) => v,
            Err(_) => return StatusRes { stat: AfsStat::Fault, status: None },
        };
        let id = match self.vfs.lookup(dir, &leaf) {
            Ok(id) => id,
            Err(VfsError::NotFound) => match self.vfs.create(dir, &leaf, 0o644, now()) {
                Ok(id) => {
                    self.break_promises(dir.as_u64(), client);
                    id
                }
                Err(_) => return StatusRes { stat: AfsStat::Fault, status: None },
            },
            Err(_) => return StatusRes { stat: AfsStat::Fault, status: None },
        };
        if self
            .vfs
            .setattr(id, gvfs_vfs::SetAttr { size: Some(0), ..Default::default() }, now())
            .and_then(|_| self.vfs.write(id, 0, &args.data, now()))
            .is_err()
        {
            return StatusRes { stat: AfsStat::Fault, status: None };
        }
        let fid = id.as_u64();
        *self.versions.lock().entry(fid).or_insert(1) += 1;
        self.break_promises(fid, client);
        self.promise(fid, client);
        StatusRes { stat: AfsStat::Ok, status: self.status_of(fid).ok() }
    }

    fn link(&self, args: TwoPathArgs, client: u32) -> StatusRes {
        let from = match self.vfs.lookup_path(&args.from) {
            Ok(id) => id,
            Err(_) => return StatusRes { stat: AfsStat::NoEnt, status: None },
        };
        let (dir, leaf) = match self.parent_fid(&args.to) {
            Ok(v) => v,
            Err(_) => return StatusRes { stat: AfsStat::Fault, status: None },
        };
        match self.vfs.link(from, dir, &leaf, now()) {
            Ok(()) => {
                self.break_promises(dir.as_u64(), client);
                StatusRes { stat: AfsStat::Ok, status: self.status_of(from.as_u64()).ok() }
            }
            Err(VfsError::Exists) => StatusRes { stat: AfsStat::Exist, status: None },
            Err(_) => StatusRes { stat: AfsStat::Fault, status: None },
        }
    }

    fn remove(&self, args: PathArgs, client: u32) -> StatusRes {
        let (dir, leaf) = match self.parent_fid(&args.path) {
            Ok(v) => v,
            Err(_) => return StatusRes { stat: AfsStat::Fault, status: None },
        };
        let fid = self.vfs.lookup(dir, &leaf).map(|id| id.as_u64());
        match self.vfs.remove(dir, &leaf, now()) {
            Ok(()) => {
                self.break_promises(dir.as_u64(), client);
                if let Ok(fid) = fid {
                    self.break_promises(fid, client);
                }
                StatusRes { stat: AfsStat::Ok, status: None }
            }
            Err(VfsError::NotFound) => StatusRes { stat: AfsStat::NoEnt, status: None },
            Err(_) => StatusRes { stat: AfsStat::Fault, status: None },
        }
    }
}

fn args<T: Xdr>(bytes: &[u8]) -> Result<T, RpcError> {
    gvfs_xdr::from_bytes(bytes).map_err(|_| RpcError::GarbageArgs)
}

fn reply<T: Xdr>(v: &T) -> Result<Vec<u8>, RpcError> {
    Ok(gvfs_xdr::to_bytes(v)?)
}

impl RpcService for AfsServer {
    fn program(&self) -> u32 {
        AFS_PROGRAM
    }
    fn version(&self) -> u32 {
        AFS_VERSION
    }
    fn call(&self, _procedure: u32, _args: &[u8]) -> Result<Vec<u8>, RpcError> {
        Err(RpcError::AuthError)
    }
    fn call_with_cred(
        &self,
        procedure: u32,
        payload: &[u8],
        credential: &OpaqueAuth,
    ) -> Result<Vec<u8>, RpcError> {
        let client = credential.as_gvfs()?.client_id;
        match procedure {
            procs::LOOKUP => reply(&self.lookup(args(payload)?, client)),
            procs::FETCH_STATUS => reply(&self.fetch_status(args::<u64>(payload)?, client)),
            procs::FETCH_DATA => reply(&self.fetch_data(args::<u64>(payload)?, client)),
            procs::STORE => reply(&self.store(args(payload)?, client)),
            procs::LINK => reply(&self.link(args(payload)?, client)),
            procs::REMOVE => reply(&self.remove(args(payload)?, client)),
            p => Err(RpcError::ProcedureUnavailable { program: AFS_PROGRAM, procedure: p }),
        }
    }
}
