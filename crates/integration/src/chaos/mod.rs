//! `gvfs-chaos`: the deterministic chaos harness.
//!
//! One `u64` seed expands into a fault plan ([`plan`]), a scenario
//! driver runs a randomized multi-client workload under it on the
//! virtual-time simulator ([`driver`]), per-model oracles judge the
//! recorded history ([`oracle`]), and a shrinker bisects any violating
//! plan to a minimal reproducer ([`shrink`]). Determinism is end to
//! end: the same seed reproduces the identical event trace, verdict,
//! and [`driver::ChaosReport::trace_hash`] on every run.

pub mod driver;
pub mod history;
pub mod oracle;
pub mod plan;
pub mod scenario;
pub mod shrink;

pub use driver::{run_scenario, run_with_events, ChaosReport, ModelKind, ScenarioConfig};
pub use history::{Event, History, Observation};
pub use oracle::{Violation, ViolationKind};
pub use plan::{compile_fault_plans, generate_events, FaultEvent};
pub use scenario::{
    run_crash_restart, run_disk_corruption, run_partition_heal, run_peer_partition,
    CrashRestartReport, DiskCorruptionReport, PartitionHealReport, PeerPartitionReport,
};
pub use shrink::{format_reproducer, shrink_failure, Shrunk};
