//! The `rpc_msg` wire structures of RFC 5531.
//!
//! A message is a transaction id (`xid`) plus either a [`CallBody`] or a
//! [`ReplyBody`]. Procedure arguments and results are carried as raw,
//! already-XDR-encoded bytes trailing the header, exactly as on the wire.

use crate::RpcError;
use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};

/// The fixed RPC protocol version.
pub const RPC_VERSION: u32 = 2;

/// `AUTH_NONE` flavor number.
pub const AUTH_NONE: u32 = 0;
/// `AUTH_SYS` (a.k.a. `AUTH_UNIX`) flavor number.
pub const AUTH_SYS: u32 = 1;
/// GVFS session credential flavor. Proxy clients encapsulate a unique
/// session key, client id and callback listening port in every request
/// (paper §4.3.2/§4.3.3) so the proxy server can authenticate the session
/// and knows how to connect back for callbacks.
pub const AUTH_GVFS_SESSION: u32 = 0x4756_4653; // "GVFS"

/// Maximum accepted size for an auth body, per RFC 5531.
pub const MAX_AUTH_BODY: usize = 400;

/// An authenticator: a flavor number and opaque body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpaqueAuth {
    flavor: u32,
    body: Vec<u8>,
}

impl OpaqueAuth {
    /// The `AUTH_NONE` authenticator.
    pub fn none() -> Self {
        OpaqueAuth { flavor: AUTH_NONE, body: Vec::new() }
    }

    /// Builds an `AUTH_SYS` credential.
    pub fn sys(cred: &AuthSys) -> Result<Self, XdrError> {
        Ok(OpaqueAuth { flavor: AUTH_SYS, body: gvfs_xdr::to_bytes(cred)? })
    }

    /// Builds a GVFS session credential.
    pub fn gvfs(cred: &GvfsCred) -> Result<Self, XdrError> {
        Ok(OpaqueAuth { flavor: AUTH_GVFS_SESSION, body: gvfs_xdr::to_bytes(cred)? })
    }

    /// The flavor number.
    pub fn flavor(&self) -> u32 {
        self.flavor
    }

    /// The opaque body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Decodes the body as an `AUTH_SYS` credential.
    ///
    /// # Errors
    ///
    /// Returns an error if the flavor is not `AUTH_SYS` or the body is
    /// malformed.
    pub fn as_sys(&self) -> Result<AuthSys, RpcError> {
        if self.flavor != AUTH_SYS {
            return Err(RpcError::AuthError);
        }
        Ok(gvfs_xdr::from_bytes(&self.body)?)
    }

    /// Decodes the body as a GVFS session credential.
    ///
    /// # Errors
    ///
    /// Returns an error if the flavor is not [`AUTH_GVFS_SESSION`] or the
    /// body is malformed.
    pub fn as_gvfs(&self) -> Result<GvfsCred, RpcError> {
        if self.flavor != AUTH_GVFS_SESSION {
            return Err(RpcError::AuthError);
        }
        Ok(gvfs_xdr::from_bytes(&self.body)?)
    }
}

impl Xdr for OpaqueAuth {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(self.flavor);
        enc.put_opaque(&self.body)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let flavor = dec.get_u32()?;
        let body = dec.get_opaque_bounded("OpaqueAuth", MAX_AUTH_BODY)?;
        Ok(OpaqueAuth { flavor, body })
    }
}

/// An `AUTH_SYS` credential body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuthSys {
    /// Arbitrary caller-chosen stamp.
    pub stamp: u32,
    /// Caller machine name.
    pub machine_name: String,
    /// Effective user id.
    pub uid: u32,
    /// Effective group id.
    pub gid: u32,
    /// Supplementary group ids (at most 16).
    pub gids: Vec<u32>,
}

impl Xdr for AuthSys {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(self.stamp);
        enc.put_string(&self.machine_name)?;
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        self.gids.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(AuthSys {
            stamp: dec.get_u32()?,
            machine_name: dec.get_string()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            gids: Vec::<u32>::decode(dec)?,
        })
    }
}

/// The GVFS session credential carried in every proxy-client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GvfsCred {
    /// Unique session key identifying the GVFS session.
    pub session_key: u64,
    /// Identifier of the proxy client within the session.
    pub client_id: u32,
    /// Port on which the proxy client listens for server callbacks.
    pub callback_port: u32,
}

impl Xdr for GvfsCred {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u64(self.session_key);
        enc.put_u32(self.client_id);
        enc.put_u32(self.callback_port);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(GvfsCred {
            session_key: dec.get_u64()?,
            client_id: dec.get_u32()?,
            callback_port: dec.get_u32()?,
        })
    }
}

/// The body of an RPC call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallBody {
    rpc_version: u32,
    program: u32,
    version: u32,
    procedure: u32,
    credential: OpaqueAuth,
    verifier: OpaqueAuth,
    args: Vec<u8>,
}

impl CallBody {
    /// Builds a call with the standard RPC version and empty verifier.
    pub fn new(
        program: u32,
        version: u32,
        procedure: u32,
        credential: OpaqueAuth,
        args: Vec<u8>,
    ) -> Self {
        CallBody {
            rpc_version: RPC_VERSION,
            program,
            version,
            procedure,
            credential,
            verifier: OpaqueAuth::none(),
            args,
        }
    }

    /// The RPC protocol version (2 for well-formed calls).
    pub fn rpc_version(&self) -> u32 {
        self.rpc_version
    }
    /// The remote program number.
    pub fn program(&self) -> u32 {
        self.program
    }
    /// The remote program version.
    pub fn version(&self) -> u32 {
        self.version
    }
    /// The procedure number within the program.
    pub fn procedure(&self) -> u32 {
        self.procedure
    }
    /// The caller's credential.
    pub fn credential(&self) -> &OpaqueAuth {
        &self.credential
    }
    /// The caller's verifier.
    pub fn verifier(&self) -> &OpaqueAuth {
        &self.verifier
    }
    /// The raw XDR-encoded procedure arguments.
    pub fn args(&self) -> &[u8] {
        &self.args
    }
}

impl Xdr for CallBody {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(self.rpc_version);
        enc.put_u32(self.program);
        enc.put_u32(self.version);
        enc.put_u32(self.procedure);
        self.credential.encode(enc)?;
        self.verifier.encode(enc)?;
        // Args are the raw remainder of the message; no length prefix.
        enc.put_opaque_fixed_unpadded(&self.args);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let rpc_version = dec.get_u32()?;
        let program = dec.get_u32()?;
        let version = dec.get_u32()?;
        let procedure = dec.get_u32()?;
        let credential = OpaqueAuth::decode(dec)?;
        let verifier = OpaqueAuth::decode(dec)?;
        let args = dec.get_opaque_fixed(dec.remaining())?;
        Ok(CallBody { rpc_version, program, version, procedure, credential, verifier, args })
    }
}

/// Why a call was rejected outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectedReply {
    /// The server only speaks RPC versions in `low..=high`.
    RpcMismatch {
        /// Lowest supported RPC version.
        low: u32,
        /// Highest supported RPC version.
        high: u32,
    },
    /// Authentication failed, with the `auth_stat` code.
    AuthError(u32),
}

impl Xdr for RejectedReply {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            RejectedReply::RpcMismatch { low, high } => {
                enc.put_u32(0);
                enc.put_u32(*low);
                enc.put_u32(*high);
            }
            RejectedReply::AuthError(stat) => {
                enc.put_u32(1);
                enc.put_u32(*stat);
            }
        }
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(RejectedReply::RpcMismatch { low: dec.get_u32()?, high: dec.get_u32()? }),
            1 => Ok(RejectedReply::AuthError(dec.get_u32()?)),
            value => Err(XdrError::InvalidDiscriminant { type_name: "RejectedReply", value }),
        }
    }
}

/// The status of an accepted call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceptStat {
    /// The call succeeded; the raw XDR-encoded results follow.
    Success(Vec<u8>),
    /// The program is not exported by this server.
    ProgramUnavailable,
    /// The program is exported, but not at this version.
    ProgramMismatch {
        /// Lowest supported program version.
        low: u32,
        /// Highest supported program version.
        high: u32,
    },
    /// The procedure number is undefined.
    ProcedureUnavailable,
    /// The arguments could not be decoded.
    GarbageArgs,
    /// The server failed internally.
    SystemError,
}

impl Xdr for AcceptStat {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            AcceptStat::Success(results) => {
                enc.put_u32(0);
                enc.put_opaque_fixed_unpadded(results);
            }
            AcceptStat::ProgramUnavailable => enc.put_u32(1),
            AcceptStat::ProgramMismatch { low, high } => {
                enc.put_u32(2);
                enc.put_u32(*low);
                enc.put_u32(*high);
            }
            AcceptStat::ProcedureUnavailable => enc.put_u32(3),
            AcceptStat::GarbageArgs => enc.put_u32(4),
            AcceptStat::SystemError => enc.put_u32(5),
        }
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(AcceptStat::Success(dec.get_opaque_fixed(dec.remaining())?)),
            1 => Ok(AcceptStat::ProgramUnavailable),
            2 => Ok(AcceptStat::ProgramMismatch { low: dec.get_u32()?, high: dec.get_u32()? }),
            3 => Ok(AcceptStat::ProcedureUnavailable),
            4 => Ok(AcceptStat::GarbageArgs),
            5 => Ok(AcceptStat::SystemError),
            value => Err(XdrError::InvalidDiscriminant { type_name: "AcceptStat", value }),
        }
    }
}

/// The body of an RPC reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    /// The call was accepted (though it may still have failed).
    Accepted {
        /// Server verifier.
        verifier: OpaqueAuth,
        /// Outcome of the accepted call.
        stat: AcceptStat,
    },
    /// The call was rejected.
    Denied(RejectedReply),
}

impl ReplyBody {
    /// Builds a successful reply carrying `results`.
    pub fn success(results: Vec<u8>) -> Self {
        ReplyBody::Accepted { verifier: OpaqueAuth::none(), stat: AcceptStat::Success(results) }
    }

    /// Builds the reply corresponding to a dispatch error.
    pub fn from_error(err: &RpcError) -> Self {
        match err {
            RpcError::ProgramUnavailable { .. } => ReplyBody::Accepted {
                verifier: OpaqueAuth::none(),
                stat: AcceptStat::ProgramUnavailable,
            },
            RpcError::ProgramMismatch { low, high, .. } => ReplyBody::Accepted {
                verifier: OpaqueAuth::none(),
                stat: AcceptStat::ProgramMismatch { low: *low, high: *high },
            },
            RpcError::ProcedureUnavailable { .. } => ReplyBody::Accepted {
                verifier: OpaqueAuth::none(),
                stat: AcceptStat::ProcedureUnavailable,
            },
            RpcError::GarbageArgs | RpcError::Xdr(_) => {
                ReplyBody::Accepted { verifier: OpaqueAuth::none(), stat: AcceptStat::GarbageArgs }
            }
            RpcError::AuthError => ReplyBody::Denied(RejectedReply::AuthError(1)),
            _ => {
                ReplyBody::Accepted { verifier: OpaqueAuth::none(), stat: AcceptStat::SystemError }
            }
        }
    }

    /// Returns the raw results of a successful reply.
    ///
    /// # Errors
    ///
    /// Maps every non-success reply to the matching [`RpcError`].
    pub fn results(&self) -> Result<&[u8], RpcError> {
        match self {
            ReplyBody::Accepted { stat: AcceptStat::Success(results), .. } => Ok(results),
            ReplyBody::Accepted { stat: AcceptStat::ProgramUnavailable, .. } => {
                Err(RpcError::ProgramUnavailable { program: 0 })
            }
            ReplyBody::Accepted { stat: AcceptStat::ProgramMismatch { low, high }, .. } => {
                Err(RpcError::ProgramMismatch { program: 0, low: *low, high: *high })
            }
            ReplyBody::Accepted { stat: AcceptStat::ProcedureUnavailable, .. } => {
                Err(RpcError::ProcedureUnavailable { program: 0, procedure: 0 })
            }
            ReplyBody::Accepted { stat: AcceptStat::GarbageArgs, .. } => Err(RpcError::GarbageArgs),
            ReplyBody::Accepted { stat: AcceptStat::SystemError, .. } => {
                Err(RpcError::SystemError { detail: "remote system error".into() })
            }
            ReplyBody::Denied(_) => Err(RpcError::AuthError),
        }
    }
}

impl Xdr for ReplyBody {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            ReplyBody::Accepted { verifier, stat } => {
                enc.put_u32(0);
                verifier.encode(enc)?;
                stat.encode(enc)
            }
            ReplyBody::Denied(rej) => {
                enc.put_u32(1);
                rej.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(ReplyBody::Accepted {
                verifier: OpaqueAuth::decode(dec)?,
                stat: AcceptStat::decode(dec)?,
            }),
            1 => Ok(ReplyBody::Denied(RejectedReply::decode(dec)?)),
            value => Err(XdrError::InvalidDiscriminant { type_name: "ReplyBody", value }),
        }
    }
}

/// A complete RPC message: transaction id plus call or reply body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcMessage {
    /// Transaction id matching calls with replies (and deduplicating
    /// retransmissions).
    pub xid: u32,
    /// The message body.
    pub body: MessageBody,
}

/// Either side of an RPC exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageBody {
    /// A call from client to server.
    Call(CallBody),
    /// A reply from server to client.
    Reply(ReplyBody),
}

impl Xdr for RpcMessage {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(self.xid);
        match &self.body {
            MessageBody::Call(c) => {
                enc.put_u32(0);
                c.encode(enc)
            }
            MessageBody::Reply(r) => {
                enc.put_u32(1);
                r.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let xid = dec.get_u32()?;
        let body = match dec.get_u32()? {
            0 => MessageBody::Call(CallBody::decode(dec)?),
            1 => MessageBody::Reply(ReplyBody::decode(dec)?),
            value => return Err(XdrError::InvalidDiscriminant { type_name: "RpcMessage", value }),
        };
        Ok(RpcMessage { xid, body })
    }
}

/// Extension for appending raw pre-encoded payload bytes.
trait EncoderExt {
    fn put_opaque_fixed_unpadded(&mut self, data: &[u8]);
}

impl EncoderExt for Encoder {
    fn put_opaque_fixed_unpadded(&mut self, data: &[u8]) {
        // Payloads are themselves XDR streams, hence already word-aligned;
        // put_opaque_fixed would not add padding, but spell it out.
        debug_assert_eq!(data.len() % 4, 0, "rpc payload must be word-aligned");
        self.put_opaque_fixed(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &RpcMessage) -> RpcMessage {
        gvfs_xdr::from_bytes(&gvfs_xdr::to_bytes(msg).unwrap()).unwrap()
    }

    #[test]
    fn call_roundtrip() {
        let msg = RpcMessage {
            xid: 42,
            body: MessageBody::Call(CallBody::new(
                100003,
                3,
                1,
                OpaqueAuth::none(),
                vec![0, 0, 0, 9],
            )),
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn reply_success_roundtrip() {
        let msg =
            RpcMessage { xid: 7, body: MessageBody::Reply(ReplyBody::success(vec![1, 2, 3, 4])) };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn reply_error_variants_roundtrip() {
        for stat in [
            AcceptStat::ProgramUnavailable,
            AcceptStat::ProgramMismatch { low: 2, high: 4 },
            AcceptStat::ProcedureUnavailable,
            AcceptStat::GarbageArgs,
            AcceptStat::SystemError,
        ] {
            let msg = RpcMessage {
                xid: 1,
                body: MessageBody::Reply(ReplyBody::Accepted {
                    verifier: OpaqueAuth::none(),
                    stat,
                }),
            };
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn denied_roundtrip() {
        for rej in [RejectedReply::RpcMismatch { low: 2, high: 2 }, RejectedReply::AuthError(5)] {
            let msg = RpcMessage { xid: 1, body: MessageBody::Reply(ReplyBody::Denied(rej)) };
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn auth_sys_roundtrip_through_opaque() {
        let cred = AuthSys {
            stamp: 1,
            machine_name: "vc1".into(),
            uid: 1000,
            gid: 100,
            gids: vec![100, 101],
        };
        let auth = OpaqueAuth::sys(&cred).unwrap();
        assert_eq!(auth.as_sys().unwrap(), cred);
    }

    #[test]
    fn gvfs_cred_roundtrip_through_opaque() {
        let cred = GvfsCred { session_key: 0xdead_beef, client_id: 3, callback_port: 9999 };
        let auth = OpaqueAuth::gvfs(&cred).unwrap();
        assert_eq!(auth.as_gvfs().unwrap(), cred);
    }

    #[test]
    fn wrong_flavor_decode_is_auth_error() {
        let auth = OpaqueAuth::none();
        assert_eq!(auth.as_gvfs().unwrap_err(), RpcError::AuthError);
        assert_eq!(auth.as_sys().unwrap_err(), RpcError::AuthError);
    }

    #[test]
    fn oversized_auth_body_is_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(AUTH_SYS);
        enc.put_opaque(&vec![0u8; MAX_AUTH_BODY + 1]).unwrap();
        let err = gvfs_xdr::from_bytes::<OpaqueAuth>(&enc.into_bytes()).unwrap_err();
        assert!(matches!(err, XdrError::LengthBound { .. }));
    }

    #[test]
    fn results_maps_errors() {
        let reply = ReplyBody::from_error(&RpcError::GarbageArgs);
        assert_eq!(reply.results().unwrap_err(), RpcError::GarbageArgs);
        let ok = ReplyBody::success(vec![]);
        assert_eq!(ok.results().unwrap(), &[] as &[u8]);
    }

    #[test]
    fn from_error_covers_transport_errors_as_system() {
        let reply = ReplyBody::from_error(&RpcError::Timeout);
        assert!(matches!(reply, ReplyBody::Accepted { stat: AcceptStat::SystemError, .. }));
    }
}
