//! The GVFS proxy server.
//!
//! Sits beside the kernel NFS server. For every proxy-program call it
//! forwards the native NFSv3 procedure over loopback, and around that
//! forwarding implements the session's consistency model:
//!
//! * **invalidation polling** — appends modified file handles to the
//!   per-client invalidation buffers and answers `GETINV`;
//! * **delegation/callback** — consults the [`DelegationTable`], issues
//!   recall callbacks to proxy clients *before* serving conflicting
//!   requests, and piggybacks grants on replies;
//! * tracks the participating-client list persistently, so a restarted
//!   proxy server can multicast recovery callbacks (§4.3.4).
//!
//! # Concurrency
//!
//! The proxy is multithreaded (§4.3.2): while one handler waits out a
//! WAN callback, others keep serving. Consistency state is therefore
//! decomposed rather than held under one global mutex:
//!
//! * delegation state is **sharded by file handle** — each shard owns a
//!   [`DelegationTable`] behind its own lock, so handlers touching
//!   different files never contend;
//! * invalidation buffers are **per client**
//!   ([`ConcurrentInvalidationTracker`]): appends and `GETINV` drains
//!   for different clients proceed in parallel.
//!
//! Recall fan-out and the `RECOVER` multicast use the RPC channel's
//! send/wait split ([`SimRpcClient::send`]) behind a **bounded fan-out
//! window** (a semaphore over in-flight `PendingCall`s): up to the
//! window's worth of callbacks overlap on the wire, so a round to N
//! clients costs ~N/window WAN round trips instead of N serialized
//! ones, while a 10k-holder round can no longer bury the callback
//! network under 10k simultaneous calls. Breaker-open targets are
//! short-circuited before a slot is taken, so unreachable peers never
//! consume window capacity. No lock is ever held across the wire.

use crate::delegation::{DelegationKind, DelegationTable, RecallAction};
use crate::invalidation::{ConcurrentInvalidationTracker, InvalScaleCounters};
use crate::model::ConsistencyModel;
use crate::protocol::{
    change_of, proc_ext, CallbackArgs, CallbackKind, CallbackRes, DelegationGrant, GetinvArgs,
    GetinvRes, PeerAdvert, RecoverRes, WrappedReply, GVFS_CALLBACK_PROGRAM, GVFS_PROXY_PROGRAM,
    GVFS_VERSION, MAX_PEER_HOLDERS,
};
use crate::proxy::{block_of, classify, OpClass};
#[cfg(feature = "trace")]
use crate::trace::{ProtocolEvent, TraceBuffer, TraceKind};
use gvfs_netsim::transport::SimRpcClient;
use gvfs_netsim::{ActorHandle, SimTime};
use gvfs_nfs3::{proc3, Fh3, LookupArgs, LookupRes, NFS_PROGRAM, NFS_V3};
use gvfs_rpc::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use gvfs_rpc::channel::PendingCall;
use gvfs_rpc::dispatch::RpcService;
use gvfs_rpc::message::OpaqueAuth;
use gvfs_rpc::RpcError;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Virtual time as a `Duration` since the simulation epoch (the
/// breaker's clock representation).
fn now_dur() -> Duration {
    gvfs_netsim::now().saturating_since(SimTime::ZERO)
}

/// Number of delegation shards. Shard choice hashes the file handle, so
/// all state for one file lives in exactly one shard; the per-shard
/// lock is held only for table operations, never across the wire.
const DELEG_SHARDS: usize = 8;

/// One delegation shard: the files whose handles hash here.
#[derive(Debug)]
struct DelegShard {
    deleg: Mutex<DelegationTable>,
}

/// Deterministic shard index for a file handle (fixed-key hasher, so
/// simulations reproduce across runs and processes).
fn shard_of(fh: Fh3) -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    fh.hash(&mut hasher);
    (hasher.finish() as usize) % DELEG_SHARDS
}

/// A recall callback that has been put on the wire but not yet
/// acknowledged (phase one of a fan-out round).
struct RecallInFlight {
    action: RecallAction,
    call: (SimRpcClient, PendingCall),
}

/// Default bound on concurrently in-flight recall/`RECOVER` callbacks.
const DEFAULT_FANOUT_WINDOW: usize = 64;

/// The mutable half of [`FanoutSemaphore`], behind its lock.
struct FanoutState {
    capacity: usize,
    available: usize,
    /// Handlers parked waiting for a slot, FIFO.
    waiters: VecDeque<ActorHandle>,
}

/// A deterministic counting semaphore bounding how many recall or
/// `RECOVER` callbacks may be in flight at once (the fan-out window).
///
/// The `fanout` lock is terminal: no other lock is acquired and no RPC
/// is sent while it is held; waiters park strictly *after* dropping the
/// guard (the unpark permit is banked if the release wins the race).
struct FanoutSemaphore {
    fanout: Mutex<FanoutState>,
    /// High-water mark of slots in use, for the scale bench.
    in_flight_hwm: AtomicU64,
}

impl FanoutSemaphore {
    fn new(capacity: usize) -> Self {
        FanoutSemaphore {
            fanout: Mutex::new(FanoutState {
                capacity: capacity.max(1),
                available: capacity.max(1),
                waiters: VecDeque::new(),
            }),
            in_flight_hwm: AtomicU64::new(0),
        }
    }

    /// Takes a slot if one is free.
    fn try_acquire(&self) -> bool {
        let in_flight = {
            let mut st = self.fanout.lock();
            if st.available == 0 {
                return false;
            }
            st.available -= 1;
            (st.capacity - st.available) as u64
        };
        self.in_flight_hwm.fetch_max(in_flight, Ordering::Relaxed);
        true
    }

    /// Takes a slot, parking until one frees up.
    fn acquire(&self) {
        loop {
            {
                let mut st = self.fanout.lock();
                if st.available > 0 {
                    st.available -= 1;
                    let in_flight = (st.capacity - st.available) as u64;
                    drop(st);
                    self.in_flight_hwm.fetch_max(in_flight, Ordering::Relaxed);
                    return;
                }
                st.waiters.push_back(gvfs_netsim::current_actor());
            }
            gvfs_netsim::park();
        }
    }

    /// Returns a slot and wakes the oldest waiter, if any.
    fn release(&self) {
        let waiter = {
            let mut st = self.fanout.lock();
            st.available = (st.available + 1).min(st.capacity);
            st.waiters.pop_front()
        };
        if let Some(w) = waiter {
            w.unpark();
        }
    }

    /// Resizes the window (bench/ablation knob; call while no round is
    /// in flight).
    fn set_capacity(&self, capacity: usize) {
        let waiter = {
            let mut st = self.fanout.lock();
            let capacity = capacity.max(1);
            let in_use = st.capacity - st.available;
            st.capacity = capacity;
            st.available = capacity.saturating_sub(in_use);
            if st.available > 0 {
                st.waiters.pop_front()
            } else {
                None
            }
        };
        if let Some(w) = waiter {
            w.unpark();
        }
    }

    fn capacity(&self) -> usize {
        self.fanout.lock().capacity
    }

    fn hwm(&self) -> u64 {
        self.in_flight_hwm.load(Ordering::Relaxed)
    }
}

/// One client's WAN-health record: the breaker plus the sweep epoch of
/// its last use, for idle eviction.
struct HealthEntry {
    breaker: Arc<CircuitBreaker>,
    epoch: u64,
}

/// The server-side scale counters exported by
/// [`ProxyServer::scale_stats`]: fan-out window pressure, per-client
/// state cardinality and memory, and the invalidation tracker's
/// stripe-lock/batching counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerScaleStats {
    /// Recall callbacks put on the wire.
    pub recalls_sent: u64,
    /// Recalls short-circuited (breaker open).
    pub recalls_short_circuited: u64,
    /// Configured fan-out window.
    pub fanout_window: usize,
    /// High-water mark of concurrently in-flight fan-out callbacks.
    pub fanout_in_flight_hwm: u64,
    /// Live per-client health breakers.
    pub health_entries: usize,
    /// Health breakers dropped by idle eviction.
    pub health_evicted: u64,
    /// Files tracked across all delegation shards.
    pub deleg_files: usize,
    /// Sharer entries across all delegation shards.
    pub deleg_sharers: usize,
    /// Rough delegation-table heap footprint in bytes.
    pub deleg_approx_bytes: usize,
    /// Live invalidation client buffers.
    pub inval_clients: usize,
    /// Rough invalidation-buffer heap footprint in bytes.
    pub inval_approx_bytes: usize,
    /// The invalidation tracker's stripe-lock and batching counters.
    pub inval: InvalScaleCounters,
}

/// The proxy server service. Register it (wrapped in an `Arc`) with a
/// [`gvfs_netsim::transport::ServerNode`]; proxy clients call it on
/// [`GVFS_PROXY_PROGRAM`].
pub struct ProxyServer {
    model: ConsistencyModel,
    nfs: SimRpcClient,
    /// Delegation state, sharded by file handle.
    shards: Vec<DelegShard>,
    /// Per-client invalidation buffers (internally locked).
    inval: ConcurrentInvalidationTracker,
    /// Callback transports per client id, registered by the session.
    callbacks: RwLock<HashMap<u32, SimRpcClient>>,
    /// The client list is "always stored directly on disk" (§4.3.4):
    /// it survives crashes.
    persisted_clients: Mutex<HashSet<u32>>,
    /// Breakage knob for the chaos harness: when set, recall callbacks
    /// are silently discarded instead of sent, so holders are revoked
    /// without ever learning about it. A correct run never sets this;
    /// the chaos oracles must catch the resulting stale reads.
    recall_suppressed: AtomicBool,
    /// Recall callbacks actually put on the wire.
    recalls_sent: AtomicU64,
    /// Recalls short-circuited because the target's breaker was open.
    recalls_short_circuited: AtomicU64,
    /// `RECOVER` multicast rounds performed after a restart.
    recover_rounds: AtomicU64,
    /// Per-client WAN health, fed by recall outcomes: a recall to a
    /// breaker-open client is short-circuited (the holder is revoked as
    /// unreachable immediately) instead of burning a callback timeout
    /// per conflicting access. Guards are scoped to the map lookup and
    /// never held across the wire or another lock. Entries are stamped
    /// with the sweep epoch of their last use and evicted when idle.
    health: Mutex<HashMap<u32, HealthEntry>>,
    /// Bounded window over in-flight recall/`RECOVER` callbacks.
    fanout: FanoutSemaphore,
    /// Idle-eviction epoch, advanced once per [`ProxyServer::maintain`].
    sweep_epoch: AtomicU64,
    /// Whole epochs a client may stay idle before its breaker and
    /// invalidation buffer are evicted.
    idle_epochs: AtomicU64,
    /// Idle health entries dropped by epoch eviction.
    health_evicted: AtomicU64,
    /// When set, replies to NFS calls piggyback the client's pending
    /// invalidation drain (see [`WrappedReply::inv`]). Off by default:
    /// the scale bench enables it; the figure harnesses keep the
    /// paper's pure-polling message pattern.
    piggyback_inval: AtomicBool,
    /// When set, successful READ replies advertise which live clients
    /// hold clean copies of the file ([`WrappedReply::peers`]) and the
    /// tracker's peer map is maintained. Off by default — the wire
    /// stays byte-identical to the star topology.
    peer_read: AtomicBool,
    /// Protocol-event sink for spec-conformance replay, installed once
    /// by the session. Grant/recall/revocation events are recorded
    /// under the owning shard's lock so the per-file subsequence is
    /// linearized exactly as the table decided it.
    #[cfg(feature = "trace")]
    trace: std::sync::OnceLock<Arc<TraceBuffer>>,
}

impl std::fmt::Debug for ProxyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyServer").field("model", &self.model).finish()
    }
}

impl ProxyServer {
    /// Creates a proxy server forwarding to the kernel NFS server via
    /// `nfs` (a loopback transport), applying `model`.
    pub fn new(model: ConsistencyModel, nfs: SimRpcClient) -> Arc<Self> {
        let mut deleg_config = match model {
            ConsistencyModel::DelegationCallback(c) => c,
            _ => crate::model::DelegationConfig::default(),
        };
        // The open-file budget is global; each shard polices its slice.
        deleg_config.max_tracked_files = (deleg_config.max_tracked_files / DELEG_SHARDS).max(1);
        let shards = (0..DELEG_SHARDS)
            .map(|_| DelegShard { deleg: Mutex::new(DelegationTable::new(deleg_config)) })
            .collect();
        Arc::new(ProxyServer {
            model,
            nfs,
            shards,
            inval: ConcurrentInvalidationTracker::new(4096),
            callbacks: RwLock::new(HashMap::new()),
            persisted_clients: Mutex::new(HashSet::new()),
            recall_suppressed: AtomicBool::new(false),
            recalls_sent: AtomicU64::new(0),
            recalls_short_circuited: AtomicU64::new(0),
            recover_rounds: AtomicU64::new(0),
            health: Mutex::new(HashMap::new()),
            fanout: FanoutSemaphore::new(DEFAULT_FANOUT_WINDOW),
            sweep_epoch: AtomicU64::new(0),
            idle_epochs: AtomicU64::new(8),
            health_evicted: AtomicU64::new(0),
            piggyback_inval: AtomicBool::new(false),
            peer_read: AtomicBool::new(false),
            #[cfg(feature = "trace")]
            trace: std::sync::OnceLock::new(),
        })
    }

    /// Installs the shared protocol-trace buffer (first call wins) and
    /// turns on per-event lease-revocation recording in every shard.
    #[cfg(feature = "trace")]
    pub fn install_trace(&self, buf: Arc<TraceBuffer>) {
        let _ = self.trace.set(buf);
        for shard in &self.shards {
            shard.deleg.lock().set_revocation_log(true);
        }
    }

    #[cfg(feature = "trace")]
    fn emit_trace(&self, ev: ProtocolEvent) {
        if let Some(buf) = self.trace.get() {
            buf.record(ev);
        }
    }

    /// The health breaker for one client, created closed on first use
    /// and re-stamped with the current sweep epoch (so idle eviction
    /// only reaps clients no recall has touched for whole epochs).
    fn client_breaker(&self, client: u32) -> Arc<CircuitBreaker> {
        let epoch = self.sweep_epoch.load(Ordering::Relaxed);
        let mut health = self.health.lock();
        let entry = health.entry(client).or_insert_with(|| HealthEntry {
            breaker: Arc::new(CircuitBreaker::new(BreakerConfig::default())),
            epoch,
        });
        entry.epoch = epoch;
        Arc::clone(&entry.breaker)
    }

    /// The shard owning `fh`'s delegation state.
    fn deleg_shard(&self, fh: Fh3) -> &DelegShard {
        &self.shards[shard_of(fh)]
    }

    /// Performs a batch of recalls concurrently through the bounded
    /// fan-out window: up to a window's worth of callbacks overlap on
    /// the wire (§4.3.2), completions are claimed oldest-first as the
    /// window slides, and short-circuited recalls (suppressed targets,
    /// open breakers, missing routes) complete immediately without
    /// consuming a slot.
    fn perform_recalls(&self, actions: Vec<RecallAction>) {
        let mut in_flight: VecDeque<RecallInFlight> = VecDeque::new();
        for action in actions {
            if self.recall_short_circuits(&action) {
                self.finish_recall(&action, None);
                continue;
            }
            self.acquire_fanout_slot(&mut in_flight);
            match self.send_recall(&action) {
                Some(call) => in_flight.push_back(RecallInFlight { action, call }),
                None => {
                    // Send failed at the link: the slot was held only
                    // for the (local, instantaneous) send attempt.
                    self.fanout.release();
                    self.finish_recall(&action, None);
                }
            }
        }
        while let Some(f) = in_flight.pop_front() {
            self.finish_recall(&f.action, Some(f.call));
            self.fanout.release();
        }
    }

    /// Takes one fan-out window slot. While the window is full this
    /// round retires its *own* oldest in-flight recall first (a round
    /// larger than the window can therefore never deadlock on slots it
    /// holds itself), and parks only when another handler owns the
    /// missing slot.
    fn acquire_fanout_slot(&self, in_flight: &mut VecDeque<RecallInFlight>) {
        loop {
            if self.fanout.try_acquire() {
                return;
            }
            if let Some(f) = in_flight.pop_front() {
                self.finish_recall(&f.action, Some(f.call));
                self.fanout.release();
                // The freed slot may have gone to a parked waiter;
                // retry rather than assume it is ours.
                continue;
            }
            self.fanout.acquire();
            return;
        }
    }

    /// Resizes the recall/`RECOVER` fan-out window (bench and ablation
    /// knob; a window of 1 reproduces fully serialized fan-out).
    pub fn set_fanout_window(&self, window: usize) {
        self.fanout.set_capacity(window);
    }

    /// The fan-out window currently configured.
    pub fn fanout_window(&self) -> usize {
        self.fanout.capacity()
    }

    /// High-water mark of concurrently in-flight fan-out callbacks.
    pub fn fanout_hwm(&self) -> u64 {
        self.fanout.hwm()
    }

    /// Overrides the invalidation-buffer capacity (ablation knob).
    pub fn set_invalidation_capacity(&self, capacity: usize) {
        self.inval.reset(capacity);
    }

    /// Registers the callback transport for a proxy client (done by the
    /// middleware when the session is established; in the real system
    /// the port arrives in each request's credential).
    pub fn register_callback(&self, client: u32, transport: SimRpcClient) {
        self.callbacks.write().insert(client, transport);
    }

    /// The consistency model in effect.
    pub fn model(&self) -> ConsistencyModel {
        self.model
    }

    /// Simulates a crash: volatile state (invalidation buffers,
    /// timestamps, delegation table) is lost; the persisted client list
    /// survives.
    pub fn crash(&self) {
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::ServerCrash);
        self.inval.reset(4096);
        for shard in &self.shards {
            let mut table = shard.deleg.lock();
            let config = *table.config();
            *table = DelegationTable::new(config);
            #[cfg(feature = "trace")]
            if self.trace.get().is_some() {
                table.set_revocation_log(true);
            }
        }
    }

    /// Recovery after restart (§4.3.4): multicasts a cache-wide
    /// `RECOVER` callback to every known client and rebuilds the
    /// delegation tables from their dirty-file lists. Incoming requests
    /// are implicitly blocked for the duration (the grace period) by the
    /// callback round.
    ///
    /// Returns the number of clients that answered.
    pub fn recover(&self) -> usize {
        if !matches!(self.model, ConsistencyModel::DelegationCallback(_)) {
            return 0;
        }
        self.recover_rounds.fetch_add(1, Ordering::SeqCst);
        let mut clients: Vec<u32> = self.persisted_clients.lock().iter().copied().collect();
        clients.sort_unstable();
        // "A single multicasted callback to the clients" (§4.3.4),
        // bounded by the fan-out window: up to a window's worth of
        // `RECOVER` callbacks overlap on the wire at once, so the grace
        // period is ~ceil(N/window) WAN round trips while a 10k-client
        // restart cannot flood the callback network.
        let mut in_flight: VecDeque<(u32, SimRpcClient, PendingCall)> = VecDeque::new();
        let mut answered = 0;
        for client in clients {
            let Some(transport) = self.callbacks.read().get(&client).cloned() else { continue };
            loop {
                if self.fanout.try_acquire() {
                    break;
                }
                if let Some((c, t, call)) = in_flight.pop_front() {
                    answered += usize::from(self.finish_recover(c, &t, call));
                    self.fanout.release();
                    continue;
                }
                self.fanout.acquire();
                break;
            }
            match transport.send(GVFS_CALLBACK_PROGRAM, GVFS_VERSION, proc_ext::RECOVER, Vec::new())
            {
                Ok(call) => in_flight.push_back((client, transport, call)),
                Err(_) => self.fanout.release(),
            }
        }
        while let Some((c, t, call)) = in_flight.pop_front() {
            answered += usize::from(self.finish_recover(c, &t, call));
            self.fanout.release();
        }
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::ServerRecover { answered: answered as u32 });
        answered
    }

    /// Claims one `RECOVER` reply and re-enters the client's dirty
    /// files in their owning shards. Returns whether the client
    /// answered.
    fn finish_recover(&self, client: u32, transport: &SimRpcClient, call: PendingCall) -> bool {
        let Ok(bytes) = transport.wait_pending(call) else { return false };
        let Ok(res) = gvfs_xdr::from_bytes::<RecoverRes>(&bytes) else { return false };
        let now = gvfs_netsim::now();
        let mut by_shard: Vec<Vec<Fh3>> = vec![Vec::new(); DELEG_SHARDS];
        for &fh in &res.dirty_files {
            by_shard[shard_of(fh)].push(fh);
        }
        for (i, files) in by_shard.iter().enumerate() {
            if !files.is_empty() {
                let mut table = self.shards[i].deleg.lock();
                table.recover_client(client, files, now);
                #[cfg(feature = "trace")]
                for &fh in files.iter() {
                    self.emit_trace(ProtocolEvent::Regrant { client, fh: fh.fileid() });
                }
            }
        }
        true
    }

    /// Runs one delegation sweep (speculated closes, LRU eviction); the
    /// session's sweeper actor calls this periodically. Each sweep also
    /// advances the idle-eviction epoch ([`ProxyServer::maintain`]).
    pub fn sweep(&self) {
        let now = gvfs_netsim::now();
        for shard in &self.shards {
            let actions = shard.deleg.lock().sweep(now);
            for action in actions {
                shard.deleg.lock().begin_recall(action.fh);
                self.perform_recall(&action);
                let mut table = shard.deleg.lock();
                table.end_recall(action.fh);
                table.sweep_done(action.fh, action.client);
            }
        }
        self.maintain();
    }

    /// Advances the idle-eviction epoch by one and drops per-client
    /// state — invalidation buffers and health breakers — belonging to
    /// clients idle for more than the configured number of whole
    /// epochs. Delegation shard entries are bounded separately by the
    /// table's own expiry + LRU sweep. Returns `(buffers, breakers)`
    /// evicted.
    ///
    /// Eviction is protocol-invisible beyond one extra full
    /// invalidation: an evicted poller re-bootstraps through the
    /// first-contact path, and an evicted breaker is recreated closed
    /// on the next recall to that client.
    pub fn maintain(&self) -> (usize, usize) {
        let idle = self.idle_epochs.load(Ordering::Relaxed);
        let epoch = self.sweep_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let buffers = self.inval.advance_epoch(idle);
        let breakers = {
            let mut health = self.health.lock();
            let before = health.len();
            health.retain(|_, e| epoch.saturating_sub(e.epoch) <= idle);
            before - health.len()
        };
        self.health_evicted.fetch_add(breakers as u64, Ordering::Relaxed);
        (buffers, breakers)
    }

    /// Sets how many whole sweep epochs a client may stay idle before
    /// its per-client state is evicted.
    pub fn set_idle_epochs(&self, epochs: u64) {
        self.idle_epochs.store(epochs, Ordering::Relaxed);
    }

    /// Enables or disables piggybacking pending invalidation drains on
    /// NFS replies (see [`WrappedReply::inv`]).
    pub fn set_piggyback_inval(&self, enabled: bool) {
        self.piggyback_inval.store(enabled, Ordering::SeqCst);
    }

    /// Enables or disables peer sourcing: READ replies advertise live
    /// holders and the peer map tracks/condemns clean copies.
    pub fn set_peer_read(&self, enabled: bool) {
        self.peer_read.store(enabled, Ordering::SeqCst);
    }

    /// Chaos self-test knob (`--break-peerread`): suppresses peer-map
    /// de-advertising on modification and recall, so a stale advert
    /// survives for the oracle to convict. Never set on a correct run.
    pub fn set_peer_deadvertise_suppressed(&self, suppressed: bool) {
        self.inval.set_deadvertise_suppressed(suppressed);
    }

    /// Clients currently advertised as holding a clean copy of `fh`
    /// (diagnostics and integration tests).
    pub fn peer_holders(&self, fh: Fh3) -> Vec<u32> {
        self.inval.collect_holders(fh, u32::MAX, usize::MAX)
    }

    /// Number of files currently tracked across all delegation shards.
    pub fn tracked_files(&self) -> usize {
        self.shards.iter().map(|s| s.deleg.lock().tracked_files()).sum()
    }

    /// Aggregated [`DelegationTable::snapshot`] across all shards, for
    /// diagnostics and the chaos harness's write-exclusion oracle.
    pub fn delegation_snapshot(&self) -> Vec<crate::delegation::FileSnapshot> {
        self.shards.iter().flat_map(|s| s.deleg.lock().snapshot()).collect()
    }

    /// Enables or disables the recall-suppression breakage knob (see
    /// the field docs; chaos-harness self-test only).
    pub fn set_recall_suppressed(&self, suppressed: bool) {
        self.recall_suppressed.store(suppressed, Ordering::SeqCst);
    }

    /// Recall callbacks put on the wire since construction.
    pub fn recalls_sent(&self) -> u64 {
        self.recalls_sent.load(Ordering::SeqCst)
    }

    /// Recalls short-circuited because the target's breaker was open.
    pub fn recalls_short_circuited(&self) -> u64 {
        self.recalls_short_circuited.load(Ordering::SeqCst)
    }

    /// Delegations revoked server-side by lease expiry, across shards.
    pub fn lease_revocations(&self) -> u64 {
        self.shards.iter().map(|s| s.deleg.lock().lease_revocations()).sum()
    }

    /// `RECOVER` multicast rounds performed since construction.
    pub fn recover_rounds(&self) -> u64 {
        self.recover_rounds.load(Ordering::SeqCst)
    }

    /// One coherent dump of the server's scale counters, for the bench
    /// harness's `server` JSON block.
    pub fn scale_stats(&self) -> ServerScaleStats {
        let (deleg_files, deleg_sharers, deleg_bytes) =
            self.shards.iter().fold((0, 0, 0), |(files, sharers, bytes), shard| {
                let (f, s, b) = shard.deleg.lock().scale_footprint();
                (files + f, sharers + s, bytes + b)
            });
        ServerScaleStats {
            recalls_sent: self.recalls_sent.load(Ordering::SeqCst),
            recalls_short_circuited: self.recalls_short_circuited.load(Ordering::SeqCst),
            fanout_window: self.fanout.capacity(),
            fanout_in_flight_hwm: self.fanout.hwm(),
            health_entries: self.health.lock().len(),
            health_evicted: self.health_evicted.load(Ordering::Relaxed),
            deleg_files,
            deleg_sharers,
            deleg_approx_bytes: deleg_bytes,
            inval_clients: self.inval.client_count(),
            inval_approx_bytes: self.inval.approx_bytes(),
            inval: self.inval.scale_counters(),
        }
    }

    fn forward(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        self.nfs.call(NFS_PROGRAM, NFS_V3, procedure, args.to_vec())
    }

    /// Resolves the file handle a REMOVE/RENAME will affect, so its
    /// holders can be invalidated/recalled. Loopback lookup; cheap.
    fn resolve_target(&self, dir: Fh3, name: &str) -> Option<Fh3> {
        let args = gvfs_xdr::to_bytes(&LookupArgs { dir, name: name.to_string() }).ok()?;
        let bytes = self.forward(proc3::LOOKUP, &args).ok()?;
        match gvfs_xdr::from_bytes::<LookupRes>(&bytes).ok()? {
            LookupRes::Ok { object, .. } => Some(object),
            LookupRes::Fail { .. } => None,
        }
    }

    /// Pre-wire short-circuit check, run *before* a fan-out window slot
    /// is taken so suppressed targets and breaker-open peers never
    /// consume window capacity.
    fn recall_short_circuits(&self, action: &RecallAction) -> bool {
        if std::env::var_os("GVFS_DEBUG_RECALL").is_some() {
            eprintln!("[{}] recall {:?}", gvfs_netsim::now(), action);
        }
        if self.recall_suppressed.load(Ordering::SeqCst) {
            // The holder is revoked without being told: exactly the bug
            // class the chaos oracles exist to catch.
            return true;
        }
        // Health short-circuit: a recall to a client whose breaker is
        // open would only burn a callback timeout before reaching the
        // same "revoked as unreachable" outcome — take it immediately.
        // A half-open breaker lets the recall through as the probe.
        if self.client_breaker(action.client).state(now_dur()) == BreakerState::Open {
            self.recalls_short_circuited.fetch_add(1, Ordering::SeqCst);
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::RecallShort {
                client: action.client,
                fh: action.fh.fileid(),
            });
            return true;
        }
        false
    }

    /// Phase one of a recall: put the callback on the wire. Returns
    /// `None` when there is no route or the link rejects the send — the
    /// recall then completes immediately with nothing recovered.
    fn send_recall(&self, action: &RecallAction) -> Option<(SimRpcClient, PendingCall)> {
        let transport = self.callbacks.read().get(&action.client).cloned();
        let Some(transport) = transport else {
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::RecallFail {
                client: action.client,
                fh: action.fh.fileid(),
            });
            return None;
        };
        let kind = match action.kind {
            DelegationKind::Read => CallbackKind::RecallRead,
            DelegationKind::Write => CallbackKind::RecallWrite,
        };
        let args = CallbackArgs { fh: action.fh, kind, requested_offset: action.requested_offset };
        let encoded = gvfs_xdr::to_bytes(&args).unwrap_or_default();
        let sent = match transport.send(
            GVFS_CALLBACK_PROGRAM,
            GVFS_VERSION,
            proc_ext::CALLBACK,
            encoded,
        ) {
            Ok(call) => Some((transport, call)),
            Err(e) => {
                // A partitioned client fails at send time: feed the
                // breaker here so later recalls short-circuit.
                if e.trips_breaker() {
                    self.client_breaker(action.client).on_failure(now_dur());
                }
                #[cfg(feature = "trace")]
                self.emit_trace(ProtocolEvent::RecallFail {
                    client: action.client,
                    fh: action.fh.fileid(),
                });
                None
            }
        };
        if sent.is_some() {
            self.recalls_sent.fetch_add(1, Ordering::SeqCst);
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::RecallSent {
                client: action.client,
                fh: action.fh.fileid(),
                kind: match action.kind {
                    DelegationKind::Read => TraceKind::Read,
                    DelegationKind::Write => TraceKind::Write,
                },
            });
        }
        sent
    }

    /// Phase two of a recall: claim the reply and report the outcome to
    /// the owning shard. An unreachable client is treated as revoked
    /// with nothing recovered (its writes are lost unless it reconciles
    /// after recovery, §4.3.4).
    fn finish_recall(&self, action: &RecallAction, call: Option<(SimRpcClient, PendingCall)>) {
        let (pending_blocks, answered) = match call {
            Some((transport, call)) => {
                let breaker = self.client_breaker(action.client);
                let started = now_dur();
                match transport.wait_pending(call) {
                    Ok(bytes) => {
                        let now = now_dur();
                        breaker.on_success(now, now.saturating_sub(started));
                        let blocks = gvfs_xdr::from_bytes::<CallbackRes>(&bytes)
                            .map(|r| r.pending_blocks)
                            .unwrap_or_default();
                        (blocks, true)
                    }
                    Err(e) => {
                        if e.trips_breaker() {
                            breaker.on_failure(now_dur());
                        }
                        (Vec::new(), false)
                    }
                }
            }
            None => (Vec::new(), false),
        };
        let _ = answered;
        #[cfg(feature = "trace")]
        let pending = pending_blocks.len() as u32;
        let mut table = self.deleg_shard(action.fh).deleg.lock();
        table.recall_done(action.fh, action.client, pending_blocks);
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::RecallDone {
            client: action.client,
            fh: action.fh.fileid(),
            ok: answered,
            pending,
        });
    }

    fn perform_recall(&self, action: &RecallAction) {
        if self.recall_short_circuits(action) {
            self.finish_recall(action, None);
            return;
        }
        let call = self.send_recall(action);
        self.finish_recall(action, call);
    }

    fn record_invalidations(&self, class: &OpClass, client: u32, removed_targets: &[Fh3]) {
        match class {
            OpClass::Write { fh, .. } | OpClass::SetAttr { fh } => {
                self.inval.record_modification(*fh, client);
            }
            OpClass::DirModify { dir, extra, file, .. } => {
                self.inval.record_modification(*dir, client);
                if let Some((extra_dir, _)) = extra {
                    self.inval.record_modification(*extra_dir, client);
                }
                if let Some(fh) = file {
                    self.inval.record_modification(*fh, client);
                }
                for fh in removed_targets {
                    self.inval.record_modification(*fh, client);
                }
            }
            _ => {}
        }
    }

    /// Delegation-model admission: returns the grant for the reply after
    /// performing any recalls the access requires.
    fn admit_delegation(&self, class: &OpClass, client: u32) -> DelegationGrant {
        let accesses: Vec<(Fh3, bool, Option<u64>)> = match class {
            OpClass::AttrRead { fh } => vec![(*fh, false, None)],
            OpClass::Lookup { dir, .. } | OpClass::ReadDir { dir } => vec![(*dir, false, None)],
            OpClass::Read { fh, offset, .. } => vec![(*fh, false, Some(block_of(*offset)))],
            OpClass::Write { fh, offset } => {
                // A write that is part of a tracked partial write-back
                // bypasses conflict processing.
                if self.deleg_shard(*fh).deleg.lock().note_writeback(*fh, client, block_of(*offset))
                {
                    return DelegationGrant::None;
                }
                vec![(*fh, true, Some(block_of(*offset)))]
            }
            OpClass::SetAttr { fh } => vec![(*fh, true, None)],
            OpClass::DirModify { dir, extra, file, .. } => {
                let mut v = vec![(*dir, true, None)];
                if let Some((extra_dir, _)) = extra {
                    v.push((*extra_dir, true, None));
                }
                if let Some(fh) = file {
                    v.push((*fh, true, None));
                }
                v
            }
            OpClass::Other => return DelegationGrant::None,
        };

        let mut grant = DelegationGrant::None;
        for (i, (fh, write, offset)) in accesses.iter().enumerate() {
            loop {
                let (g, recalls) = {
                    let now = gvfs_netsim::now();
                    let mut table = self.deleg_shard(*fh).deleg.lock();
                    let (g, recalls) = table.access(*fh, client, *write, *offset, now);
                    // Emission happens under the shard lock so the
                    // trace's per-file order is the table's own.
                    #[cfg(feature = "trace")]
                    {
                        for (revoked, rfh) in table.take_revocations() {
                            self.emit_trace(ProtocolEvent::LeaseRevoke {
                                client: revoked,
                                fh: rfh.fileid(),
                            });
                        }
                        if recalls.is_empty() {
                            let kind = match g {
                                DelegationGrant::Read => Some(TraceKind::Read),
                                DelegationGrant::Write => Some(TraceKind::Write),
                                DelegationGrant::NonCacheable => Some(TraceKind::NonCacheable),
                                DelegationGrant::None => None,
                            };
                            if let Some(kind) = kind {
                                self.emit_trace(ProtocolEvent::Grant {
                                    client,
                                    fh: fh.fileid(),
                                    kind,
                                });
                            }
                        }
                    }
                    (g, recalls)
                };
                if recalls.is_empty() {
                    if i == 0 {
                        grant = g;
                    }
                    break;
                }
                // The file is temporarily non-cacheable while the recall
                // round is in flight: no delegation may be granted in the
                // window, or the round's completion would silently revoke
                // it server-side.
                self.deleg_shard(*fh).deleg.lock().begin_recall(*fh);
                // Condemn peer copies before the recalls go out: once
                // the conflicting writer proceeds, no reader may be
                // handed an advert for the pre-recall version.
                if self.peer_read.load(Ordering::SeqCst) {
                    self.inval.condemn(*fh);
                }
                self.perform_recalls(recalls);
                self.deleg_shard(*fh).deleg.lock().end_recall(*fh);
                // Re-admit after the recalls completed: the pending
                // write-back (if any) may still cover the block, in
                // which case another targeted recall is issued; the
                // inline flush of the requested block guarantees
                // progress.
                let covered = {
                    let table = self.deleg_shard(*fh).deleg.lock();
                    match (offset, table.pending_writeback(*fh)) {
                        (Some(off), Some(p)) => p.blocks.contains(off),
                        _ => false,
                    }
                };
                if !covered {
                    if i == 0 {
                        grant = DelegationGrant::NonCacheable;
                    }
                    #[cfg(feature = "trace")]
                    self.emit_trace(ProtocolEvent::Grant {
                        client,
                        fh: fh.fileid(),
                        kind: TraceKind::NonCacheable,
                    });
                    break;
                }
            }
        }
        grant
    }

    fn handle_nfs(&self, procedure: u32, args: &[u8], client: u32) -> Result<Vec<u8>, RpcError> {
        let class = classify(procedure, args)?;

        // Resolve handles that REMOVE/RENAME will detach, before the
        // operation destroys the name.
        let mut removed_targets = Vec::new();
        if let OpClass::DirModify { dir, names, extra, .. } = &class {
            if matches!(procedure, proc3::REMOVE | proc3::RENAME) {
                for name in names {
                    if let Some(fh) = self.resolve_target(*dir, name) {
                        removed_targets.push(fh);
                    }
                }
                if let Some((extra_dir, extra_name)) = extra {
                    if let Some(fh) = self.resolve_target(*extra_dir, extra_name) {
                        removed_targets.push(fh);
                    }
                }
            }
        }

        let grant = match self.model {
            ConsistencyModel::DelegationCallback(_) => {
                // Recall delegations on files a REMOVE/RENAME destroys.
                for fh in &removed_targets {
                    let class = OpClass::SetAttr { fh: *fh };
                    let _ = self.admit_delegation(&class, client);
                }
                self.admit_delegation(&class, client)
            }
            _ => DelegationGrant::None,
        };

        let nfs_bytes = self.forward(procedure, args)?;

        // Invalidations are recorded for every caching model, not just
        // polling: a delegation client whose breaker opened degrades to
        // invalidation-polling semantics, and its GETINV probes must see
        // the modifications it missed. Buffers only exist for clients
        // that have actually polled, so under healthy delegation
        // sessions this records into zero buffers.
        if self.model.caches() && class.is_modification() {
            self.record_invalidations(&class, client, &removed_targets);
        }

        // Steady-state polls cost zero extra messages when enabled: the
        // drain the client's next GETINV would return rides back on
        // this reply. `try_drain` never creates buffers, so clients
        // that never polled (pure delegation sessions) pay nothing.
        let inv = if self.piggyback_inval.load(Ordering::SeqCst) && self.model.caches() {
            self.inval.try_drain(client)
        } else {
            None
        };

        // Peer sourcing: a successful READ proves this client now
        // holds a clean copy — record it, and advertise the other live
        // holders so the client's next cold block can be sourced over
        // the LAN instead of this WAN link.
        let peers = if self.peer_read.load(Ordering::SeqCst) {
            self.peer_advert(&class, client, &nfs_bytes)
        } else {
            None
        };
        // The advert rides as the second trailing optional, so it
        // needs a drain in front of it; synthesize an empty one
        // anchored at the client's sync point when nothing is pending.
        let inv = match (&peers, inv) {
            (Some(_), None) => Some(self.inval.empty_drain(client)),
            (_, inv) => inv,
        };

        Ok(gvfs_xdr::to_bytes(&WrappedReply { grant, inv, peers, nfs_bytes })?)
    }

    /// Builds the peer advert for a successful READ reply: collects the
    /// live holders of the file (excluding the requester), attests the
    /// reply's own post-op attributes, and records the requester as a
    /// new holder. Returns `None` for non-READ operations, failed
    /// reads, or when no other client holds a clean copy.
    fn peer_advert(&self, class: &OpClass, client: u32, nfs_bytes: &[u8]) -> Option<PeerAdvert> {
        let OpClass::Read { fh, .. } = class else { return None };
        let res = gvfs_xdr::from_bytes::<gvfs_nfs3::ReadRes>(nfs_bytes).ok()?;
        let gvfs_nfs3::ReadRes::Ok { file_attributes, .. } = res else { return None };
        let attrs = file_attributes?;
        let holders = self.inval.collect_holders(*fh, client, MAX_PEER_HOLDERS);
        self.inval.advertise(client, *fh);
        if holders.is_empty() {
            return None;
        }
        Some(PeerAdvert { fh: *fh, change: change_of(attrs.mtime), len: attrs.size, holders })
    }

    fn handle_getinv(&self, args: &[u8], client: u32) -> Result<Vec<u8>, RpcError> {
        let a: GetinvArgs = gvfs_xdr::from_bytes(args).map_err(|_| RpcError::GarbageArgs)?;
        let res: GetinvRes = self.inval.getinv(client, a.last_timestamp);
        Ok(gvfs_xdr::to_bytes(&res)?)
    }
}

impl RpcService for ProxyServer {
    fn program(&self) -> u32 {
        GVFS_PROXY_PROGRAM
    }
    fn version(&self) -> u32 {
        GVFS_VERSION
    }
    fn call(&self, _procedure: u32, _args: &[u8]) -> Result<Vec<u8>, RpcError> {
        // The proxy server authenticates every call; reject
        // credential-less entry.
        Err(RpcError::AuthError)
    }
    fn call_with_cred(
        &self,
        procedure: u32,
        args: &[u8],
        credential: &OpaqueAuth,
    ) -> Result<Vec<u8>, RpcError> {
        let cred = credential.as_gvfs()?;
        self.persisted_clients.lock().insert(cred.client_id);
        match procedure {
            proc_ext::GETINV => self.handle_getinv(args, cred.client_id),
            proc3::NULL => Ok(Vec::new()),
            p if p <= proc3::COMMIT => self.handle_nfs(p, args, cred.client_id),
            p => Err(RpcError::ProcedureUnavailable { program: GVFS_PROXY_PROGRAM, procedure: p }),
        }
    }
}
