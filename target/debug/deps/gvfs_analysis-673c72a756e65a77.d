/root/repo/target/debug/deps/gvfs_analysis-673c72a756e65a77.d: crates/analysis/src/main.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

/root/repo/target/debug/deps/gvfs_analysis-673c72a756e65a77: crates/analysis/src/main.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

crates/analysis/src/main.rs:
crates/analysis/src/lexer.rs:
crates/analysis/src/lint.rs:
crates/analysis/src/model.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analysis
