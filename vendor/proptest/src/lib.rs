//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of proptest the test suite uses: the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_oneof!`]
//! macros, [`Strategy`] with `prop_map` and `boxed`, [`any`], integer
//! ranges, tuples, [`Just`], `collection::vec`, `option::of`, and a
//! string-pattern strategy limited to `.{min,max}` repetition.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its deterministic seed
//!   and case index instead of a minimized input;
//! * **deterministic generation** — the RNG is seeded from the test
//!   name, so a failure reproduces on every run and across machines;
//! * string "regex" strategies only honor `.{a,b}` shapes (the only
//!   shapes in this repo), anything else falls back to 0..=16 chars.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ generator used for all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from a label (the test function name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, expanded with SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h ^ 0x9e37_79b9_7f4a_7c15;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, span)`; `span` must be non-zero.
    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % span
    }

    /// Uniform usize in an inclusive range.
    fn usize_between(&mut self, min: usize, max: usize) -> usize {
        if min >= max {
            return min;
        }
        min + self.below((max - min + 1) as u128) as usize
    }
}

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result alias for property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (see
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u128) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-range strategy for `T` (returned by [`any`]).
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any::<_>()")
    }
}

/// The canonical strategy for `T`'s full value range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.below(span)) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $ty;
                }
                (start as u128).wrapping_add(rng.below(span)) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Parses the `.{min,max}` repetition shapes used in this repo's
/// string strategies.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const ALPHABET: &[char] = &[
            'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Q', '0', '7', '9', ' ', '_', '-', '/', '.',
            '"', '\\', '\n', 'é', 'ß', 'λ', '日', '☃', '𝕏',
        ];
        let (min, max) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = rng.usize_between(min, max);
        (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len() as u128) as usize]).collect()
    }
}

/// A count or range of counts for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_between(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (~25% `None`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` or a value drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written explicitly at the call
/// site, matching upstream style) that runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property '{}' failed at deterministic case {}/{}:\n{}",
                        stringify!($name),
                        case,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Like `assert!` but fails the property case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Like `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Toy {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in 5i32..=7) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((5..=7).contains(&w));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map(t in prop_oneof![
            (0u8..10).prop_map(Toy::A),
            Just(Toy::B),
        ]) {
            match t {
                Toy::A(n) => prop_assert!(n < 10),
                Toy::B => {}
            }
        }

        #[test]
        fn string_pattern_length(s in ".{2,5}") {
            let n = s.chars().count();
            prop_assert!((2..=5).contains(&n), "len {} outside 2..=5", n);
        }

        #[test]
        fn options_mix(o in crate::option::of(any::<u32>())) {
            let _ = o;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exact_size_vec() {
        let strat = crate::collection::vec(any::<u8>(), 8usize);
        let mut rng = crate::TestRng::deterministic("exact");
        for _ in 0..10 {
            assert_eq!(crate::Strategy::generate(&strat, &mut rng).len(), 8);
        }
    }
}
