//! The persistent content-addressed block store.
//!
//! On-disk layout over one [`VirtualDisk`] (one per proxy machine):
//!
//! ```text
//! wal.log                      append-only redo log (framed XDR records)
//! index.snap                   checkpoint snapshot of the extent index
//! data/<2hex>/<16hex>          per-handle sparse file (dirty bytes and
//!                              bytes cleaned in place after write-back),
//!                              keyed by the FNV hash of the Fh3
//! chunks/<2hex>/<16hex>-<8hex> refcounted clean chunks, keyed by
//!                              (content hash, length) — duplicate
//!                              blocks across files are stored once
//! ```
//!
//! **Write-ahead log.** Every mutation appends one framed record
//! (`[u32 len][XDR payload][u64 FNV]`). `WriteDirty` records carry the
//! written bytes inline — the WAL is a *redo* log, so replay never
//! depends on the data file having survived for dirty bytes. Clean
//! inserts reference chunk files by content hash instead of inlining
//! (clean data is refetchable; dirty data is not).
//!
//! **Recovery.** On open (and after [`BlockStore::crash_reopen`]) the
//! store loads `index.snap` if its trailing checksum verifies, then
//! replays `wal.log` record by record. A frame extending past the end
//! of the log is a *torn tail* — replay stops and truncates there, so
//! no torn dirty record is ever applied. An in-bounds frame that fails
//! verification — a flipped bit in its payload or checksum, an
//! undecodable record, or an `InsertClean` whose chunk is absent or
//! fails its content hash — is *interior corruption*: the frame is
//! skipped and counted (`wal_quarantined_frames`) and replay continues,
//! so one rotted bit can never silently truncate away the durable
//! frames behind it. (A flip inside a frame's *length prefix* is
//! indistinguishable from a torn tail and still truncates — the length
//! is what frame navigation stands on.)
//!
//! **Integrity.** Every stored unit carries a checksum that is verified
//! on every read. Content chunks are self-addressed: the chunk is
//! hashed whole and compared against its id. Bytes in per-handle data
//! files (dirty extents, raw collision fallbacks, and ranges cleaned in
//! place) carry per-block FNV records over `block_size`-aligned spans
//! of the data file, zero-padded to full blocks, maintained by every
//! data-file write: partially covered blocks are pre-verified first (a
//! previously corrupted byte is never laundered into a fresh sum) and
//! the new sum hashes the *intended* content (a torn write fails its
//! next verification). A mismatch **quarantines** the extent — it is
//! dropped from the index instead of served, counted, and reported via
//! [`BlockStore::take_integrity_events`]: clean extents become cache
//! misses the origin/peer read path repairs transparently; dirty
//! extents are explicit data loss the client must surface. A scrub
//! sweep ([`BlockStore::scrub_step`]) verifies content ahead of demand
//! behind a persistent cursor. Verification reads are cost-free in the
//! simulation (modeled as piggybacked on the data transfer they guard);
//! only the served bytes are charged, as before.
//!
//! **Chunking.** A clean insert is split at absolute `block_size`
//! boundaries — unless the file's last known size is at or below
//! `file_threshold`, in which case the whole insert is one chunk
//! (full-file mode: small files dedup and restore as a unit, the
//! MosaicFS split). A chunk whose `(hash, len)` already exists is not
//! rewritten: its refcount rises and `dedup_hits` is counted, after a
//! byte-compare guards against hash collisions (a colliding insert
//! falls back to a raw WAL record). Refcounts are not persisted; they
//! are recomputed by replay. Dead chunk files are garbage-collected at
//! checkpoint time, never between checkpoints — earlier WAL records may
//! still reference them.
//!
//! **Checkpoint.** Every `checkpoint_every` records the index is
//! snapshotted (`index.snap.new` → sync → rename → sync), the WAL is
//! truncated, and unreferenced chunk files are removed.
//!
//! **Eviction.** Clean extents of least-recently-used files are dropped
//! (with an `Evict` record) until within capacity; dirty bytes are
//! never evicted. The LRU clock is volatile: after a restart, recency
//! is WAL replay order.
//!
//! Lock order: `index` before `wal`, both ranked in the analysis
//! crate's `LOCK_ORDER` table; neither may be held across a WAN send.

use super::{BlockStore, IntegrityEvent, StoreStats};
use gvfs_netsim::disk::VirtualDisk;
use gvfs_nfs3::{Fh3, NfsTime3};
use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

const WAL_PATH: &str = "wal.log";
const SNAP_PATH: &str = "index.snap";
const SNAP_NEW_PATH: &str = "index.snap.new";
const SNAP_MAGIC: u32 = 0x6776_7353; // "gvsS"

/// Tuning for a [`PersistentStore`].
#[derive(Debug, Clone, Copy)]
pub struct PersistConfig {
    /// Cached-content byte budget (clean data beyond it is evicted).
    pub capacity: usize,
    /// Chunking granularity for clean data, normally the transfer size.
    pub block_size: u64,
    /// Files whose known size is at or below this are stored as one
    /// whole-file chunk per insert instead of per-block chunks.
    pub file_threshold: u64,
    /// WAL records between checkpoints (snapshot + WAL truncate + GC).
    pub checkpoint_every: usize,
    /// WAL records between implicit durability barriers.
    pub sync_every: usize,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            capacity: 4 << 30,
            block_size: 32 * 1024,
            file_threshold: 64 * 1024,
            checkpoint_every: 8192,
            sync_every: 64,
        }
    }
}

/// Content address of a clean chunk: (FNV-1a hash, length).
type ChunkId = (u64, u32);

/// 64-bit FNV-1a; the content hash, record checksum and handle shard
/// function (stable across processes, unlike `DefaultHasher`). Also the
/// end-to-end integrity hash on `PEERREAD` transfers, so a peer-served
/// block is checked with the same machinery that checks the on-disk
/// chunks it came from.
pub fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn data_path(fh: Fh3) -> String {
    let h = fnv(&fh.fileid().to_be_bytes());
    format!("data/{:02x}/{:016x}", h & 0xff, h)
}

fn chunk_path(id: ChunkId) -> String {
    format!("chunks/{:02x}/{:016x}-{:08x}", id.0 & 0xff, id.0, id.1)
}

fn parse_chunk_path(path: &str) -> Option<ChunkId> {
    let name = path.rsplit('/').next()?;
    let (h, l) = name.split_once('-')?;
    Some((u64::from_str_radix(h, 16).ok()?, u32::from_str_radix(l, 16).ok()?))
}

/// Where an extent's bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// Clean bytes inside a content chunk, starting `off` bytes in.
    Chunk { id: ChunkId, off: u32 },
    /// Bytes in the handle's own data file at the extent's absolute
    /// offset; dirty, or cleaned in place after write-back.
    Data { dirty: bool },
}

#[derive(Debug, Clone, Copy)]
struct Ext {
    len: usize,
    src: Src,
}

impl Ext {
    fn dirty(&self) -> bool {
        matches!(self.src, Src::Data { dirty: true })
    }

    /// Splits at `at` bytes in, returning the tail.
    fn split_off(&mut self, at: usize) -> Ext {
        let tail_len = self.len - at;
        self.len = at;
        let tail_src = match self.src {
            Src::Chunk { id, off } => {
                Src::Chunk { id, off: off + u32::try_from(at).expect("extent fits u32") }
            }
            Src::Data { dirty } => Src::Data { dirty },
        };
        Ext { len: tail_len, src: tail_src }
    }
}

#[derive(Debug, Default)]
struct Entry {
    tag: Option<NfsTime3>,
    size_hint: Option<u64>,
    extents: BTreeMap<u64, Ext>,
    /// FNV over each `block_size`-aligned span of the handle's data
    /// file (zero-padded to a full block), for every block any data
    /// extent touches. Maintained by `write_data`, verified on read.
    data_sums: BTreeMap<u64, u64>,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.extents.values().map(|e| e.len).sum()
    }
}

/// One clean segment of an `InsertClean` record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SegRec {
    /// A refcounted content chunk.
    Chunk { id: ChunkId },
    /// Raw bytes (hash-collision fallback), carried in the record and
    /// stored in the handle's data file.
    Raw { bytes: Vec<u8> },
}

impl SegRec {
    fn len(&self) -> usize {
        match self {
            SegRec::Chunk { id } => id.1 as usize,
            SegRec::Raw { bytes } => bytes.len(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum WalRecord {
    Retag { fh: Fh3, mtime: NfsTime3, drop: bool },
    InsertClean { fh: Fh3, offset: u64, segs: Vec<SegRec> },
    WriteDirty { fh: Fh3, offset: u64, bytes: Vec<u8> },
    CleanRange { fh: Fh3, offset: u64, len: u64 },
    DropClean { fh: Fh3 },
    Evict { fh: Fh3 },
    Forget { fh: Fh3 },
}

impl Xdr for WalRecord {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            WalRecord::Retag { fh, mtime, drop } => {
                enc.put_u32(1);
                enc.put_u64(fh.fileid());
                mtime.encode(enc)?;
                enc.put_bool(*drop);
            }
            WalRecord::InsertClean { fh, offset, segs } => {
                enc.put_u32(2);
                enc.put_u64(fh.fileid());
                enc.put_u64(*offset);
                enc.put_u32(u32::try_from(segs.len()).map_err(|_| XdrError::LengthOverflow)?);
                for seg in segs {
                    match seg {
                        SegRec::Chunk { id } => {
                            enc.put_u32(0);
                            enc.put_u64(id.0);
                            enc.put_u32(id.1);
                        }
                        SegRec::Raw { bytes } => {
                            enc.put_u32(1);
                            enc.put_opaque(bytes)?;
                        }
                    }
                }
            }
            WalRecord::WriteDirty { fh, offset, bytes } => {
                enc.put_u32(3);
                enc.put_u64(fh.fileid());
                enc.put_u64(*offset);
                enc.put_opaque(bytes)?;
            }
            WalRecord::CleanRange { fh, offset, len } => {
                enc.put_u32(4);
                enc.put_u64(fh.fileid());
                enc.put_u64(*offset);
                enc.put_u64(*len);
            }
            WalRecord::DropClean { fh } => {
                enc.put_u32(5);
                enc.put_u64(fh.fileid());
            }
            WalRecord::Evict { fh } => {
                enc.put_u32(6);
                enc.put_u64(fh.fileid());
            }
            WalRecord::Forget { fh } => {
                enc.put_u32(7);
                enc.put_u64(fh.fileid());
            }
        }
        Ok(())
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let disc = dec.get_u32()?;
        let fh = Fh3::from_fileid(dec.get_u64()?);
        Ok(match disc {
            1 => WalRecord::Retag { fh, mtime: NfsTime3::decode(dec)?, drop: dec.get_bool()? },
            2 => {
                let offset = dec.get_u64()?;
                let n = dec.get_u32()?;
                let mut segs = Vec::new();
                for _ in 0..n {
                    segs.push(match dec.get_u32()? {
                        0 => SegRec::Chunk { id: (dec.get_u64()?, dec.get_u32()?) },
                        1 => SegRec::Raw { bytes: dec.get_opaque()? },
                        other => {
                            return Err(XdrError::InvalidDiscriminant {
                                type_name: "SegRec",
                                value: other,
                            })
                        }
                    });
                }
                WalRecord::InsertClean { fh, offset, segs }
            }
            3 => WalRecord::WriteDirty { fh, offset: dec.get_u64()?, bytes: dec.get_opaque()? },
            4 => WalRecord::CleanRange { fh, offset: dec.get_u64()?, len: dec.get_u64()? },
            5 => WalRecord::DropClean { fh },
            6 => WalRecord::Evict { fh },
            7 => WalRecord::Forget { fh },
            other => {
                return Err(XdrError::InvalidDiscriminant { type_name: "WalRecord", value: other })
            }
        })
    }
}

#[derive(Debug, Default)]
struct Idx {
    files: HashMap<Fh3, Entry>,
    chunk_refs: HashMap<ChunkId, u32>,
    /// Chunks whose refcount hit zero; files removed at checkpoint.
    dead_chunks: HashSet<ChunkId>,
    lru: BTreeMap<u64, Fh3>,
    lru_seq: HashMap<Fh3, u64>,
    next_seq: u64,
    used: usize,
    evictions: u64,
    dedup_hits: u64,
    warm_blocks: u64,
    integrity_failures: u64,
    quarantined_blocks: u64,
    wal_quarantined: u64,
    events: Vec<IntegrityEvent>,
    scrub_cursor: (u64, u64),
    verify_off: bool,
    replaying: bool,
}

impl Idx {
    fn touch(&mut self, fh: Fh3) {
        if let Some(old) = self.lru_seq.remove(&fh) {
            self.lru.remove(&old);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lru.insert(seq, fh);
        self.lru_seq.insert(fh, seq);
    }

    fn add_ref(&mut self, id: ChunkId) {
        *self.chunk_refs.entry(id).or_insert(0) += 1;
        self.dead_chunks.remove(&id);
    }

    fn drop_ref(&mut self, id: ChunkId) {
        if let Some(rc) = self.chunk_refs.get_mut(&id) {
            *rc -= 1;
            if *rc == 0 {
                self.chunk_refs.remove(&id);
                self.dead_chunks.insert(id);
            }
        }
    }

    fn insert_ext(&mut self, fh: Fh3, offset: u64, ext: Ext) {
        if ext.len == 0 {
            return;
        }
        if let Src::Chunk { id, .. } = ext.src {
            self.add_ref(id);
        }
        self.files.entry(fh).or_default().extents.insert(offset, ext);
    }

    /// Removes every extent overlapping `[start, end)`, reinserting the
    /// parts outside the range and returning the *dirty* sub-ranges
    /// inside it (whose data-file bytes are untouched).
    fn remove_overlaps(&mut self, fh: Fh3, start: u64, end: u64) -> Vec<(u64, usize)> {
        let Some(entry) = self.files.get_mut(&fh) else { return Vec::new() };
        let overlapping: Vec<u64> = entry
            .extents
            .range(..end)
            .filter(|(s, e)| *s + e.len as u64 > start)
            .map(|(k, _)| *k)
            .collect();
        let mut dirty_kept = Vec::new();
        let mut reinsert = Vec::new();
        let mut derefs = Vec::new();
        for key in overlapping {
            let mut ext = entry.extents.remove(&key).expect("listed key");
            if let Src::Chunk { id, .. } = ext.src {
                derefs.push(id);
            }
            let ext_end = key + ext.len as u64;
            let mut seg_start = key;
            if key < start {
                let tail = ext.split_off((start - key) as usize);
                reinsert.push((key, ext));
                ext = tail;
                seg_start = start;
            }
            if ext_end > end {
                let tail = ext.split_off(ext.len - (ext_end - end) as usize);
                reinsert.push((end, tail));
            }
            if ext.dirty() {
                dirty_kept.push((seg_start, ext.len));
            }
        }
        for (k, e) in reinsert {
            self.insert_ext(fh, k, e);
        }
        for id in derefs {
            self.drop_ref(id);
        }
        dirty_kept.sort_unstable();
        dirty_kept
    }

    /// Merges adjacent extents with compatible sources, mirroring
    /// `FileCache::coalesce` so dirty-range tilings agree exactly.
    fn coalesce(&mut self, fh: Fh3) {
        let Some(entry) = self.files.get_mut(&fh) else { return };
        let keys: Vec<u64> = entry.extents.keys().copied().collect();
        let mut derefs = Vec::new();
        let mut prev: Option<u64> = None;
        for key in keys {
            if let Some(p) = prev {
                let prev_ext = entry.extents[&p];
                let cur = entry.extents[&key];
                let adjacent = p + prev_ext.len as u64 == key;
                let merge = adjacent
                    && match (prev_ext.src, cur.src) {
                        (Src::Data { dirty: a }, Src::Data { dirty: b }) => a == b,
                        (Src::Chunk { id: a, off: ao }, Src::Chunk { id: b, off: bo }) => {
                            a == b && ao as usize + prev_ext.len == bo as usize
                        }
                        _ => false,
                    };
                if merge {
                    let ext = entry.extents.remove(&key).expect("key");
                    if let Src::Chunk { id, .. } = ext.src {
                        derefs.push(id);
                    }
                    entry.extents.get_mut(&p).expect("prev").len += ext.len;
                    continue;
                }
            }
            prev = Some(key);
        }
        for id in derefs {
            self.drop_ref(id);
        }
    }

    fn recount_used(&mut self, fh: Fh3, before: usize) {
        let after = self.files.get(&fh).map_or(0, Entry::bytes);
        self.used = self.used + after - before;
    }

    fn entry_bytes(&self, fh: Fh3) -> usize {
        self.files.get(&fh).map_or(0, Entry::bytes)
    }

    fn apply_insert_clean(&mut self, fh: Fh3, offset: u64, segs: &[SegRec]) {
        let total: u64 = segs.iter().map(|s| s.len() as u64).sum();
        if total == 0 {
            return;
        }
        let before = self.entry_bytes(fh);
        let end = offset + total;
        let dirty_kept = self.remove_overlaps(fh, offset, end);
        // Insert the incoming clean segments, skipping dirty sub-ranges.
        let mut seg_start = offset;
        for seg in segs {
            let seg_len = seg.len() as u64;
            let seg_end = seg_start + seg_len;
            // Uncovered pieces of [seg_start, seg_end) w.r.t. dirty_kept.
            let mut pos = seg_start;
            for &(d_off, d_len) in &dirty_kept {
                let d_end = d_off + d_len as u64;
                if d_end <= pos || d_off >= seg_end {
                    continue;
                }
                if d_off > pos {
                    self.insert_clean_piece(fh, seg, seg_start, pos, (d_off - pos) as usize);
                }
                pos = d_end.min(seg_end);
            }
            if pos < seg_end {
                self.insert_clean_piece(fh, seg, seg_start, pos, (seg_end - pos) as usize);
            }
            seg_start = seg_end;
        }
        for (d_off, d_len) in dirty_kept {
            self.insert_ext(fh, d_off, Ext { len: d_len, src: Src::Data { dirty: true } });
        }
        self.coalesce(fh);
        self.recount_used(fh, before);
    }

    fn insert_clean_piece(&mut self, fh: Fh3, seg: &SegRec, seg_start: u64, at: u64, len: usize) {
        let src = match seg {
            SegRec::Chunk { id } => Src::Chunk {
                id: *id,
                off: u32::try_from(at - seg_start).expect("chunk offset fits u32"),
            },
            SegRec::Raw { .. } => Src::Data { dirty: false },
        };
        self.insert_ext(fh, at, Ext { len, src });
    }

    fn apply_write_dirty(&mut self, fh: Fh3, offset: u64, len: usize) {
        if len == 0 {
            return;
        }
        let before = self.entry_bytes(fh);
        let end = offset + len as u64;
        self.remove_overlaps(fh, offset, end);
        self.insert_ext(fh, offset, Ext { len, src: Src::Data { dirty: true } });
        self.coalesce(fh);
        self.recount_used(fh, before);
    }

    fn apply_clean_range(&mut self, fh: Fh3, offset: u64, len: u64) {
        let Some(entry) = self.files.get_mut(&fh) else { return };
        let end = offset + len;
        let overlapping: Vec<u64> = entry
            .extents
            .range(..end)
            .filter(|(s, e)| e.dirty() && *s + e.len as u64 > offset)
            .map(|(k, _)| *k)
            .collect();
        for key in overlapping {
            let mut ext = entry.extents.remove(&key).expect("listed key");
            let ext_end = key + ext.len as u64;
            let mut seg_start = key;
            if key < offset {
                let tail = ext.split_off((offset - key) as usize);
                entry.extents.insert(key, ext);
                ext = tail;
                seg_start = offset;
            }
            if ext_end > end {
                let tail = ext.split_off(ext.len - (ext_end - end) as usize);
                entry.extents.insert(end, tail);
            }
            ext.src = Src::Data { dirty: false };
            entry.extents.insert(seg_start, ext);
        }
        self.coalesce(fh);
    }

    fn apply_drop_clean(&mut self, fh: Fh3) {
        let Some(entry) = self.files.get_mut(&fh) else { return };
        let before = entry.bytes();
        let clean: Vec<u64> =
            entry.extents.iter().filter(|(_, e)| !e.dirty()).map(|(k, _)| *k).collect();
        let mut derefs = Vec::new();
        for key in clean {
            if let Some(ext) = entry.extents.remove(&key) {
                if let Src::Chunk { id, .. } = ext.src {
                    derefs.push(id);
                }
            }
        }
        for id in derefs {
            self.drop_ref(id);
        }
        self.recount_used(fh, before);
    }

    fn apply_forget(&mut self, fh: Fh3) {
        let before = self.entry_bytes(fh);
        if let Some(entry) = self.files.remove(&fh) {
            let ids: Vec<ChunkId> = entry
                .extents
                .values()
                .filter_map(|e| match e.src {
                    Src::Chunk { id, .. } => Some(id),
                    Src::Data { .. } => None,
                })
                .collect();
            for id in ids {
                self.drop_ref(id);
            }
        }
        if let Some(seq) = self.lru_seq.remove(&fh) {
            self.lru.remove(&seq);
        }
        self.used -= before;
    }

    fn apply_record(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::Retag { fh, mtime, drop } => {
                if *drop {
                    self.apply_drop_clean(*fh);
                }
                self.files.entry(*fh).or_default().tag = Some(*mtime);
            }
            WalRecord::InsertClean { fh, offset, segs } => {
                self.apply_insert_clean(*fh, *offset, segs);
                self.touch(*fh);
            }
            WalRecord::WriteDirty { fh, offset, bytes } => {
                self.apply_write_dirty(*fh, *offset, bytes.len());
                self.touch(*fh);
            }
            WalRecord::CleanRange { fh, offset, len } => self.apply_clean_range(*fh, *offset, *len),
            WalRecord::DropClean { fh } | WalRecord::Evict { fh } => self.apply_drop_clean(*fh),
            WalRecord::Forget { fh } => self.apply_forget(*fh),
        }
    }
}

#[derive(Debug, Default)]
struct WalState {
    since_sync: usize,
    since_checkpoint: usize,
}

/// Lifetime counters (and the verification knob) that survive a
/// crash/reopen replay.
#[derive(Debug, Default, Clone, Copy)]
struct Carry {
    evictions: u64,
    dedup_hits: u64,
    integrity_failures: u64,
    quarantined_blocks: u64,
    wal_quarantined: u64,
    verify_off: bool,
}

/// The persistent store; see the module docs.
#[derive(Debug)]
pub struct PersistentStore {
    cfg: PersistConfig,
    disk: Arc<VirtualDisk>,
    index: Mutex<Idx>,
    wal: Mutex<WalState>,
}

impl PersistentStore {
    /// Opens (or creates) the store on `disk`, replaying any index
    /// snapshot and WAL left by a previous incarnation. Replay I/O is
    /// treated as mount-time work: its simulated cost is discarded.
    #[must_use]
    pub fn open(disk: Arc<VirtualDisk>, cfg: PersistConfig) -> Self {
        let store = PersistentStore {
            cfg,
            disk,
            index: Mutex::new(Idx::default()),
            wal: Mutex::new(WalState::default()),
        };
        store.replay(Carry::default());
        let _ = store.disk.take_pending_cost();
        store
    }

    /// The underlying disk (shared with a restarted successor).
    #[must_use]
    pub fn disk(&self) -> Arc<VirtualDisk> {
        Arc::clone(&self.disk)
    }

    // --- WAL ---

    fn log(&self, idx: &mut Idx, rec: &WalRecord) {
        if idx.replaying {
            return;
        }
        let payload = gvfs_xdr::to_bytes(rec).expect("WAL records always encode");
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(
            &u32::try_from(payload.len()).expect("record fits u32").to_be_bytes(),
        );
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv(&payload).to_be_bytes());
        let mut wal = self.wal.lock();
        self.disk.append(WAL_PATH, &frame);
        wal.since_sync += 1;
        wal.since_checkpoint += 1;
        if wal.since_checkpoint >= self.cfg.checkpoint_every {
            self.checkpoint(idx, &mut wal);
        } else if wal.since_sync >= self.cfg.sync_every {
            self.disk.sync();
            wal.since_sync = 0;
        }
    }

    /// Snapshot + sync + WAL truncate + dead-chunk GC.
    fn checkpoint(&self, idx: &mut Idx, wal: &mut WalState) {
        let snap = encode_snapshot(idx);
        self.disk.remove(SNAP_NEW_PATH);
        self.disk.write(SNAP_NEW_PATH, 0, &snap);
        self.disk.sync();
        self.disk.rename(SNAP_NEW_PATH, SNAP_PATH);
        self.disk.sync();
        self.disk.truncate(WAL_PATH, 0);
        // Chunk files no WAL record references any more and no extent
        // holds: safe to delete only now that the WAL is empty.
        for path in self.disk.list("chunks/") {
            match parse_chunk_path(&path) {
                Some(id) if !idx.chunk_refs.contains_key(&id) => self.disk.remove(&path),
                _ => {}
            }
        }
        idx.dead_chunks.clear();
        self.disk.sync();
        wal.since_sync = 0;
        wal.since_checkpoint = 0;
    }

    /// Loads the snapshot and replays the WAL: a torn tail stops replay
    /// and is truncated; an in-bounds frame that fails verification is
    /// interior corruption — skipped and counted, with every later
    /// durable frame still applied. Carries over lifetime counters.
    fn replay(&self, carry: Carry) {
        let mut idx = Idx {
            replaying: true,
            evictions: carry.evictions,
            dedup_hits: carry.dedup_hits,
            integrity_failures: carry.integrity_failures,
            quarantined_blocks: carry.quarantined_blocks,
            wal_quarantined: carry.wal_quarantined,
            verify_off: carry.verify_off,
            ..Idx::default()
        };
        if let Some(snap) = self.disk.read(SNAP_PATH, 0, usize::MAX) {
            decode_snapshot(&snap, &mut idx);
        }
        let wal_bytes = self.disk.read(WAL_PATH, 0, usize::MAX).unwrap_or_default();
        let mut pos = 0usize;
        let mut valid = 0usize;
        while pos + 12 <= wal_bytes.len() {
            let len =
                u32::from_be_bytes(wal_bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let Some(frame_end) = pos.checked_add(4 + len + 8) else { break };
            if frame_end > wal_bytes.len() {
                break; // torn tail
            }
            let payload = &wal_bytes[pos + 4..pos + 4 + len];
            let stored = u64::from_be_bytes(
                wal_bytes[pos + 4 + len..frame_end].try_into().expect("8 bytes"),
            );
            let rec = if fnv(payload) == stored {
                gvfs_xdr::from_bytes::<WalRecord>(payload).ok().filter(|r| self.verify_record(r))
            } else {
                None
            };
            let Some(rec) = rec else {
                // Interior corruption (flipped payload bit, undecodable
                // record, or a chunk lost with a crash): quarantine the
                // frame but keep the durable frames behind it.
                idx.wal_quarantined += 1;
                idx.integrity_failures += 1;
                pos = frame_end;
                valid = frame_end;
                continue;
            };
            match &rec {
                WalRecord::WriteDirty { fh, offset, bytes } => {
                    // Redo: the WAL carries the dirty bytes.
                    self.write_data(&mut idx, *fh, *offset, bytes);
                }
                WalRecord::InsertClean { fh, offset, segs } => {
                    // Raw segments (hash-collision fallback) live in the
                    // data file; redo them from the inline copy.
                    let mut abs = *offset;
                    for seg in segs {
                        if let SegRec::Raw { bytes } = seg {
                            self.write_data(&mut idx, *fh, abs, bytes);
                        }
                        abs += seg.len() as u64;
                    }
                }
                _ => {}
            }
            idx.apply_record(&rec);
            pos = frame_end;
            valid = frame_end;
        }
        if valid < wal_bytes.len() {
            self.disk.truncate(WAL_PATH, valid as u64);
        }
        // Everything replayed clean is servable warm.
        idx.warm_blocks = count_clean_blocks(&idx, self.cfg.block_size);
        idx.used = idx.files.values().map(Entry::bytes).sum();
        idx.replaying = false;
        *self.index.lock() = idx;
        let mut wal = self.wal.lock();
        wal.since_sync = 0;
        wal.since_checkpoint = 0;
    }

    /// A record may only be applied if every chunk it references is
    /// present with matching content hash.
    fn verify_record(&self, rec: &WalRecord) -> bool {
        let WalRecord::InsertClean { segs, .. } = rec else { return true };
        segs.iter().all(|seg| match seg {
            SegRec::Chunk { id } => self
                .disk
                .read(&chunk_path(*id), 0, id.1 as usize)
                .is_some_and(|b| b.len() == id.1 as usize && fnv(&b) == id.0),
            SegRec::Raw { .. } => true,
        })
    }

    /// Stores one clean segment, dedup-ing against existing chunks.
    fn store_segment(&self, idx: &mut Idx, fh: Fh3, abs_off: u64, bytes: &[u8]) -> SegRec {
        let id: ChunkId = (fnv(bytes), u32::try_from(bytes.len()).expect("segment fits u32"));
        let path = chunk_path(id);
        if let Some(existing) = self.disk.read(&path, 0, bytes.len() + 1) {
            if existing == bytes {
                idx.dedup_hits += 1;
                return SegRec::Chunk { id };
            }
            // The byte-compare guard: a content-hash collision — or an
            // existing chunk whose bytes have rotted — falls back to
            // raw bytes in the handle's data file, carried inline by
            // the WAL record.
            self.write_data(idx, fh, abs_off, bytes);
            return SegRec::Raw { bytes: bytes.to_vec() };
        }
        self.disk.write(&path, 0, bytes);
        SegRec::Chunk { id }
    }

    /// Writes `bytes` into the handle's data file, maintaining the
    /// per-block FNV records. Partially covered blocks are pre-verified
    /// (quarantining on mismatch) so a corrupt byte is never laundered
    /// into a fresh sum, and the new sums hash the *intended* content,
    /// so a torn write fails its next verification. Pre-verification is
    /// skipped during replay: snapshot-era sums legitimately lag the
    /// durable content the WAL is about to redo.
    fn write_data(&self, idx: &mut Idx, fh: Fh3, offset: u64, bytes: &[u8]) {
        let bs = self.cfg.block_size;
        let path = data_path(fh);
        let end = offset + bytes.len() as u64;
        let replaying = idx.replaying;
        let mut b = offset / bs * bs;
        while b < end {
            let full = b >= offset && b + bs <= end;
            let mut span = if full {
                Vec::new()
            } else {
                match self.disk.read_quiet(&path, b, usize::try_from(bs).expect("bs fits")) {
                    Ok(Some(v)) => v,
                    Ok(None) => Vec::new(),
                    Err(_) => {
                        // The block's old content is unreadable: its
                        // unwritten parts are unknown, so quarantine it
                        // and drop the now-meaningless sum — reads will
                        // keep failing on the bad media regardless.
                        if !replaying {
                            self.quarantine(idx, fh, b, b + bs);
                        }
                        idx.files.entry(fh).or_default().data_sums.remove(&b);
                        b += bs;
                        continue;
                    }
                }
            };
            span.resize(usize::try_from(bs).expect("bs fits"), 0);
            if !full && !replaying {
                if let Some(&sum) = idx.files.get(&fh).and_then(|e| e.data_sums.get(&b)) {
                    if fnv(&span) != sum {
                        self.quarantine(idx, fh, b, b + bs);
                    }
                }
            }
            let lo = b.max(offset);
            let hi = (b + bs).min(end);
            span[usize::try_from(lo - b).expect("in block")
                ..usize::try_from(hi - b).expect("in block")]
                .copy_from_slice(
                    &bytes[usize::try_from(lo - offset).expect("in write")
                        ..usize::try_from(hi - offset).expect("in write")],
                );
            idx.files.entry(fh).or_default().data_sums.insert(b, fnv(&span));
            b += bs;
        }
        self.disk.write(&path, offset, bytes);
    }

    /// Verifies one extent's backing bytes against its checksum: the
    /// whole content chunk against its id, or every data-file block the
    /// extent touches against its recorded sum. Verification reads are
    /// quiet (no cost, no dice) but still see durable bit rot — flips
    /// persist in the content — and permanent media errors.
    fn verify_ext(&self, idx: &Idx, fh: Fh3, start: u64, ext: &Ext) -> bool {
        match ext.src {
            Src::Chunk { id, .. } => {
                match self.disk.read_quiet(&chunk_path(id), 0, id.1 as usize) {
                    Ok(Some(b)) => b.len() == id.1 as usize && fnv(&b) == id.0,
                    _ => false,
                }
            }
            Src::Data { .. } => {
                let Some(entry) = idx.files.get(&fh) else { return false };
                let bs = self.cfg.block_size;
                let end = start + ext.len as u64;
                let mut b = start / bs * bs;
                while b < end {
                    let Some(&sum) = entry.data_sums.get(&b) else { return false };
                    let mut span = match self.disk.read_quiet(
                        &data_path(fh),
                        b,
                        usize::try_from(bs).expect("bs fits"),
                    ) {
                        Ok(Some(v)) => v,
                        _ => return false,
                    };
                    span.resize(usize::try_from(bs).expect("bs fits"), 0);
                    if fnv(&span) != sum {
                        return false;
                    }
                    b += bs;
                }
                true
            }
        }
    }

    /// Quarantines `[start, end)` of `fh` after a failed verification:
    /// every overlapping extent is dropped instead of served, and one
    /// [`IntegrityEvent`] per dropped piece is queued for the client —
    /// clean pieces as repairable misses, dirty pieces as data loss.
    fn quarantine(&self, idx: &mut Idx, fh: Fh3, start: u64, end: u64) {
        idx.integrity_failures += 1;
        let before = idx.entry_bytes(fh);
        let dirty = idx.remove_overlaps(fh, start, end);
        let after = idx.entry_bytes(fh);
        idx.recount_used(fh, before);
        let dirty_total: usize = dirty.iter().map(|(_, l)| *l).sum();
        if before - after > dirty_total {
            idx.quarantined_blocks += 1;
            idx.events.push(IntegrityEvent {
                fh,
                offset: start,
                len: end - start,
                dirty: false,
                served: false,
            });
        }
        for (off, len) in dirty {
            idx.quarantined_blocks += 1;
            idx.events.push(IntegrityEvent {
                fh,
                offset: off,
                len: len as u64,
                dirty: true,
                served: false,
            });
        }
    }

    /// Counts a verification failure in served-anyway mode (the
    /// `--break-scrub` knob): the corrupt extent stays in the index and
    /// its bytes go to the reader, which the oracles must convict.
    fn note_served_corrupt(&self, idx: &mut Idx, fh: Fh3, start: u64, ext: &Ext) {
        idx.integrity_failures += 1;
        idx.events.push(IntegrityEvent {
            fh,
            offset: start,
            len: ext.len as u64,
            dirty: ext.dirty(),
            served: true,
        });
    }

    fn evict_over_capacity(&self, idx: &mut Idx) {
        while idx.used > self.cfg.capacity {
            let Some((&seq, &fh)) = idx.lru.iter().next() else { break };
            idx.lru.remove(&seq);
            idx.lru_seq.remove(&fh);
            if !idx.files.contains_key(&fh) {
                continue;
            }
            let before = idx.entry_bytes(fh);
            idx.apply_drop_clean(fh);
            let dropped = before - idx.entry_bytes(fh);
            if dropped > 0 {
                idx.evictions += 1;
                self.log(idx, &WalRecord::Evict { fh });
            }
            if idx.files.get(&fh).is_some_and(|e| !e.extents.is_empty()) {
                // Still dirty: keep hot so the loop can make progress.
                idx.touch(fh);
                if idx.lru.len() <= 1 {
                    break;
                }
            }
        }
    }

    fn read_ext(
        &self,
        fh: Fh3,
        start: u64,
        ext: &Ext,
        from: usize,
        take: usize,
    ) -> Option<Vec<u8>> {
        let bytes = match ext.src {
            Src::Chunk { id, off } => {
                self.disk.read(&chunk_path(id), u64::from(off) + from as u64, take)?
            }
            Src::Data { .. } => self.disk.read(&data_path(fh), start + from as u64, take)?,
        };
        (bytes.len() == take).then_some(bytes)
    }
}

fn count_clean_blocks(idx: &Idx, block_size: u64) -> u64 {
    let mut total = 0u64;
    for entry in idx.files.values() {
        let mut blocks: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for (off, ext) in &entry.extents {
            if ext.dirty() {
                continue;
            }
            let mut b = off / block_size * block_size;
            let end = off + ext.len as u64;
            while b < end {
                blocks.insert(b);
                b += block_size;
            }
        }
        total += blocks.len() as u64;
    }
    total
}

fn encode_snapshot(idx: &Idx) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(SNAP_MAGIC);
    enc.put_u32(2); // version 2: adds per-block data-file checksums
    let mut fhs: Vec<Fh3> = idx.files.keys().copied().collect();
    fhs.sort_unstable();
    enc.put_u32(u32::try_from(fhs.len()).expect("file count fits u32"));
    for fh in fhs {
        let entry = &idx.files[&fh];
        enc.put_u64(fh.fileid());
        match entry.tag {
            Some(t) => {
                enc.put_bool(true);
                enc.put_u32(t.seconds);
                enc.put_u32(t.nseconds);
            }
            None => enc.put_bool(false),
        }
        enc.put_u32(u32::try_from(entry.extents.len()).expect("extent count fits u32"));
        for (off, ext) in &entry.extents {
            enc.put_u64(*off);
            enc.put_u32(u32::try_from(ext.len).expect("extent len fits u32"));
            match ext.src {
                Src::Chunk { id, off: coff } => {
                    enc.put_u32(0);
                    enc.put_u64(id.0);
                    enc.put_u32(id.1);
                    enc.put_u32(coff);
                }
                Src::Data { dirty } => {
                    enc.put_u32(1);
                    enc.put_bool(dirty);
                }
            }
        }
        enc.put_u32(u32::try_from(entry.data_sums.len()).expect("sum count fits u32"));
        for (block, sum) in &entry.data_sums {
            enc.put_u64(*block);
            enc.put_u64(*sum);
        }
    }
    enc.put_u64(idx.next_seq);
    let mut bytes = enc.into_bytes();
    let sum = fnv(&bytes);
    bytes.extend_from_slice(&sum.to_be_bytes());
    bytes
}

/// Populates `idx` from a snapshot if it verifies; a torn or corrupt
/// snapshot is ignored (the WAL alone still recovers a valid prefix).
fn decode_snapshot(bytes: &[u8], idx: &mut Idx) {
    if bytes.len() < 8 {
        return;
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_be_bytes(trailer.try_into().expect("8 bytes"));
    if fnv(payload) != stored {
        return;
    }
    let mut dec = Decoder::new(payload);
    let ok = (|| -> Result<(), XdrError> {
        if dec.get_u32()? != SNAP_MAGIC || dec.get_u32()? != 2 {
            return Err(XdrError::InvalidDiscriminant { type_name: "snapshot", value: 0 });
        }
        let nfiles = dec.get_u32()?;
        for _ in 0..nfiles {
            let fh = Fh3::from_fileid(dec.get_u64()?);
            let tag = if dec.get_bool()? {
                Some(NfsTime3 { seconds: dec.get_u32()?, nseconds: dec.get_u32()? })
            } else {
                None
            };
            let mut entry = Entry { tag, ..Entry::default() };
            let nexts = dec.get_u32()?;
            for _ in 0..nexts {
                let off = dec.get_u64()?;
                let len = dec.get_u32()? as usize;
                let src = match dec.get_u32()? {
                    0 => {
                        let hash = dec.get_u64()?;
                        let clen = dec.get_u32()?;
                        let coff = dec.get_u32()?;
                        Src::Chunk { id: (hash, clen), off: coff }
                    }
                    _ => Src::Data { dirty: dec.get_bool()? },
                };
                entry.extents.insert(off, Ext { len, src });
            }
            let nsums = dec.get_u32()?;
            for _ in 0..nsums {
                let block = dec.get_u64()?;
                let sum = dec.get_u64()?;
                entry.data_sums.insert(block, sum);
            }
            idx.files.insert(fh, entry);
        }
        idx.next_seq = dec.get_u64()?;
        Ok(())
    })();
    if ok.is_err() {
        idx.files.clear();
        idx.next_seq = 0;
        return;
    }
    // Rebuild refcounts and the LRU (recency order is volatile; seed it
    // with snapshot order).
    let fhs: Vec<Fh3> = {
        let mut v: Vec<Fh3> = idx.files.keys().copied().collect();
        v.sort_unstable();
        v
    };
    for fh in fhs {
        let ids: Vec<ChunkId> = idx.files[&fh]
            .extents
            .values()
            .filter_map(|e| match e.src {
                Src::Chunk { id, .. } => Some(id),
                Src::Data { .. } => None,
            })
            .collect();
        for id in ids {
            idx.add_ref(id);
        }
        idx.touch(fh);
    }
}

impl BlockStore for PersistentStore {
    fn read(&mut self, fh: Fh3, offset: u64, len: usize) -> Option<Vec<u8>> {
        let mut idx = self.index.lock();
        idx.files.get(&fh)?;
        if len == 0 {
            return Some(Vec::new());
        }
        let end = offset + len as u64;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while pos < end {
            let (start, ext) = {
                let entry = idx.files.get(&fh)?;
                let (s, e) = entry.extents.range(..=pos).next_back()?;
                (*s, *e)
            };
            let ext_end = start + ext.len as u64;
            if pos >= ext_end {
                return None; // gap
            }
            let from = (pos - start) as usize;
            let to = ((end.min(ext_end)) - start) as usize;
            // Read first, verify second: a bit that rots during the
            // read persists in the content, so the verification pass
            // sees it and the corrupt bytes are never served.
            let piece = self.read_ext(fh, start, &ext, from, to - from);
            if !self.verify_ext(&idx, fh, start, &ext) {
                if idx.verify_off {
                    self.note_served_corrupt(&mut idx, fh, start, &ext);
                } else {
                    self.quarantine(&mut idx, fh, start, ext_end);
                    return None; // now a miss; the read path refetches
                }
            }
            out.extend_from_slice(&piece?);
            pos = start + to as u64;
        }
        idx.touch(fh);
        Some(out)
    }

    fn missing_ranges(&self, fh: Fh3, offset: u64, len: usize) -> Vec<(u64, usize)> {
        let idx = self.index.lock();
        let Some(entry) = idx.files.get(&fh) else {
            return if len == 0 { Vec::new() } else { vec![(offset, len)] };
        };
        let mut gaps = Vec::new();
        if len == 0 {
            return gaps;
        }
        let end = offset + len as u64;
        let mut pos = offset;
        let head = entry.extents.range(..=pos).next_back();
        let tail = entry.extents.range(pos + 1..end);
        for (start, ext) in head.into_iter().chain(tail) {
            let ext_end = start + ext.len as u64;
            if ext_end <= pos {
                continue;
            }
            if *start > pos {
                gaps.push((pos, (*start - pos) as usize));
            }
            pos = ext_end;
            if pos >= end {
                return gaps;
            }
        }
        gaps.push((pos, (end - pos) as usize));
        gaps
    }

    fn insert_clean(&mut self, fh: Fh3, offset: u64, data: Vec<u8>) {
        if data.is_empty() {
            return;
        }
        let mut idx = self.index.lock();
        // Full-file mode below the size threshold, else absolute
        // block_size-aligned chunks (maximizes cross-file dedup).
        let full_file = idx
            .files
            .get(&fh)
            .and_then(|e| e.size_hint)
            .is_some_and(|s| s <= self.cfg.file_threshold);
        let mut segs = Vec::new();
        let mut rel = 0usize;
        while rel < data.len() {
            let abs = offset + rel as u64;
            let piece_len = if full_file {
                data.len() - rel
            } else {
                let next_boundary = (abs / self.cfg.block_size + 1) * self.cfg.block_size;
                ((next_boundary - abs) as usize).min(data.len() - rel)
            };
            segs.push(self.store_segment(&mut idx, fh, abs, &data[rel..rel + piece_len]));
            rel += piece_len;
        }
        idx.apply_insert_clean(fh, offset, &segs);
        idx.touch(fh);
        self.log(&mut idx, &WalRecord::InsertClean { fh, offset, segs });
        self.evict_over_capacity(&mut idx);
    }

    fn write_dirty(&mut self, fh: Fh3, offset: u64, data: Vec<u8>) {
        if data.is_empty() {
            return;
        }
        let mut idx = self.index.lock();
        self.write_data(&mut idx, fh, offset, &data);
        idx.apply_write_dirty(fh, offset, data.len());
        idx.touch(fh);
        self.log(&mut idx, &WalRecord::WriteDirty { fh, offset, bytes: data });
        self.evict_over_capacity(&mut idx);
    }

    fn clean_range(&mut self, fh: Fh3, offset: u64, len: u64) {
        let mut idx = self.index.lock();
        if idx.files.contains_key(&fh) {
            idx.apply_clean_range(fh, offset, len);
            self.log(&mut idx, &WalRecord::CleanRange { fh, offset, len });
        }
        drop(idx);
        // The server holds the data now; make the clean marking (and the
        // write-back it records) durable so a restart serves it warm
        // instead of re-flushing. Unconditional: clean_range is always a
        // durability barrier, whether or not the handle was cached.
        self.disk.sync();
        self.wal.lock().since_sync = 0;
    }

    fn drop_clean(&mut self, fh: Fh3) {
        let mut idx = self.index.lock();
        if !idx.files.contains_key(&fh) {
            return;
        }
        idx.apply_drop_clean(fh);
        self.log(&mut idx, &WalRecord::DropClean { fh });
    }

    fn forget(&mut self, fh: Fh3) {
        let mut idx = self.index.lock();
        if !idx.files.contains_key(&fh) && !idx.lru_seq.contains_key(&fh) {
            return;
        }
        idx.apply_forget(fh);
        self.disk.remove(&data_path(fh));
        self.log(&mut idx, &WalRecord::Forget { fh });
    }

    fn dirty_ranges(&self, fh: Fh3) -> Vec<(u64, usize)> {
        let idx = self.index.lock();
        idx.files.get(&fh).map_or_else(Vec::new, |e| {
            e.extents.iter().filter(|(_, x)| x.dirty()).map(|(o, x)| (*o, x.len)).collect()
        })
    }

    fn dirty_blocks(&self, fh: Fh3, block_size: u64) -> Vec<u64> {
        let mut blocks = std::collections::BTreeSet::new();
        for (offset, len) in self.dirty_ranges(fh) {
            let mut b = offset / block_size * block_size;
            let end = offset + len as u64;
            while b < end {
                blocks.insert(b);
                b += block_size;
            }
        }
        blocks.into_iter().collect()
    }

    fn dirty_in_block(&self, fh: Fh3, block_offset: u64, block_size: u64) -> Vec<(u64, Vec<u8>)> {
        let mut idx = self.index.lock();
        let block_end = block_offset + block_size;
        let segs: Vec<(u64, u64, u64, Ext)> = {
            let Some(entry) = idx.files.get(&fh) else { return Vec::new() };
            entry
                .extents
                .iter()
                .filter(|(_, e)| e.dirty())
                .filter_map(|(start, ext)| {
                    let ext_end = start + ext.len as u64;
                    if ext_end <= block_offset || *start >= block_end {
                        return None;
                    }
                    Some((block_offset.max(*start), block_end.min(ext_end), *start, *ext))
                })
                .collect()
        };
        let mut out = Vec::new();
        for (from, to, estart, ext) in segs {
            // Verify before handing dirty bytes to the flusher: a
            // corrupt block must surface as data loss, never be written
            // back to the origin as if it were the application's data.
            let want = (to - from) as usize;
            let bytes = match self.disk.try_read(&data_path(fh), from, want) {
                Ok(Some(b)) if b.len() == want => Some(b),
                _ => None,
            };
            let verified = self.verify_ext(&idx, fh, estart, &ext);
            match bytes {
                Some(b) if verified => out.push((from, b)),
                Some(b) if idx.verify_off => {
                    self.note_served_corrupt(&mut idx, fh, estart, &ext);
                    out.push((from, b));
                }
                _ => self.quarantine(&mut idx, fh, estart, estart + ext.len as u64),
            }
        }
        out
    }

    fn has_dirty(&self, fh: Fh3) -> bool {
        let idx = self.index.lock();
        idx.files.get(&fh).is_some_and(|e| e.extents.values().any(Ext::dirty))
    }

    fn dirty_files(&self) -> Vec<Fh3> {
        let idx = self.index.lock();
        let mut v: Vec<Fh3> = idx
            .files
            .iter()
            .filter(|(_, e)| e.extents.values().any(Ext::dirty))
            .map(|(fh, _)| *fh)
            .collect();
        v.sort_unstable();
        v
    }

    fn revalidate(&mut self, fh: Fh3, mtime: NfsTime3) {
        let mut idx = self.index.lock();
        let changed = idx.files.get(&fh).and_then(|e| e.tag).is_some_and(|t| t != mtime);
        if changed {
            idx.apply_drop_clean(fh);
        }
        let had_entry = idx.files.contains_key(&fh);
        let prev_tag = idx.files.get(&fh).and_then(|e| e.tag);
        idx.files.entry(fh).or_default().tag = Some(mtime);
        // Only log when something durable changed: first sight of the
        // handle, a tag move, or a clean drop.
        if changed || !had_entry || prev_tag != Some(mtime) {
            self.log(&mut idx, &WalRecord::Retag { fh, mtime, drop: changed });
        }
    }

    fn retag(&mut self, fh: Fh3, mtime: NfsTime3) {
        let mut idx = self.index.lock();
        let prev = idx.files.get(&fh).and_then(|e| e.tag);
        idx.files.entry(fh).or_default().tag = Some(mtime);
        if prev != Some(mtime) {
            self.log(&mut idx, &WalRecord::Retag { fh, mtime, drop: false });
        }
    }

    fn note_size(&mut self, fh: Fh3, size: u64) {
        self.index.lock().files.entry(fh).or_default().size_hint = Some(size);
    }

    fn used_bytes(&self) -> usize {
        self.index.lock().used
    }

    fn stats(&self) -> StoreStats {
        let idx = self.index.lock();
        StoreStats {
            bytes: idx.used as u64,
            evictions: idx.evictions,
            dedup_hits: idx.dedup_hits,
            restart_warm_blocks: idx.warm_blocks,
            integrity_failures: idx.integrity_failures,
            quarantined_blocks: idx.quarantined_blocks,
            wal_quarantined_frames: idx.wal_quarantined,
        }
    }

    fn sync(&mut self) {
        let idx = self.index.lock();
        let mut wal = self.wal.lock();
        drop(idx);
        self.disk.sync();
        wal.since_sync = 0;
    }

    fn crash_reopen(&mut self) {
        let carry = {
            let idx = self.index.lock();
            Carry {
                evictions: idx.evictions,
                dedup_hits: idx.dedup_hits,
                integrity_failures: idx.integrity_failures,
                quarantined_blocks: idx.quarantined_blocks,
                wal_quarantined: idx.wal_quarantined,
                verify_off: idx.verify_off,
            }
        };
        self.disk.crash();
        self.replay(carry);
    }

    fn take_cost(&mut self) -> Duration {
        self.disk.take_pending_cost()
    }

    fn take_integrity_events(&mut self) -> Vec<IntegrityEvent> {
        std::mem::take(&mut self.index.lock().events)
    }

    fn scrub_step(&mut self, max_bytes: usize) -> usize {
        let mut idx = self.index.lock();
        if idx.verify_off {
            return 0;
        }
        // A stable sweep order over every stored extent; the persistent
        // cursor picks up where the previous step stopped so repeated
        // small steps cover the whole store.
        let mut exts: Vec<(Fh3, u64, Ext)> = idx
            .files
            .iter()
            .flat_map(|(fh, e)| e.extents.iter().map(|(off, ext)| (*fh, *off, *ext)))
            .collect();
        if exts.is_empty() {
            return 0;
        }
        exts.sort_unstable_by_key(|(fh, off, _)| (fh.fileid(), *off));
        let cursor = idx.scrub_cursor;
        let at = exts.iter().position(|(fh, off, _)| (fh.fileid(), *off) >= cursor).unwrap_or(0);
        exts.rotate_left(at);
        let mut scrubbed = 0usize;
        let mut next = (0, 0);
        for (i, (fh, off, ext)) in exts.iter().enumerate() {
            if scrubbed >= max_bytes {
                next = (fh.fileid(), *off);
                break;
            }
            // An extent may have been quarantined (or split) by an
            // earlier failure in this same step; skip stale entries.
            let live = idx
                .files
                .get(fh)
                .and_then(|e| e.extents.get(off))
                .is_some_and(|e| e.len == ext.len);
            if !live {
                continue;
            }
            if !self.verify_ext(&idx, *fh, *off, ext) {
                self.quarantine(&mut idx, *fh, *off, *off + ext.len as u64);
            }
            scrubbed += ext.len;
            if i + 1 == exts.len() {
                next = (0, 0); // wrapped: restart the sweep
            }
        }
        idx.scrub_cursor = next;
        scrubbed
    }

    fn set_verify(&mut self, on: bool) {
        self.index.lock().verify_off = !on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvfs_netsim::disk::DiskConfig;

    fn store() -> PersistentStore {
        PersistentStore::open(
            VirtualDisk::new(DiskConfig::instant()),
            PersistConfig { capacity: 1 << 20, ..PersistConfig::default() },
        )
    }

    fn t(s: u32) -> NfsTime3 {
        NfsTime3 { seconds: s, nseconds: 0 }
    }

    #[test]
    fn read_write_roundtrip_with_gaps() {
        let mut s = store();
        let fh = Fh3::from_fileid(1);
        s.insert_clean(fh, 0, vec![1; 4]);
        s.insert_clean(fh, 8, vec![2; 4]);
        assert_eq!(s.read(fh, 0, 4).unwrap(), vec![1; 4]);
        assert!(s.read(fh, 0, 12).is_none(), "gap at [4,8)");
        assert_eq!(s.missing_ranges(fh, 0, 12), vec![(4, 4)]);
        s.write_dirty(fh, 4, vec![9; 4]);
        assert_eq!(s.read(fh, 0, 12).unwrap(), [vec![1; 4], vec![9; 4], vec![2; 4]].concat());
        assert_eq!(s.dirty_ranges(fh), vec![(4, 4)]);
    }

    #[test]
    fn dirty_beats_incoming_clean() {
        let mut s = store();
        let fh = Fh3::from_fileid(1);
        s.write_dirty(fh, 2, vec![7; 4]);
        s.insert_clean(fh, 0, vec![0; 8]);
        assert_eq!(s.read(fh, 0, 8).unwrap(), vec![0, 0, 7, 7, 7, 7, 0, 0]);
        assert_eq!(s.dirty_ranges(fh), vec![(2, 4)]);
    }

    #[test]
    fn warm_restart_serves_clean_blocks() {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let cfg = PersistConfig { capacity: 1 << 20, ..PersistConfig::default() };
        let fh = Fh3::from_fileid(7);
        {
            let mut s = PersistentStore::open(Arc::clone(&disk), cfg);
            s.revalidate(fh, t(5));
            s.insert_clean(fh, 0, vec![3; 1000]);
            s.sync();
        }
        let mut s2 = PersistentStore::open(disk, cfg);
        assert_eq!(s2.read(fh, 0, 1000).unwrap(), vec![3; 1000]);
        assert_eq!(s2.stats().restart_warm_blocks, 1);
        // The tag survived: revalidating with the same mtime keeps data.
        s2.revalidate(fh, t(5));
        assert!(s2.read(fh, 0, 1000).is_some());
        s2.revalidate(fh, t(9));
        assert!(s2.read(fh, 0, 1000).is_none(), "tag moved: clean dropped");
    }

    #[test]
    fn unsynced_dirty_tail_is_discarded_after_crash() {
        let mut s = store();
        let fh = Fh3::from_fileid(1);
        s.write_dirty(fh, 0, vec![1; 100]);
        s.sync();
        s.write_dirty(fh, 200, vec![2; 100]); // never synced
        s.crash_reopen();
        assert_eq!(s.read(fh, 0, 100).unwrap(), vec![1; 100], "synced dirty survives");
        assert_eq!(s.dirty_ranges(fh), vec![(0, 100)], "torn record discarded");
    }

    #[test]
    fn dedup_stores_identical_chunks_once() {
        let mut s = store();
        let a = Fh3::from_fileid(1);
        let b = Fh3::from_fileid(2);
        let block = vec![42u8; 32 * 1024];
        s.insert_clean(a, 0, block.clone());
        assert_eq!(s.stats().dedup_hits, 0);
        s.insert_clean(b, 0, block.clone());
        assert_eq!(s.stats().dedup_hits, 1);
        assert_eq!(s.read(b, 0, block.len()).unwrap(), block);
        // One chunk file backs both.
        assert_eq!(s.disk.list("chunks/").len(), 1);
        s.forget(a);
        assert_eq!(s.read(b, 0, block.len()).unwrap(), block, "refcount keeps the chunk");
    }

    #[test]
    fn eviction_spares_dirty_and_counts() {
        let mut s = PersistentStore::open(
            VirtualDisk::new(DiskConfig::instant()),
            PersistConfig { capacity: 100, ..PersistConfig::default() },
        );
        let dirty = Fh3::from_fileid(1);
        let clean = Fh3::from_fileid(2);
        s.write_dirty(dirty, 0, vec![1; 80]);
        s.insert_clean(clean, 0, vec![2; 80]);
        assert!(s.used_bytes() <= 160);
        assert_eq!(s.dirty_files(), vec![dirty]);
        assert!(s.read(dirty, 0, 80).is_some(), "dirty survives eviction");
        assert!(s.stats().evictions >= 1);
    }

    #[test]
    fn checkpoint_snapshots_and_truncates_wal() {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let cfg = PersistConfig {
            capacity: 1 << 20,
            checkpoint_every: 4,
            sync_every: usize::MAX,
            ..PersistConfig::default()
        };
        let fh = Fh3::from_fileid(1);
        let mut s = PersistentStore::open(Arc::clone(&disk), cfg);
        for i in 0..6u64 {
            s.write_dirty(fh, i * 10, vec![i as u8 + 1; 10]);
        }
        assert!(disk.exists(SNAP_PATH), "checkpoint wrote a snapshot");
        s.sync();
        drop(s);
        let mut s2 = PersistentStore::open(disk, cfg);
        let got = s2.read(fh, 0, 60).unwrap();
        let want: Vec<u8> = (0..6u64).flat_map(|i| vec![i as u8 + 1; 10]).collect();
        assert_eq!(got, want);
        assert_eq!(s2.dirty_ranges(fh), vec![(0, 60)]);
    }

    #[test]
    fn clean_range_is_durable_and_restores_warm() {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let cfg = PersistConfig { capacity: 1 << 20, ..PersistConfig::default() };
        let fh = Fh3::from_fileid(3);
        {
            let mut s = PersistentStore::open(Arc::clone(&disk), cfg);
            s.write_dirty(fh, 0, vec![5; 512]);
            s.clean_range(fh, 0, 512); // implies a durability barrier
        }
        let mut s2 = PersistentStore::open(disk, cfg);
        assert_eq!(s2.read(fh, 0, 512).unwrap(), vec![5; 512]);
        assert!(!s2.has_dirty(fh), "cleaned-in-place bytes restore clean");
        assert_eq!(s2.stats().restart_warm_blocks, 1);
    }

    /// The satellite regression: an interior WAL corruption (bit flip in
    /// frame 2 of 5) quarantines that frame only — frames 3–5 still
    /// replay — while a torn tail still truncates.
    #[test]
    fn interior_wal_flip_keeps_later_frames() {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let cfg = PersistConfig {
            capacity: 1 << 20,
            checkpoint_every: usize::MAX,
            sync_every: usize::MAX,
            ..PersistConfig::default()
        };
        {
            let mut s = PersistentStore::open(Arc::clone(&disk), cfg);
            for i in 1..=5u64 {
                s.write_dirty(Fh3::from_fileid(i), 0, vec![i as u8; 64]);
            }
            s.sync();
        }
        // Frame layout: [u32 len][payload][u64 fnv]. Walk to frame 2's
        // payload and flip one bit.
        let wal = disk.read(WAL_PATH, 0, usize::MAX).unwrap();
        let len1 = u32::from_be_bytes(wal[0..4].try_into().unwrap()) as usize;
        let frame2 = 4 + len1 + 8;
        assert!(disk.corrupt_byte(WAL_PATH, (frame2 + 4 + 2) as u64, 0x40));
        let mut s2 = PersistentStore::open(disk, cfg);
        assert_eq!(s2.stats().wal_quarantined_frames, 1, "frame 2 quarantined");
        for i in [1u64, 3, 4, 5] {
            assert_eq!(s2.read(Fh3::from_fileid(i), 0, 64).unwrap(), vec![i as u8; 64]);
        }
        assert!(s2.read(Fh3::from_fileid(2), 0, 64).is_none(), "frame 2 lost");
    }

    /// A flipped bit in a clean chunk is never served: the read misses,
    /// the extent is quarantined, and re-inserting the fetched bytes
    /// (what the client's refetch repair does) reconverges — via the
    /// byte-compare dedup guard, since the rotten chunk still exists.
    #[test]
    fn corrupt_clean_chunk_quarantined_then_repaired() {
        let mut s = store();
        let fh = Fh3::from_fileid(1);
        let data: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        s.insert_clean(fh, 0, data.clone());
        let chunk = &s.disk.list("chunks/")[0];
        assert!(s.disk.corrupt_byte(chunk, 100, 0xff));
        assert!(s.read(fh, 0, 4096).is_none(), "corrupt bytes are never served");
        let st = s.stats();
        assert_eq!(st.integrity_failures, 1);
        assert_eq!(st.quarantined_blocks, 1);
        let ev = s.take_integrity_events();
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].dirty && !ev[0].served);
        assert!(s.take_integrity_events().is_empty(), "events drain once");
        // Refetch repair: the store accepts the origin bytes again.
        s.insert_clean(fh, 0, data.clone());
        assert_eq!(s.read(fh, 0, 4096).unwrap(), data);
    }

    /// Corruption under a dirty extent is explicit data loss, never a
    /// zero-filled read.
    #[test]
    fn corrupt_dirty_data_is_explicit_loss() {
        let mut s = store();
        let fh = Fh3::from_fileid(1);
        s.write_dirty(fh, 0, vec![7; 100]);
        assert!(s.disk.corrupt_byte(&data_path(fh), 50, 0x01));
        assert!(s.read(fh, 0, 100).is_none());
        let ev = s.take_integrity_events();
        assert_eq!(ev.len(), 1);
        assert!(ev[0].dirty, "lost bytes were dirty");
        assert!(!s.has_dirty(fh), "the unrecoverable extent is dropped");
        assert_eq!(s.stats().quarantined_blocks, 1);
    }

    /// A torn data-file write (sector-prefix only) fails its next
    /// verification: the sums hash the intended content.
    #[test]
    fn torn_data_write_is_caught() {
        use gvfs_netsim::disk::DiskFaultPlan;
        use gvfs_netsim::fault::Window;
        use gvfs_netsim::SimTime;
        let disk = VirtualDisk::new(DiskConfig::instant());
        let mut s = PersistentStore::open(
            Arc::clone(&disk),
            PersistConfig { capacity: 1 << 20, ..PersistConfig::default() },
        );
        let all = Window::new(SimTime::ZERO, SimTime::from_secs(1 << 30));
        disk.set_fault_plan(Some(
            DiskFaultPlan::new(7).with_torn_writes(all, 1.0).with_path_prefix("data/"),
        ));
        s.write_dirty(Fh3::from_fileid(1), 0, vec![9; 600]);
        disk.set_fault_plan(None);
        assert!(s.read(Fh3::from_fileid(1), 0, 600).is_none(), "torn bytes never served");
        assert!(s.stats().integrity_failures >= 1);
    }

    /// The scrub sweep finds rot ahead of demand and its cursor covers
    /// the whole store across small steps.
    #[test]
    fn scrub_step_quarantines_ahead_of_demand() {
        let mut s = store();
        let good = Fh3::from_fileid(1);
        let bad = Fh3::from_fileid(2);
        s.insert_clean(good, 0, vec![1; 4096]);
        s.insert_clean(bad, 0, vec![2; 4096]);
        // Corrupt only the second file's chunk.
        for chunk in s.disk.list("chunks/") {
            let id = parse_chunk_path(&chunk).unwrap();
            if id.0 == fnv(&[2u8; 4096][..]) {
                assert!(s.disk.corrupt_byte(&chunk, 9, 0x80));
            }
        }
        let mut scrubbed = 0;
        for _ in 0..16 {
            scrubbed += s.scrub_step(1024);
        }
        assert!(scrubbed >= 8192, "cursor wrapped the whole store");
        assert_eq!(s.stats().integrity_failures, 1, "scrub found the rot");
        let ev = s.take_integrity_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].fh, bad);
        assert!(s.read(bad, 0, 4096).is_none(), "quarantined before any reader saw it");
        assert_eq!(s.read(good, 0, 4096).unwrap(), vec![1; 4096]);
    }

    /// The `--break-scrub` knob: verification off serves the corrupt
    /// bytes (counted, `served` flagged) so the oracles can convict.
    #[test]
    fn verify_off_serves_corrupt_and_flags_it() {
        let mut s = store();
        let fh = Fh3::from_fileid(1);
        s.insert_clean(fh, 0, vec![3; 4096]);
        let chunk = &s.disk.list("chunks/")[0];
        assert!(s.disk.corrupt_byte(chunk, 0, 0xff));
        s.set_verify(false);
        assert_eq!(s.scrub_step(usize::MAX), 0, "scrub disabled with the knob");
        let got = s.read(fh, 0, 4096).expect("served anyway");
        assert_ne!(got, vec![3; 4096], "and the bytes are wrong");
        let ev = s.take_integrity_events();
        assert_eq!(ev.len(), 1);
        assert!(ev[0].served);
        assert_eq!(s.stats().quarantined_blocks, 0, "nothing quarantined");
        s.set_verify(true);
        assert!(s.read(fh, 0, 4096).is_none(), "re-enabled: quarantined");
    }

    /// Integrity counters and the scrub cursor survive a crash/reopen;
    /// per-block sums ride the snapshot (v2) across checkpoints.
    #[test]
    fn sums_survive_checkpoint_and_counters_survive_crash() {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let cfg = PersistConfig {
            capacity: 1 << 20,
            checkpoint_every: 2,
            sync_every: usize::MAX,
            ..PersistConfig::default()
        };
        let fh = Fh3::from_fileid(1);
        let mut s = PersistentStore::open(Arc::clone(&disk), cfg);
        for i in 0..4u64 {
            s.write_dirty(fh, i * 100, vec![i as u8 + 1; 100]);
        }
        assert!(disk.exists(SNAP_PATH));
        s.sync();
        assert!(s.disk.corrupt_byte(&data_path(fh), 150, 0x04));
        assert!(s.read(fh, 0, 400).is_none());
        let failures = s.stats().integrity_failures;
        assert!(failures >= 1);
        s.crash_reopen();
        assert_eq!(s.stats().integrity_failures, failures, "counters carry over");
        // The snapshot restored sums for the surviving blocks: corrupt
        // the replayed data file and verification still catches it.
        assert!(s.disk.corrupt_byte(&data_path(fh), 350, 0x04));
        assert!(s.read(fh, 300, 100).is_none(), "snapshot-era sums still verify");
    }
}
