//! Workload smoke tests: each benchmark driver runs end-to-end on a
//! reduced configuration under both a native mount and a GVFS session,
//! and its structural invariants hold.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_vfs::Vfs;
use gvfs_workloads::{ch1d, lock, make, nanomos, postmark};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn make_builds_all_objects_on_both_stacks() {
    for gvfs in [false, true] {
        let config = make::MakeConfig::small();
        let vfs = Arc::new(Vfs::new());
        make::populate(&vfs, &config);
        let sim = Sim::new();
        let report = Arc::new(Mutex::new(None));
        let r = Arc::clone(&report);
        let (t, root, handle) = if gvfs {
            let session = Session::builder(SessionConfig {
                model: ConsistencyModel::polling_30s(),
                write_back: true,
                ..SessionConfig::default()
            })
            .clients(1)
            .vfs(Arc::clone(&vfs))
            .establish(&sim);
            (session.client_transport(0), session.root_fh(), Some(session.handle()))
        } else {
            let native = NativeMount::establish(1, LinkConfig::wan(), Some(Arc::clone(&vfs)));
            (native.client_transport(0), native.root_fh(), None)
        };
        let cfg = config.clone();
        sim.spawn("builder", move || {
            let client = NfsClient::new(t, root, MountOptions::default());
            let out = make::run(&client, &cfg);
            if let Some(h) = handle {
                h.shutdown();
            }
            *r.lock() = Some(out);
        });
        sim.run();
        let out = report.lock().take().unwrap();
        assert_eq!(out.objects_built, config.objects);
        // Server-side: all objects and the binary exist; temps are gone.
        for o in 0..config.objects {
            assert!(vfs.lookup_path(&format!("/obj/obj{o:03}.o")).is_ok());
        }
        assert!(vfs.lookup_path("/obj/tclsh").is_ok());
        for i in 0..config.sources {
            assert!(vfs.lookup_path(&format!("/obj/tmp{i:03}.s")).is_err(), "temp must be deleted");
        }
    }
}

#[test]
fn postmark_accounting_is_consistent() {
    let config = postmark::PostmarkConfig::small();
    let sim = Sim::new();
    let native = NativeMount::establish(1, LinkConfig::lan(), None);
    let (t, root) = (native.client_transport(0), native.root_fh());
    let vfs = Arc::clone(native.vfs());
    let report = Arc::new(Mutex::new(None));
    let r = Arc::clone(&report);
    sim.spawn("postmark", move || {
        let client = NfsClient::new(t, root, MountOptions::default());
        *r.lock() = Some(postmark::run(&client, &config));
    });
    sim.run();
    let out = report.lock().take().unwrap();
    assert_eq!(out.created, out.deleted, "phase 3 deletes everything that was created");
    assert!(out.reads + out.appends > 0);
    assert!(out.bytes_written > 0);
    // The working directory is empty afterwards (only subdirs remain).
    let pm = vfs.lookup_path("/pm").unwrap();
    let entries = vfs.readdir(pm, 0, usize::MAX).unwrap();
    for e in entries.entries {
        let attr = vfs.getattr(e.fileid).unwrap();
        assert_eq!(attr.kind, gvfs_vfs::FileKind::Directory, "only subdirs remain: {}", e.name);
        let sub = vfs.readdir(e.fileid, 0, usize::MAX).unwrap();
        assert!(sub.entries.is_empty(), "subdir {} empty", e.name);
    }
}

#[test]
fn postmark_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let config = postmark::PostmarkConfig { seed, ..postmark::PostmarkConfig::small() };
        let sim = Sim::new();
        let native = NativeMount::establish(1, LinkConfig::lan(), None);
        let (t, root) = (native.client_transport(0), native.root_fh());
        let report = Arc::new(Mutex::new(None));
        let r = Arc::clone(&report);
        sim.spawn("postmark", move || {
            let client = NfsClient::new(t, root, MountOptions::default());
            *r.lock() = Some(postmark::run(&client, &config));
        });
        sim.run();
        let out = report.lock().take().unwrap();
        out
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).runtime, run(8).runtime);
}

#[test]
fn lock_workload_grants_exactly_n_times_each() {
    let sim = Sim::new();
    let vfs = Arc::new(Vfs::new());
    lock::populate(&vfs);
    let native = NativeMount::establish(3, LinkConfig::wan(), Some(vfs));
    let root = native.root_fh();
    let log = lock::new_log();
    let config = lock::LockConfig {
        acquisitions: 3,
        hold: Duration::from_secs(2),
        ..lock::LockConfig::default()
    };
    for i in 0..3 {
        let t = native.client_transport(i);
        let log = Arc::clone(&log);
        sim.spawn(&format!("c{i}"), move || {
            let client = NfsClient::new(t, root, MountOptions::noac());
            lock::run_client(&client, i, &config, &log);
        });
    }
    sim.run();
    let fairness = lock::fairness(&log, 3);
    assert_eq!(fairness.total, 9);
    assert_eq!(fairness.per_client, vec![3, 3, 3]);
    // Mutual exclusion: grant times are at least `hold` apart.
    let log = log.lock();
    for pair in log.windows(2) {
        assert!(pair[1].0 - pair[0].0 >= 2.0, "holds never overlap: {pair:?}");
    }
}

#[test]
fn nanomos_update_invalidates_proportionally() {
    let config = nanomos::NanomosConfig::small();
    let vfs = Arc::new(Vfs::new());
    nanomos::populate(&vfs, &config);
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(5),
            backoff_max: None,
        },
        invalidation_buffer: 32 * 1024,
        ..SessionConfig::default()
    })
    .client_links(vec![LinkConfig::wan(), LinkConfig::lan()])
    .vfs(vfs)
    .establish(&sim);
    let root = session.root_fh();
    let (ut, at) = (session.client_transport(0), session.client_transport(1));
    let handle = session.handle();
    let cfg = config.clone();
    sim.spawn("user", move || {
        let client = NfsClient::new(ut, root, MountOptions::default());
        let first = nanomos::run_iteration(&client, &cfg);
        let warm = nanomos::run_iteration(&client, &cfg);
        assert!(warm < first, "caching speeds up the second run");
        gvfs_netsim::sleep(Duration::from_secs(30)); // update + polling window
        let after_update = nanomos::run_iteration(&client, &cfg);
        assert!(after_update > warm, "the update forces re-validation/re-reads");
        handle.shutdown();
    });
    let cfg2 = config.clone();
    sim.spawn("admin", move || {
        let client = NfsClient::new(at, root, MountOptions::default());
        // Wait for the user's two warm runs.
        gvfs_netsim::sleep(Duration::from_secs(200));
        let touched = nanomos::admin_update(&client, &cfg2, nanomos::UpdateScope::Mpitb);
        assert_eq!(touched, cfg2.mpitb_files);
    });
    sim.run();
}

#[test]
fn ch1d_nfs_grows_and_gvfs_stays_flat() {
    let config = ch1d::Ch1dConfig::small();
    // NFS side.
    let nfs_runtimes = {
        let vfs = Arc::new(Vfs::new());
        ch1d::populate(&vfs);
        let sim = Sim::new();
        let native = NativeMount::establish(2, LinkConfig::wan(), Some(vfs));
        let (tp, tc) = (native.client_transport(0), native.client_transport(1));
        let root = native.root_fh();
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        let cfg = config.clone();
        sim.spawn("pipeline", move || {
            let p = NfsClient::new(tp, root, MountOptions::default());
            let c = NfsClient::new(tc, root, MountOptions::default());
            *o.lock() = ch1d::run_pipeline(&p, &c, &cfg);
        });
        sim.run();
        let v = out.lock().clone();
        v
    };
    assert!(
        nfs_runtimes.last().unwrap() > nfs_runtimes.first().unwrap(),
        "NFS consistency overhead grows with the dataset"
    );

    // GVFS side.
    let gvfs_runtimes = {
        let vfs = Arc::new(Vfs::new());
        ch1d::populate(&vfs);
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::delegation(),
            write_back: true,
            ..SessionConfig::default()
        })
        .clients(2)
        .vfs(vfs)
        .establish(&sim);
        let (tp, tc) = (session.client_transport(0), session.client_transport(1));
        let root = session.root_fh();
        let handle = session.handle();
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        let cfg = config.clone();
        sim.spawn("pipeline", move || {
            let p = NfsClient::new(tp, root, MountOptions::noac());
            let c = NfsClient::new(tc, root, MountOptions::noac());
            *o.lock() = ch1d::run_pipeline(&p, &c, &cfg);
            handle.shutdown();
        });
        sim.run();
        let v = out.lock().clone();
        v
    };
    let first = gvfs_runtimes.first().unwrap().as_secs_f64();
    let last = gvfs_runtimes.last().unwrap().as_secs_f64();
    assert!(
        (last - first).abs() / first < 0.5,
        "GVFS per-run cost roughly flat: first {first:.2}s last {last:.2}s"
    );
    assert!(
        gvfs_runtimes.last().unwrap() < nfs_runtimes.last().unwrap(),
        "GVFS beats NFS by the final run"
    );
}
