//! Integration tests for the real-TCP transport: concurrency, large
//! transfers crossing fragment boundaries, and duplicate-request
//! replay for non-idempotent services.

use gvfs_rpc::dispatch::{Dispatcher, RpcService};
use gvfs_rpc::message::{CallBody, MessageBody, OpaqueAuth, RpcMessage};
use gvfs_rpc::record::{write_record, RecordReader, MAX_FRAGMENT};
use gvfs_rpc::tcp::{TcpRpcClient, TcpRpcServer};
use gvfs_rpc::RpcError;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A service where re-execution is observable: each *executed* call
/// increments a counter and returns its value.
struct CountingService(Arc<AtomicU32>);

impl RpcService for CountingService {
    fn program(&self) -> u32 {
        77
    }
    fn version(&self) -> u32 {
        1
    }
    fn call(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        match procedure {
            0 => Ok(args.to_vec()),
            1 => {
                let n = self.0.fetch_add(1, Ordering::SeqCst) + 1;
                Ok(gvfs_xdr::to_bytes(&n).expect("encode"))
            }
            2 => {
                // Slow enough that an impatient client retransmits while
                // the original execution is still running.
                std::thread::sleep(std::time::Duration::from_millis(300));
                let n = self.0.fetch_add(1, Ordering::SeqCst) + 1;
                Ok(gvfs_xdr::to_bytes(&n).expect("encode"))
            }
            p => Err(RpcError::ProcedureUnavailable { program: 77, procedure: p }),
        }
    }
}

fn start() -> (gvfs_rpc::tcp::TcpServerHandle, Arc<AtomicU32>) {
    let counter = Arc::new(AtomicU32::new(0));
    let mut dispatcher = Dispatcher::new();
    dispatcher.register(CountingService(Arc::clone(&counter)));
    let server = TcpRpcServer::bind("127.0.0.1:0", dispatcher).expect("bind");
    (server.spawn(), counter)
}

#[test]
fn concurrent_clients_get_their_own_replies() {
    let (handle, _) = start();
    let addr = handle.addr();
    let mut threads = Vec::new();
    for t in 0..8u32 {
        threads.push(std::thread::spawn(move || {
            let client = TcpRpcClient::connect(addr).expect("connect");
            for i in 0..50u32 {
                let payload = gvfs_xdr::to_bytes(&(t * 1000 + i)).unwrap();
                let reply = client.call(77, 1, 0, OpaqueAuth::none(), payload.clone()).unwrap();
                assert_eq!(reply, payload);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
}

#[test]
fn large_payloads_cross_fragment_boundaries() {
    let (handle, _) = start();
    let client = TcpRpcClient::connect(handle.addr()).expect("connect");
    let big = vec![0xabu8; 2 * 1024 * 1024]; // 2 MiB: multiple fragments
    let reply = client.call(77, 1, 0, OpaqueAuth::none(), big.clone()).unwrap();
    assert_eq!(reply, big);
    handle.shutdown();
}

#[test]
fn duplicate_xid_is_replayed_not_reexecuted() {
    let (handle, counter) = start();
    let addr = handle.addr();

    // Hand-roll the retransmission: send the *same* record twice on one
    // connection (TcpRpcClient always bumps its xid, so go raw).
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let call = RpcMessage {
        xid: 42,
        body: MessageBody::Call(CallBody::new(77, 1, 1, OpaqueAuth::none(), Vec::new())),
    };
    let bytes = gvfs_xdr::to_bytes(&call).unwrap();
    let framed = write_record(&bytes, MAX_FRAGMENT);

    let mut reader = RecordReader::new();
    let read_reply = |stream: &mut std::net::TcpStream, reader: &mut RecordReader| {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(record) = reader.pop() {
                let msg: RpcMessage = gvfs_xdr::from_bytes(&record).unwrap();
                let MessageBody::Reply(reply) = msg.body else { panic!("not a reply") };
                let n: u32 = gvfs_xdr::from_bytes(reply.results().unwrap()).unwrap();
                return n;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server closed early");
            reader.push(&buf[..n]).unwrap();
        }
    };

    stream.write_all(&framed).unwrap();
    let first = read_reply(&mut stream, &mut reader);
    stream.write_all(&framed).unwrap(); // retransmission
    let second = read_reply(&mut stream, &mut reader);

    assert_eq!(first, second, "the DRC must replay the original reply");
    assert_eq!(counter.load(Ordering::SeqCst), 1, "the call executed exactly once");

    // A genuinely new xid executes again.
    let call2 = RpcMessage {
        xid: 43,
        body: MessageBody::Call(CallBody::new(77, 1, 1, OpaqueAuth::none(), Vec::new())),
    };
    let framed2 = write_record(&gvfs_xdr::to_bytes(&call2).unwrap(), MAX_FRAGMENT);
    stream.write_all(&framed2).unwrap();
    let third = read_reply(&mut stream, &mut reader);
    assert_eq!(third, 2);
    handle.shutdown();
}

#[test]
fn client_retransmission_is_suppressed_by_drc() {
    let (handle, counter) = start();
    let client = TcpRpcClient::connect(handle.addr())
        .expect("connect")
        .with_timeout(std::time::Duration::from_millis(60))
        .with_retries(8);
    // The call takes ~300 ms server-side; the client times out at 60 ms
    // and retransmits the identical record (same xid) several times.
    // The connection thread executes the original, then replays the
    // cached reply for every retransmission: exactly one execution.
    let reply = client.call(77, 1, 2, OpaqueAuth::none(), Vec::new()).unwrap();
    let n: u32 = gvfs_xdr::from_bytes(&reply).unwrap();
    assert_eq!(n, 1);
    // Allow the server to drain the retransmitted duplicates.
    std::thread::sleep(std::time::Duration::from_millis(200));
    assert_eq!(counter.load(Ordering::SeqCst), 1, "retransmissions must not re-execute");
    handle.shutdown();
}

#[test]
fn call_times_out_after_bounded_retries() {
    // A listener that accepts but never replies.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
    let client = TcpRpcClient::connect(addr)
        .expect("connect")
        .with_timeout(std::time::Duration::from_millis(40))
        .with_retries(2);
    let started = std::time::Instant::now();
    let err = client.call(77, 1, 0, OpaqueAuth::none(), Vec::new()).unwrap_err();
    assert_eq!(err, RpcError::Timeout);
    // One initial timeout plus two retransmission windows.
    assert!(started.elapsed() >= std::time::Duration::from_millis(120));
    drop(hold.join());
}

#[test]
fn unknown_program_reported_over_tcp() {
    let (handle, _) = start();
    let client = TcpRpcClient::connect(handle.addr()).expect("connect");
    let err = client.call(12345, 1, 0, OpaqueAuth::none(), Vec::new()).unwrap_err();
    assert!(matches!(err, RpcError::ProgramUnavailable { .. }));
    handle.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_joins() {
    let (handle, _) = start();
    let addr = handle.addr();
    handle.shutdown();
    // The port no longer accepts RPC service (a fresh connect may succeed
    // at the TCP level on some platforms before the listener closes, but
    // calls must fail).
    if let Ok(client) = TcpRpcClient::connect(addr) {
        let _ = client.call(77, 1, 0, OpaqueAuth::none(), Vec::new());
    }
}
