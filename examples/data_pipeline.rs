//! The scientific data pipeline scenario (paper §3 and Figure 1,
//! Session 1): real-time data collected on-site, processed off-site,
//! shared through a session with strong delegation/callback consistency
//! and write-back caching.
//!
//! ```sh
//! cargo run --release -p gvfs-bench --example data_pipeline
//! ```

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let sim = Sim::new();
    let config = SessionConfig {
        model: ConsistencyModel::delegation(),
        write_back: true, // write delegations let the collector delay writes
        ..SessionConfig::default()
    };
    let session = Session::builder(config).clients(2).wan(LinkConfig::wan()).establish(&sim);
    let root = session.root_fh();
    let (collector_t, analyst_t) = (session.client_transport(0), session.client_transport(1));
    let handle = session.handle();
    let _wan = session.wan_stats().clone();

    let processed = Arc::new(Mutex::new(0usize));

    // On-site collector: appends a new observation file every 10 s.
    sim.spawn("collector", move || {
        let client = NfsClient::new(collector_t, root, MountOptions::noac());
        let dir = client.mkdir(client.root(), "observations").unwrap();
        for n in 0..12 {
            let fh = client.create(dir, &format!("obs-{n:03}.dat"), true).unwrap();
            // Writes are delayed in the collector's proxy disk cache
            // under its write delegation; the analyst's first read
            // recalls the delegation and pulls them across.
            client.write(fh, 0, &vec![n as u8; 48 * 1024]).unwrap();
            gvfs_netsim::sleep(Duration::from_secs(10));
        }
    });

    // Off-site analyst: processes everything collected so far, every 30 s.
    let p2 = Arc::clone(&processed);
    let h2 = handle.clone();
    sim.spawn("analyst", move || {
        let client = NfsClient::new(analyst_t, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(15));
        let mut seen = 0;
        for _round in 0..6 {
            let dir = match client.resolve("/observations") {
                Ok(d) => d,
                Err(_) => {
                    gvfs_netsim::sleep(Duration::from_secs(30));
                    continue;
                }
            };
            let entries = client.readdir_all(dir).unwrap();
            for entry in &entries {
                let data = client.read_file(&format!("/observations/{}", entry.name)).unwrap();
                assert!(!data.is_empty(), "strong consistency: data always complete");
            }
            seen = seen.max(entries.len());
            *p2.lock() = seen;
            println!(
                "[{}] analyst processed {} observation files",
                gvfs_netsim::now(),
                entries.len()
            );
            gvfs_netsim::sleep(Duration::from_secs(30));
        }
        h2.shutdown();
    });

    sim.run();
    println!(
        "pipeline done; analyst saw {} files; WAN carried {} RPCs",
        processed.lock(),
        session.wan_stats().snapshot().total_calls()
    );
    let snap = session.wan_stats().snapshot();
    println!(
        "callbacks (delegation recalls as the analyst pulled fresh data): {}",
        gvfs_bench::callback_calls(&snap)
    );
}
