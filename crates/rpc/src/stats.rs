//! Per-procedure RPC traffic statistics.
//!
//! The paper's evaluation reports "the number of RPCs transferred over the
//! network" broken down by procedure (Figures 4a and 6a). [`RpcStats`] is a
//! cheap, thread-safe counter set that transports attach to each link;
//! the experiment harness snapshots it per setup.
//!
//! Beyond call/byte counts, the stats track an **in-flight gauge** with a
//! high-water mark and a per-procedure **latency accumulator**: with the
//! xid-multiplexed [`RpcChannel`](crate::channel::RpcChannel) a batch of
//! pipelined WRITEs shows up as `max_in_flight > 1`, which is how the
//! experiment output makes pipelining depth observable.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A snapshot-able set of per-(program, procedure) counters.
///
/// Cloning shares the underlying counters ([`Arc`] semantics), so a
/// transport and the harness can hold the same instance.
///
/// # Examples
///
/// ```
/// let stats = gvfs_rpc::stats::RpcStats::new();
/// stats.record(100003, 1, 128, 96); // one GETATTR: 128 B out, 96 B in
/// let snap = stats.snapshot();
/// assert_eq!(snap.calls(100003, 1), 1);
/// assert_eq!(snap.total_calls(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RpcStats {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<(u32, u32), ProcCounter>,
    in_flight: u64,
    max_in_flight: u64,
    unreachable: u64,
    timeouts: u64,
    breaker_trips: u64,
    breaker_probes: u64,
    breakers_open: u64,
}

/// Counters for a single procedure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcCounter {
    /// Number of calls.
    pub calls: u64,
    /// Bytes sent in call messages (including RPC headers).
    pub bytes_out: u64,
    /// Bytes received in replies.
    pub bytes_in: u64,
    /// Total latency across all calls, in nanoseconds (virtual time on
    /// the simulated transport, wall-clock on TCP).
    pub latency_nanos: u64,
}

impl ProcCounter {
    /// Mean per-call latency in nanoseconds (zero when no calls).
    pub fn mean_latency_nanos(&self) -> u64 {
        self.latency_nanos.checked_div(self.calls).unwrap_or(0)
    }
}

/// An immutable copy of the counters at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    counters: BTreeMap<(u32, u32), ProcCounter>,
    max_in_flight: u64,
    unreachable: u64,
    timeouts: u64,
    breaker_trips: u64,
    breaker_probes: u64,
    breakers_open: u64,
}

impl RpcStats {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed call for `(program, procedure)`.
    pub fn record(&self, program: u32, procedure: u32, bytes_out: u64, bytes_in: u64) {
        self.record_latency(program, procedure, bytes_out, bytes_in, 0);
    }

    /// Records one completed call including its observed latency.
    pub fn record_latency(
        &self,
        program: u32,
        procedure: u32,
        bytes_out: u64,
        bytes_in: u64,
        latency_nanos: u64,
    ) {
        let mut inner = self.inner.lock();
        let c = inner.counters.entry((program, procedure)).or_default();
        c.calls += 1;
        c.bytes_out += bytes_out;
        c.bytes_in += bytes_in;
        c.latency_nanos += latency_nanos;
    }

    /// Records one call that could not be put on the wire at all
    /// (partitioned link). These calls never reach the per-procedure
    /// counters, so a dedicated tally is the only way a harness can see
    /// how hard a client hammered a dead link — the chaos back-off
    /// regression tests read this.
    pub fn record_unreachable(&self) {
        self.inner.lock().unreachable += 1;
    }

    /// Records one call that was sent but never answered (lost request
    /// or reply, or a down server) and burned its RPC timeout.
    pub fn record_timeout(&self) {
        self.inner.lock().timeouts += 1;
    }

    /// Records one circuit-breaker trip (Closed → Open) and bumps the
    /// open-breaker gauge. Fed by
    /// [`CircuitBreaker`](crate::breaker::CircuitBreaker) when a stats
    /// sink is attached.
    pub fn record_breaker_trip(&self) {
        let mut inner = self.inner.lock();
        inner.breaker_trips += 1;
        inner.breakers_open += 1;
    }

    /// Records one breaker heal (a probe succeeded; Open/HalfOpen →
    /// Closed) and drops the open-breaker gauge.
    pub fn record_breaker_heal(&self) {
        let mut inner = self.inner.lock();
        inner.breakers_open = inner.breakers_open.saturating_sub(1);
    }

    /// Records one half-open probe window (Open → HalfOpen promotion).
    pub fn record_breaker_probe(&self) {
        self.inner.lock().breaker_probes += 1;
    }

    /// Notes that one call entered the wire; bumps the in-flight gauge
    /// and its high-water mark.
    pub fn call_started(&self) {
        let mut inner = self.inner.lock();
        inner.in_flight += 1;
        if inner.in_flight > inner.max_in_flight {
            inner.max_in_flight = inner.in_flight;
        }
    }

    /// Notes that one call left the wire (reply claimed or failed).
    pub fn call_finished(&self) {
        let mut inner = self.inner.lock();
        inner.in_flight = inner.in_flight.saturating_sub(1);
    }

    /// Calls currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.inner.lock().in_flight
    }

    /// Copies out the current counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let inner = self.inner.lock();
        StatsSnapshot {
            counters: inner.counters.clone(),
            max_in_flight: inner.max_in_flight,
            unreachable: inner.unreachable,
            timeouts: inner.timeouts,
            breaker_trips: inner.breaker_trips,
            breaker_probes: inner.breaker_probes,
            breakers_open: inner.breakers_open,
        }
    }

    /// Resets all counters (and the in-flight high-water mark) to zero.
    /// The open-breaker gauge is state, not a tally, and survives.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.max_in_flight = inner.in_flight;
        inner.unreachable = 0;
        inner.timeouts = 0;
        inner.breaker_trips = 0;
        inner.breaker_probes = 0;
    }
}

impl StatsSnapshot {
    /// Calls recorded for one procedure.
    pub fn calls(&self, program: u32, procedure: u32) -> u64 {
        self.counters.get(&(program, procedure)).map_or(0, |c| c.calls)
    }

    /// Total calls across all procedures.
    pub fn total_calls(&self) -> u64 {
        self.counters.values().map(|c| c.calls).sum()
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.counters.values().map(|c| c.bytes_in + c.bytes_out).sum()
    }

    /// Highest number of simultaneously in-flight calls observed since
    /// the stats were created (or last [`reset`](RpcStats::reset)).
    pub fn max_in_flight(&self) -> u64 {
        self.max_in_flight
    }

    /// Calls that failed before reaching the wire (partitioned link).
    pub fn transport_unreachable(&self) -> u64 {
        self.unreachable
    }

    /// Calls that were sent but burned their RPC timeout unanswered.
    pub fn transport_timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Circuit-breaker trips (Closed → Open) recorded into this sink.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips
    }

    /// Half-open probe windows (Open → HalfOpen promotions) recorded.
    pub fn breaker_probes(&self) -> u64 {
        self.breaker_probes
    }

    /// Breakers currently open or half-open (a gauge, not a tally).
    pub fn breakers_open(&self) -> u64 {
        self.breakers_open
    }

    /// Mean latency for one procedure, in nanoseconds.
    pub fn mean_latency_nanos(&self, program: u32, procedure: u32) -> u64 {
        self.counters.get(&(program, procedure)).map_or(0, ProcCounter::mean_latency_nanos)
    }

    /// Iterates over `((program, procedure), counter)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &ProcCounter)> {
        self.counters.iter()
    }

    /// Returns the difference `self - earlier`, for measuring an interval.
    ///
    /// Counters absent from `earlier` are taken as zero. The in-flight
    /// high-water mark is not differenced (it is a maximum, not a sum);
    /// the later snapshot's value is kept.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut counters = BTreeMap::new();
        for (key, c) in &self.counters {
            let before = earlier.counters.get(key).copied().unwrap_or_default();
            let delta = ProcCounter {
                calls: c.calls - before.calls,
                bytes_out: c.bytes_out - before.bytes_out,
                bytes_in: c.bytes_in - before.bytes_in,
                latency_nanos: c.latency_nanos - before.latency_nanos,
            };
            if delta != ProcCounter::default() {
                counters.insert(*key, delta);
            }
        }
        StatsSnapshot {
            counters,
            max_in_flight: self.max_in_flight,
            unreachable: self.unreachable - earlier.unreachable,
            timeouts: self.timeouts - earlier.timeouts,
            breaker_trips: self.breaker_trips - earlier.breaker_trips,
            breaker_probes: self.breaker_probes - earlier.breaker_probes,
            // A gauge: the later snapshot's value is kept, like
            // `max_in_flight`.
            breakers_open: self.breakers_open,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
            "prog", "proc", "calls", "bytes_out", "bytes_in", "mean_lat_us"
        )?;
        for ((prog, pr), c) in &self.counters {
            writeln!(
                f,
                "{prog:>10} {pr:>10} {:>10} {:>12} {:>12} {:>12}",
                c.calls,
                c.bytes_out,
                c.bytes_in,
                c.mean_latency_nanos() / 1_000
            )?;
        }
        writeln!(
            f,
            "max in-flight: {}  unreachable: {}  timeouts: {}  breaker trips: {} \
             (open: {}, probes: {})",
            self.max_in_flight,
            self.unreachable,
            self.timeouts,
            self.breaker_trips,
            self.breakers_open,
            self.breaker_probes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let s = RpcStats::new();
        s.record(1, 2, 10, 20);
        s.record(1, 2, 5, 5);
        s.record(1, 3, 1, 1);
        let snap = s.snapshot();
        assert_eq!(snap.calls(1, 2), 2);
        assert_eq!(snap.calls(1, 3), 1);
        assert_eq!(snap.calls(9, 9), 0);
        assert_eq!(snap.total_calls(), 3);
        assert_eq!(snap.total_bytes(), 42);
    }

    #[test]
    fn clones_share_counters() {
        let s = RpcStats::new();
        let s2 = s.clone();
        s2.record(7, 7, 1, 1);
        assert_eq!(s.snapshot().calls(7, 7), 1);
    }

    #[test]
    fn since_computes_interval() {
        let s = RpcStats::new();
        s.record(1, 1, 100, 100);
        let before = s.snapshot();
        s.record(1, 1, 50, 50);
        s.record(1, 2, 1, 1);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.calls(1, 1), 1);
        assert_eq!(delta.calls(1, 2), 1);
        assert_eq!(delta.total_bytes(), 102);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = RpcStats::new();
        s.record(1, 1, 1, 1);
        s.reset();
        assert_eq!(s.snapshot().total_calls(), 0);
    }

    #[test]
    fn display_lists_procedures() {
        let s = RpcStats::new();
        s.record(100003, 4, 10, 10);
        let text = s.snapshot().to_string();
        assert!(text.contains("100003"));
        assert!(text.contains("calls"));
    }

    #[test]
    fn in_flight_gauge_tracks_high_water() {
        let s = RpcStats::new();
        s.call_started();
        s.call_started();
        assert_eq!(s.in_flight(), 2);
        s.call_finished();
        s.call_started();
        s.call_finished();
        s.call_finished();
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.snapshot().max_in_flight(), 2);
    }

    #[test]
    fn latency_accumulates_and_averages() {
        let s = RpcStats::new();
        s.record_latency(1, 1, 10, 10, 1_000);
        s.record_latency(1, 1, 10, 10, 3_000);
        let snap = s.snapshot();
        assert_eq!(snap.mean_latency_nanos(1, 1), 2_000);
        assert_eq!(snap.mean_latency_nanos(1, 9), 0);
    }

    #[test]
    fn transport_failures_are_tallied_and_differenced() {
        let s = RpcStats::new();
        s.record_unreachable();
        s.record_unreachable();
        s.record_timeout();
        let before = s.snapshot();
        assert_eq!(before.transport_unreachable(), 2);
        assert_eq!(before.transport_timeouts(), 1);
        s.record_unreachable();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.transport_unreachable(), 1);
        assert_eq!(delta.transport_timeouts(), 0);
        s.reset();
        assert_eq!(s.snapshot().transport_unreachable(), 0);
    }

    #[test]
    fn breaker_counters_tally_difference_and_reset() {
        let s = RpcStats::new();
        s.record_breaker_trip();
        s.record_breaker_probe();
        let before = s.snapshot();
        assert_eq!(before.breaker_trips(), 1);
        assert_eq!(before.breaker_probes(), 1);
        assert_eq!(before.breakers_open(), 1);
        s.record_breaker_heal();
        s.record_breaker_trip();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.breaker_trips(), 1);
        assert_eq!(delta.breaker_probes(), 0);
        assert_eq!(delta.breakers_open(), 1, "gauge keeps the later value");
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.breaker_trips(), 0);
        assert_eq!(snap.breakers_open(), 1, "the gauge is state and survives reset");
    }

    #[test]
    fn reset_keeps_current_in_flight_as_floor() {
        let s = RpcStats::new();
        s.call_started();
        s.call_started();
        s.call_finished();
        s.reset();
        // One call still in flight: the new high-water mark starts there.
        assert_eq!(s.snapshot().max_in_flight(), 1);
    }
}
