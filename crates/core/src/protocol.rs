//! GVFS wire-protocol extensions.
//!
//! Three pieces ride on ONC RPC alongside native NFS:
//!
//! * The **proxy program** ([`GVFS_PROXY_PROGRAM`]): proxy clients send
//!   NFSv3 procedures (same procedure numbers, same argument encodings)
//!   to the proxy server, which replies with the native NFS result
//!   prefixed by a piggybacked [`DelegationGrant`] — the paper's
//!   "delegation and cacheability decisions piggybacked on the native
//!   NFS reply message". Procedure [`proc_ext::GETINV`] implements the
//!   invalidation poll.
//! * The **callback program** ([`GVFS_CALLBACK_PROGRAM`]) served by each
//!   proxy *client*: per-file delegation recalls ([`CallbackArgs`]) and
//!   the cache-wide recovery callback after a server restart.

use gvfs_nfs3::Fh3;
use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};

/// RPC program number of the GVFS proxy service (proxy client → proxy
/// server). Sits in the transient range.
pub const GVFS_PROXY_PROGRAM: u32 = 0x4000_0100;
/// RPC program number of the proxy client's callback service (proxy
/// server → proxy client).
pub const GVFS_CALLBACK_PROGRAM: u32 = 0x4000_0101;
/// Version of both GVFS programs.
pub const GVFS_VERSION: u32 = 1;

/// Extension procedure numbers (NFS procedures keep their RFC 1813
/// numbers on the proxy program).
pub mod proc_ext {
    /// Poll the proxy server's invalidation buffer (§4.2).
    pub const GETINV: u32 = 100;
    /// Per-file delegation recall (callback program).
    pub const CALLBACK: u32 = 1;
    /// Cache-wide recovery callback after proxy-server restart
    /// (callback program).
    pub const RECOVER: u32 = 2;
}

/// Maximum invalidation handles carried in a single `GETINV` reply; more
/// pending entries set the `poll_again` flag (§4.2.1 step 3). At 512
/// handles (~6 KiB of payload) a 14 K-entry update drains in ~28 calls,
/// matching the paper's "about 30 GETINV calls" for the MATLAB update.
pub const MAX_INVALIDATIONS_PER_REPLY: usize = 512;

/// The delegation/cacheability decision piggybacked on every proxy
/// reply (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u32)]
pub enum DelegationGrant {
    /// No delegation; cache per the session's relaxed model.
    #[default]
    None = 0,
    /// Read delegation: cached reads need no revalidation.
    Read = 1,
    /// Write delegation: reads and delayed writes served from cache.
    Write = 2,
    /// The file is temporarily non-cacheable (a sharing conflict is
    /// being resolved); bypass the cache for it.
    NonCacheable = 3,
}

impl Xdr for DelegationGrant {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self as u32);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(DelegationGrant::None),
            1 => Ok(DelegationGrant::Read),
            2 => Ok(DelegationGrant::Write),
            3 => Ok(DelegationGrant::NonCacheable),
            value => Err(XdrError::InvalidDiscriminant { type_name: "DelegationGrant", value }),
        }
    }
}

/// A proxy-program reply: the piggybacked grant plus the raw native NFS
/// reply bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrappedReply {
    /// Piggybacked delegation decision.
    pub grant: DelegationGrant,
    /// Piggybacked invalidation drain (§4.2 extension): the reply the
    /// client's next `GETINV` would have produced, riding on this call
    /// so a steady-state poll costs zero extra messages. `None` when
    /// the client has no pending invalidations.
    pub inv: Option<GetinvRes>,
    /// The unmodified NFSv3 result encoding.
    pub nfs_bytes: Vec<u8>,
}

impl Xdr for WrappedReply {
    // `inv` rides as a *trailing* optional — present iff bytes follow
    // the opaque NFS reply — so a reply with nothing to piggyback is
    // byte-identical (and therefore wire-time identical) to the
    // pre-piggyback format. The encoding stays unambiguous because
    // `nfs_bytes` is length-prefixed.
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.grant.encode(enc)?;
        enc.put_opaque(&self.nfs_bytes)?;
        match &self.inv {
            Some(inv) => inv.encode(enc),
            None => Ok(()),
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let grant = DelegationGrant::decode(dec)?;
        let nfs_bytes = dec.get_opaque()?;
        let inv = if dec.remaining() > 0 { Some(GetinvRes::decode(dec)?) } else { None };
        Ok(WrappedReply { grant, inv, nfs_bytes })
    }
}

/// `GETINV` arguments: the client's last known server timestamp, or
/// `None` to bootstrap (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetinvArgs {
    /// Last invalidation timestamp the client has applied.
    pub last_timestamp: Option<u64>,
}

impl Xdr for GetinvArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.last_timestamp.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(GetinvArgs { last_timestamp: Option::<u64>::decode(dec)? })
    }
}

/// `GETINV` result (§4.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetinvRes {
    /// The server's current logical timestamp.
    pub timestamp: u64,
    /// When set, the client must invalidate its entire attribute cache
    /// (first contact, wrap-around, or server restart).
    pub force_invalidate: bool,
    /// When set, more invalidations are pending than fit this reply;
    /// poll again immediately.
    pub poll_again: bool,
    /// File handles whose cached attributes must be invalidated.
    pub handles: Vec<Fh3>,
}

impl Xdr for GetinvRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u64(self.timestamp);
        enc.put_bool(self.force_invalidate);
        enc.put_bool(self.poll_again);
        self.handles.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(GetinvRes {
            timestamp: dec.get_u64()?,
            force_invalidate: dec.get_bool()?,
            poll_again: dec.get_bool()?,
            handles: Vec::<Fh3>::decode(dec)?,
        })
    }
}

/// Which delegation a callback recalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum CallbackKind {
    /// Recall a read delegation: invalidate the file's cached
    /// attributes.
    RecallRead = 1,
    /// Recall a write delegation: write dirty data back (fully, or
    /// partially with a block list).
    RecallWrite = 2,
}

impl Xdr for CallbackKind {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self as u32);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            1 => Ok(CallbackKind::RecallRead),
            2 => Ok(CallbackKind::RecallWrite),
            value => Err(XdrError::InvalidDiscriminant { type_name: "CallbackKind", value }),
        }
    }
}

/// `CALLBACK` arguments: the file being recalled and, when another
/// client is waiting on a specific block, that block's offset — "the
/// requested block's offset is sent along with the file's handle in the
/// callback" (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallbackArgs {
    /// The recalled file.
    pub fh: Fh3,
    /// What is being recalled.
    pub kind: CallbackKind,
    /// Block offset another client is blocked on, if any.
    pub requested_offset: Option<u64>,
}

impl Xdr for CallbackArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.fh.encode(enc)?;
        self.kind.encode(enc)?;
        self.requested_offset.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(CallbackArgs {
            fh: Fh3::decode(dec)?,
            kind: CallbackKind::decode(dec)?,
            requested_offset: Option::<u64>::decode(dec)?,
        })
    }
}

/// `CALLBACK` result: when the client elects partial write-back, the
/// offsets of blocks still dirty (to be submitted asynchronously);
/// empty when everything is already flushed or the recall was for a
/// read delegation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CallbackRes {
    /// Offsets (in bytes) of blocks not yet written back.
    pub pending_blocks: Vec<u64>,
}

impl Xdr for CallbackRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.pending_blocks.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(CallbackRes { pending_blocks: Vec::<u64>::decode(dec)? })
    }
}

/// `RECOVER` result: a recovering proxy server multicasts this
/// cache-wide callback; clients invalidate all cached attributes and
/// write-delegation holders return the files they hold dirty so the
/// server can rebuild its open-file table (§4.3.4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoverRes {
    /// Files for which this client holds locally modified data.
    pub dirty_files: Vec<Fh3>,
}

impl Xdr for RecoverRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.dirty_files.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(RecoverRes { dirty_files: Vec::<Fh3>::decode(dec)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Xdr + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = gvfs_xdr::to_bytes(v).unwrap();
        assert_eq!(&gvfs_xdr::from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn grants_roundtrip() {
        for g in [
            DelegationGrant::None,
            DelegationGrant::Read,
            DelegationGrant::Write,
            DelegationGrant::NonCacheable,
        ] {
            rt(&g);
        }
        assert!(gvfs_xdr::from_bytes::<DelegationGrant>(&[0, 0, 0, 9]).is_err());
    }

    #[test]
    fn wrapped_reply_roundtrip() {
        rt(&WrappedReply { grant: DelegationGrant::Read, inv: None, nfs_bytes: vec![0, 0, 0, 0] });
        rt(&WrappedReply { grant: DelegationGrant::None, inv: None, nfs_bytes: vec![] });
        rt(&WrappedReply {
            grant: DelegationGrant::None,
            inv: Some(GetinvRes {
                timestamp: 17,
                force_invalidate: false,
                poll_again: true,
                handles: vec![Fh3::from_fileid(3)],
            }),
            nfs_bytes: vec![1, 2, 3, 4],
        });
    }

    #[test]
    fn getinv_roundtrip() {
        rt(&GetinvArgs { last_timestamp: None });
        rt(&GetinvArgs { last_timestamp: Some(42) });
        rt(&GetinvRes {
            timestamp: 99,
            force_invalidate: true,
            poll_again: false,
            handles: vec![Fh3::from_fileid(1), Fh3::from_fileid(2)],
        });
    }

    #[test]
    fn callback_roundtrip() {
        rt(&CallbackArgs {
            fh: Fh3::from_fileid(7),
            kind: CallbackKind::RecallWrite,
            requested_offset: Some(65536),
        });
        rt(&CallbackArgs {
            fh: Fh3::from_fileid(7),
            kind: CallbackKind::RecallRead,
            requested_offset: None,
        });
        rt(&CallbackRes { pending_blocks: vec![0, 32768, 65536] });
        rt(&RecoverRes { dirty_files: vec![Fh3::from_fileid(3)] });
    }

    #[test]
    fn programs_are_distinct_and_transient() {
        assert_ne!(GVFS_PROXY_PROGRAM, GVFS_CALLBACK_PROGRAM);
        // The transient program-number range starts at 0x4000_0000.
        let transient_floor: u32 = 0x4000_0000;
        assert!(GVFS_PROXY_PROGRAM >= transient_floor);
    }
}
