//! An in-memory "disk" with deterministic seek/throughput costs and
//! crash semantics, for persistent caches living inside the simulation.
//!
//! Real disks would wreck the determinism the scheduler guarantees, so a
//! [`VirtualDisk`] keeps every file as two byte vectors: the *current*
//! content (what reads observe) and the *durable* content (what survives
//! a crash). [`VirtualDisk::sync`] promotes current to durable;
//! [`VirtualDisk::crash`] reverts to durable, except that the first
//! unsynced appended region of each file keeps a deterministic half-way
//! *torn prefix* — exactly the failure a write-ahead log must tolerate.
//!
//! I/O never blocks: each operation accrues virtual nanoseconds
//! (per-operation seek plus bytes ÷ throughput) into a pending-cost
//! accumulator. Callers drain it with [`VirtualDisk::take_pending_cost`]
//! and charge it to their own actor clock via [`crate::sleep`] at a
//! point where no locks are held — sleeping inside a store method would
//! deadlock the cooperative scheduler if the store's mutex is contended.
//!
//! Beyond crashes, a seeded [`DiskFaultPlan`] injects *media* faults —
//! durable bit flips surfacing at read time, torn sector writes, and
//! transient or permanent read errors per offset range — the storage
//! sibling of the WAN-side [`crate::fault::FaultPlan`], so disk chaos
//! and network chaos compose in one deterministic run.

use crate::fault::{ProbWindow, Window};
use crate::time::SimTime;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sector granularity for torn (partial) writes.
const SECTOR: usize = 512;

/// Cost model for one simulated disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Fixed positioning cost charged once per operation.
    pub seek: Duration,
    /// Sequential read throughput, bytes per second.
    pub read_bps: u64,
    /// Sequential write throughput, bytes per second.
    pub write_bps: u64,
}

impl DiskConfig {
    /// A commodity SSD: 80 µs access, 500/450 MB/s read/write.
    #[must_use]
    pub fn ssd() -> Self {
        DiskConfig {
            seek: Duration::from_micros(80),
            read_bps: 500_000_000,
            write_bps: 450_000_000,
        }
    }

    /// A 7200 rpm hard drive: 8 ms seek, 120 MB/s both ways.
    #[must_use]
    pub fn hdd() -> Self {
        DiskConfig { seek: Duration::from_millis(8), read_bps: 120_000_000, write_bps: 120_000_000 }
    }

    /// A free disk for tests that only care about contents.
    #[must_use]
    pub fn instant() -> Self {
        DiskConfig { seek: Duration::ZERO, read_bps: u64::MAX, write_bps: u64::MAX }
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig::ssd()
    }
}

/// Operation counters, for benchmarks and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Read operations.
    pub reads: u64,
    /// Write operations (including appends and truncates).
    pub writes: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Bytes accepted by writes.
    pub bytes_written: u64,
    /// Completed [`VirtualDisk::sync`] barriers.
    pub syncs: u64,
    /// Simulated crashes.
    pub crashes: u64,
    /// Bits flipped in durable bytes by the fault plan.
    pub flips_injected: u64,
    /// Writes torn at a sector boundary by the fault plan.
    pub torn_writes: u64,
    /// Reads failed (transient or permanent) by the fault plan.
    pub read_errors_injected: u64,
}

/// Why a [`VirtualDisk::try_read`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// A one-off media error; a retry may succeed.
    Transient,
    /// An unrecoverable bad region; every overlapping read fails.
    Permanent,
}

/// A read-error region: file offsets `[start, end)` (any path the plan
/// covers). `permanent` regions always fail; otherwise each overlapping
/// read rolls `probability`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRange {
    /// First failing byte offset.
    pub start: u64,
    /// First offset past the failing region.
    pub end: u64,
    /// Per-read failure probability (ignored when `permanent`).
    pub probability: f64,
    /// Whether the region is permanently unreadable.
    pub permanent: bool,
}

/// Seeded disk-fault injection, the storage-side sibling of
/// [`crate::fault::FaultPlan`]: bit flips in durable bytes, torn
/// (partial-sector) writes, and transient or permanent read errors per
/// offset range. All randomness comes from one seed expanded into a
/// dedicated RNG, and dice are rolled under the disk mutex inside the
/// serialized scheduler, so a plan replays the identical fate sequence
/// on every run — WAN chaos ([`crate::fault::FaultPlan`]) and disk
/// chaos compose deterministically.
///
/// The draw order per operation is fixed: reads roll transient-error
/// dice first (only when an [`ErrorRange`] overlaps), then bit-flip
/// dice (only when a flip window covers the current virtual time);
/// writes roll torn-write dice. An empty plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiskFaultPlan {
    /// Seed for the disk's private RNG.
    pub seed: u64,
    /// Bit-rot windows: each covered read rolls the probability and, on
    /// a hit, one bit inside the read range flips *durably* (the flip
    /// persists in both current and durable content — it is media decay
    /// surfacing at read time, not a transport error).
    pub flips: Vec<ProbWindow>,
    /// Torn-write windows: each covered write or append rolls the
    /// probability and, on a hit, only a prefix cut at a sector
    /// boundary actually lands.
    pub torn: Vec<ProbWindow>,
    /// Read-error regions (see [`ErrorRange`]).
    pub read_errors: Vec<ErrorRange>,
    /// Path prefixes the plan applies to; empty means every path.
    pub path_prefixes: Vec<String>,
}

impl DiskFaultPlan {
    /// An empty plan seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DiskFaultPlan { seed, ..DiskFaultPlan::default() }
    }

    /// Adds a bit-rot window with the given per-read probability.
    #[must_use]
    pub fn with_flips(mut self, window: Window, probability: f64) -> Self {
        self.flips.push(ProbWindow { window, probability });
        self
    }

    /// Adds a torn-write window with the given per-write probability.
    #[must_use]
    pub fn with_torn_writes(mut self, window: Window, probability: f64) -> Self {
        self.torn.push(ProbWindow { window, probability });
        self
    }

    /// Adds a transient read-error region over offsets `[start, end)`.
    #[must_use]
    pub fn with_transient_read_errors(mut self, start: u64, end: u64, probability: f64) -> Self {
        self.read_errors.push(ErrorRange { start, end, probability, permanent: false });
        self
    }

    /// Adds a permanently unreadable region over offsets `[start, end)`.
    #[must_use]
    pub fn with_permanent_read_error(mut self, start: u64, end: u64) -> Self {
        self.read_errors.push(ErrorRange { start, end, probability: 1.0, permanent: true });
        self
    }

    /// Restricts the plan to paths starting with `prefix` (additive;
    /// a plan with no prefixes covers every path).
    #[must_use]
    pub fn with_path_prefix(mut self, prefix: &str) -> Self {
        self.path_prefixes.push(prefix.to_owned());
        self
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty() && self.torn.is_empty() && self.read_errors.is_empty()
    }

    fn covers(&self, path: &str) -> bool {
        self.path_prefixes.is_empty() || self.path_prefixes.iter().any(|p| path.starts_with(p))
    }
}

/// A plan plus its running RNG, owned by one disk.
#[derive(Debug)]
struct DiskFaultState {
    plan: DiskFaultPlan,
    rng: StdRng,
}

impl DiskFaultState {
    fn new(plan: DiskFaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        DiskFaultState { plan, rng }
    }
}

#[derive(Debug, Default, Clone)]
struct VFile {
    /// Current content, as in-flight writes left it.
    data: Vec<u8>,
    /// Content as of the last global [`VirtualDisk::sync`].
    durable: Vec<u8>,
    /// Removed since the last sync: invisible to reads, but the durable
    /// content must survive a crash (an unlink is only durable after a
    /// sync, like a POSIX unlink without a directory fsync).
    deleted: bool,
}

#[derive(Debug, Default)]
struct DiskInner {
    files: HashMap<String, VFile>,
    stats: DiskStats,
    faults: Option<DiskFaultState>,
}

impl DiskInner {
    /// Rolls the torn-write die for one write of `len` bytes at virtual
    /// time `t`; `Some(keep)` tears the write down to its first `keep`
    /// bytes (a sector-aligned prefix, possibly empty).
    fn roll_torn(&mut self, path: &str, len: usize, t: SimTime) -> Option<usize> {
        let fs = self.faults.as_mut()?;
        if len == 0 || !fs.plan.covers(path) {
            return None;
        }
        let p = fs.plan.torn.iter().find(|p| p.window.contains(t))?;
        if !fs.rng.gen_bool(p.probability) {
            return None;
        }
        let cut = fs.rng.gen_range(0..len);
        Some(cut / SECTOR * SECTOR)
    }

    /// Rolls the read dice for one read. `Err` fails the read;
    /// `Ok(Some((rel, bit)))` flips one bit `rel` bytes into the read
    /// range before serving it.
    fn roll_read(
        &mut self,
        path: &str,
        offset: u64,
        len: usize,
        t: SimTime,
    ) -> Result<Option<(usize, u8)>, DiskError> {
        let Some(fs) = self.faults.as_mut() else { return Ok(None) };
        if !fs.plan.covers(path) {
            return Ok(None);
        }
        let end = offset.saturating_add(len as u64);
        for r in &fs.plan.read_errors {
            if r.permanent && r.start < end && offset < r.end {
                return Err(DiskError::Permanent);
            }
        }
        for i in 0..fs.plan.read_errors.len() {
            let r = fs.plan.read_errors[i];
            if !r.permanent && r.start < end && offset < r.end && fs.rng.gen_bool(r.probability) {
                return Err(DiskError::Transient);
            }
        }
        if len > 0 {
            if let Some(p) = fs.plan.flips.iter().find(|p| p.window.contains(t)).copied() {
                if fs.rng.gen_bool(p.probability) {
                    let rel = fs.rng.gen_range(0..len);
                    let bit = u8::try_from(fs.rng.gen_range(0..8u32)).expect("bit in 0..8");
                    return Ok(Some((rel, bit)));
                }
            }
        }
        Ok(None)
    }
}

/// The current virtual time, or `ZERO` outside the simulation (unit
/// tests and property tests drive the disk without a scheduler).
fn sim_now() -> SimTime {
    if crate::in_actor() {
        crate::now()
    } else {
        SimTime::ZERO
    }
}

/// A deterministic in-memory disk; see the module docs.
///
/// Cloneable via `Arc`; a proxy client and a restarted successor share
/// the same `Arc<VirtualDisk>` to model one machine's platter.
#[derive(Debug)]
pub struct VirtualDisk {
    cfg: DiskConfig,
    inner: Mutex<DiskInner>,
    pending_ns: AtomicU64,
}

impl VirtualDisk {
    /// Creates an empty disk with the given cost model.
    #[must_use]
    pub fn new(cfg: DiskConfig) -> Arc<Self> {
        Arc::new(VirtualDisk {
            cfg,
            inner: Mutex::new(DiskInner::default()),
            pending_ns: AtomicU64::new(0),
        })
    }

    fn charge(&self, bytes: usize, bps: u64) {
        let mut ns = u64::try_from(self.cfg.seek.as_nanos()).unwrap_or(u64::MAX);
        if bps < u64::MAX && bytes > 0 {
            ns = ns.saturating_add((bytes as u64).saturating_mul(1_000_000_000) / bps.max(1));
        }
        self.pending_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Drains the accrued I/O cost. The caller should charge it to its
    /// actor clock (`gvfs_netsim::sleep`) while holding no locks; code
    /// running outside the simulation may simply drop it.
    pub fn take_pending_cost(&self) -> Duration {
        Duration::from_nanos(self.pending_ns.swap(0, Ordering::Relaxed))
    }

    /// Operation counters so far.
    pub fn stats(&self) -> DiskStats {
        self.inner.lock().stats
    }

    /// Installs (or clears) the disk's fault plan; the plan's RNG
    /// restarts from its seed.
    pub fn set_fault_plan(&self, plan: Option<DiskFaultPlan>) {
        self.inner.lock().faults = plan.map(DiskFaultState::new);
    }

    /// Writes `bytes` at `offset`, zero-extending any hole. A torn-write
    /// fault lands only a sector-aligned prefix.
    pub fn write(&self, path: &str, offset: u64, bytes: &[u8]) {
        let t = sim_now();
        self.charge(bytes.len(), self.cfg.write_bps);
        let mut inner = self.inner.lock();
        let keep = inner.roll_torn(path, bytes.len(), t);
        if keep.is_some() {
            inner.stats.torn_writes += 1;
        }
        let bytes = &bytes[..keep.unwrap_or(bytes.len())];
        inner.stats.writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        let file = inner.files.entry(path.to_owned()).or_default();
        if file.deleted {
            // Re-creating a removed path: fresh content, but the durable
            // copy of the old file still governs what a crash restores.
            file.deleted = false;
            file.data.clear();
        }
        let off = usize::try_from(offset).expect("offset fits usize");
        let end = off + bytes.len();
        if file.data.len() < end {
            file.data.resize(end, 0);
        }
        file.data[off..end].copy_from_slice(bytes);
    }

    /// Appends `bytes`, returning the offset they landed at. A torn
    /// append lands only a sector-aligned prefix — the file ends
    /// mid-record and later appends continue from the torn end.
    pub fn append(&self, path: &str, bytes: &[u8]) -> u64 {
        let t = sim_now();
        self.charge(bytes.len(), self.cfg.write_bps);
        let mut inner = self.inner.lock();
        let keep = inner.roll_torn(path, bytes.len(), t);
        if keep.is_some() {
            inner.stats.torn_writes += 1;
        }
        let bytes = &bytes[..keep.unwrap_or(bytes.len())];
        inner.stats.writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        let file = inner.files.entry(path.to_owned()).or_default();
        if file.deleted {
            file.deleted = false;
            file.data.clear();
        }
        let off = file.data.len() as u64;
        file.data.extend_from_slice(bytes);
        off
    }

    /// Reads up to `len` bytes at `offset`; short at end of file, `None`
    /// if the file does not exist. Injected read errors surface as
    /// `None` here; fault-aware callers use [`VirtualDisk::try_read`].
    pub fn read(&self, path: &str, offset: u64, len: usize) -> Option<Vec<u8>> {
        self.try_read(path, offset, len).unwrap_or(None)
    }

    /// Reads up to `len` bytes at `offset`, distinguishing an injected
    /// media error ([`DiskError`]) from an absent file (`Ok(None)`). A
    /// bit-rot fault flips one bit *durably* inside the range before
    /// serving it.
    pub fn try_read(
        &self,
        path: &str,
        offset: u64,
        len: usize,
    ) -> Result<Option<Vec<u8>>, DiskError> {
        let t = sim_now();
        let mut inner = self.inner.lock();
        if inner.files.get(path).is_none_or(|f| f.deleted) {
            return Ok(None);
        }
        let flip = match inner.roll_read(path, offset, len, t) {
            Err(e) => {
                inner.stats.reads += 1;
                inner.stats.read_errors_injected += 1;
                drop(inner);
                self.charge(0, self.cfg.read_bps);
                return Err(e);
            }
            Ok(flip) => flip,
        };
        let file = inner.files.get_mut(path).expect("checked present");
        let off = usize::try_from(offset).expect("offset fits usize");
        let mut flipped = false;
        if let Some((rel, bit)) = flip {
            if off < file.data.len() {
                let span = file.data.len().min(off + len) - off;
                let idx = off + rel % span;
                file.data[idx] ^= 1 << bit;
                if idx < file.durable.len() {
                    file.durable[idx] ^= 1 << bit;
                }
                flipped = true;
            }
        }
        let end = off.saturating_add(len).min(file.data.len());
        let out = if off >= file.data.len() { Vec::new() } else { file.data[off..end].to_vec() };
        inner.stats.reads += 1;
        inner.stats.bytes_read += out.len() as u64;
        if flipped {
            inner.stats.flips_injected += 1;
        }
        drop(inner);
        self.charge(out.len(), self.cfg.read_bps);
        Ok(Some(out))
    }

    /// Verification read: charges no cost, counts no stats and rolls no
    /// dice — checksum verification models as piggybacked on the data
    /// transfer it guards — but permanently unreadable regions still
    /// fail (media that cannot be read cannot be verified either).
    pub fn read_quiet(
        &self,
        path: &str,
        offset: u64,
        len: usize,
    ) -> Result<Option<Vec<u8>>, DiskError> {
        let inner = self.inner.lock();
        let Some(file) = inner.files.get(path).filter(|f| !f.deleted) else { return Ok(None) };
        if let Some(fs) = &inner.faults {
            if fs.plan.covers(path) {
                let end = offset.saturating_add(len as u64);
                if fs
                    .plan
                    .read_errors
                    .iter()
                    .any(|r| r.permanent && r.start < end && offset < r.end)
                {
                    return Err(DiskError::Permanent);
                }
            }
        }
        let off = usize::try_from(offset).expect("offset fits usize");
        let end = off.saturating_add(len).min(file.data.len());
        Ok(Some(if off >= file.data.len() { Vec::new() } else { file.data[off..end].to_vec() }))
    }

    /// Deterministically corrupts one byte (XOR mask) in both current
    /// and durable content — targeted bit rot for tests and ablations.
    /// Returns `false` if the path is absent or shorter than `offset`.
    pub fn corrupt_byte(&self, path: &str, offset: u64, xor: u8) -> bool {
        if xor == 0 {
            return false;
        }
        let mut inner = self.inner.lock();
        let Some(file) = inner.files.get_mut(path).filter(|f| !f.deleted) else { return false };
        let off = usize::try_from(offset).expect("offset fits usize");
        if off >= file.data.len() {
            return false;
        }
        file.data[off] ^= xor;
        if off < file.durable.len() {
            file.durable[off] ^= xor;
        }
        inner.stats.flips_injected += 1;
        true
    }

    /// Current length of `path`, or `None` if absent.
    pub fn len(&self, path: &str) -> Option<u64> {
        self.inner.lock().files.get(path).filter(|f| !f.deleted).map(|f| f.data.len() as u64)
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.lock().files.get(path).is_some_and(|f| !f.deleted)
    }

    /// All paths starting with `prefix`, sorted (a readdir stand-in for
    /// garbage collection).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let inner = self.inner.lock();
        let mut v: Vec<String> = inner
            .files
            .iter()
            .filter(|(p, f)| p.starts_with(prefix) && !f.deleted)
            .map(|(p, _)| p.clone())
            .collect();
        v.sort_unstable();
        v
    }

    /// Truncates `path` to `len` bytes (creating it if absent).
    pub fn truncate(&self, path: &str, len: u64) {
        self.charge(0, self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        let file = inner.files.entry(path.to_owned()).or_default();
        if file.deleted {
            file.deleted = false;
            file.data.clear();
        }
        file.data.truncate(usize::try_from(len).expect("len fits usize"));
    }

    /// Removes `path` if present. Durable only after the next
    /// [`VirtualDisk::sync`]: a crash before it resurrects the durable
    /// content.
    pub fn remove(&self, path: &str) {
        self.charge(0, self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        if let Some(f) = inner.files.get_mut(path) {
            if f.durable.is_empty() {
                inner.files.remove(path);
            } else {
                f.deleted = true;
                f.data.clear();
            }
        }
    }

    /// Atomically renames `old` to `new` (replacing `new`). The rename
    /// itself is durable only after the next [`VirtualDisk::sync`], like
    /// a POSIX `rename` without a directory fsync — but a crash keeps
    /// whichever of the two contents was durable, never a mix.
    pub fn rename(&self, old: &str, new: &str) {
        self.charge(0, self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        if let Some(mut f) = inner.files.remove(old) {
            // The moved file carries its durable copy; if the target had
            // one it is replaced wholesale (no torn mix across a rename).
            if let Some(prev) = inner.files.get(new) {
                if !prev.durable.is_empty() && f.durable.is_empty() {
                    f.durable = prev.durable.clone();
                }
            }
            inner.files.insert(new.to_owned(), f);
        }
    }

    /// Durability barrier: everything written so far survives a crash.
    pub fn sync(&self) {
        self.charge(0, self.cfg.write_bps);
        let mut inner = self.inner.lock();
        inner.stats.syncs += 1;
        inner.files.retain(|_, f| !f.deleted);
        for f in inner.files.values_mut() {
            f.durable = f.data.clone();
        }
    }

    /// Simulates a machine crash: every file reverts to its durable
    /// content, except that a file that grew since the last sync keeps a
    /// deterministic **torn prefix** — half (rounded down) of the
    /// unsynced appended bytes. In-place overwrites of durable bytes are
    /// reverted entirely. Files never synced keep only their torn half.
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        inner.stats.crashes += 1;
        inner.files.retain(|_, f| {
            if f.deleted {
                // Unsynced removal: the unlink is lost with the crash.
                f.deleted = false;
                f.data = f.durable.clone();
            } else if f.data.len() > f.durable.len() {
                let torn = (f.data.len() - f.durable.len()) / 2;
                f.data.truncate(f.durable.len() + torn);
                f.data[..f.durable.len()].copy_from_slice(&f.durable);
            } else {
                f.data = f.durable.clone();
            }
            !f.data.is_empty() || !f.durable.is_empty()
        });
        // A crash forgets queued I/O cost along with the dirty pages.
        self.pending_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip_and_holes() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("a", 4, b"xyz");
        assert_eq!(d.read("a", 0, 8).unwrap(), vec![0, 0, 0, 0, b'x', b'y', b'z']);
        assert_eq!(d.len("a"), Some(7));
        assert_eq!(d.read("missing", 0, 1), None);
    }

    #[test]
    fn crash_reverts_unsynced_overwrites() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("f", 0, b"aaaa");
        d.sync();
        d.write("f", 0, b"bbbb");
        d.crash();
        assert_eq!(d.read("f", 0, 4).unwrap(), b"aaaa");
    }

    #[test]
    fn crash_keeps_torn_prefix_of_unsynced_append() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.append("log", b"aaaa");
        d.sync();
        d.append("log", b"bbbbbb");
        d.crash();
        // 6 unsynced bytes -> 3 survive.
        assert_eq!(d.read("log", 0, 16).unwrap(), b"aaaabbb");
    }

    #[test]
    fn sync_then_crash_is_lossless() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.append("log", b"abcdef");
        d.write("data", 8, b"zz");
        d.sync();
        d.crash();
        assert_eq!(d.read("log", 0, 16).unwrap(), b"abcdef");
        assert_eq!(d.read("data", 6, 4).unwrap(), vec![0, 0, b'z', b'z']);
    }

    #[test]
    fn costs_accrue_and_drain() {
        let d = VirtualDisk::new(DiskConfig {
            seek: Duration::from_millis(1),
            read_bps: 1_000_000,
            write_bps: 1_000_000,
        });
        d.write("f", 0, &[0u8; 1000]); // 1 ms seek + 1 ms transfer
        let cost = d.take_pending_cost();
        assert_eq!(cost, Duration::from_millis(2));
        assert_eq!(d.take_pending_cost(), Duration::ZERO);
    }

    #[test]
    fn unsynced_remove_is_resurrected_by_crash() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("f", 0, b"keep");
        d.sync();
        d.remove("f");
        assert!(!d.exists("f"));
        assert_eq!(d.read("f", 0, 4), None);
        d.crash();
        assert_eq!(d.read("f", 0, 4).unwrap(), b"keep", "unlink was not durable");
        // A synced removal is final.
        d.remove("f");
        d.sync();
        d.crash();
        assert!(!d.exists("f"));
    }

    #[test]
    fn recreate_after_remove_starts_fresh() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("f", 0, b"oldcontent");
        d.sync();
        d.remove("f");
        d.write("f", 0, b"nw");
        assert_eq!(d.read("f", 0, 16).unwrap(), b"nw", "no stale tail from the removed file");
    }

    fn always() -> Window {
        Window::new(SimTime::ZERO, SimTime::from_secs(1 << 20))
    }

    #[test]
    fn flip_fault_is_durable_and_counted() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("data/f", 0, &[0xAA; 64]);
        d.sync();
        d.set_fault_plan(Some(DiskFaultPlan::new(7).with_flips(always(), 1.0)));
        let corrupted = d.read("data/f", 0, 64).unwrap();
        d.set_fault_plan(None);
        let diff: u32 = corrupted.iter().map(|b| (b ^ 0xAA).count_ones()).sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        assert_eq!(d.stats().flips_injected, 1);
        assert_eq!(d.read("data/f", 0, 64).unwrap(), corrupted, "flip persists");
        d.crash();
        assert_eq!(d.read("data/f", 0, 64).unwrap(), corrupted, "flip is durable");
    }

    #[test]
    fn torn_write_lands_sector_prefix() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.set_fault_plan(Some(DiskFaultPlan::new(3).with_torn_writes(always(), 1.0)));
        d.write("data/f", 0, &[7u8; 2000]);
        let len = d.len("data/f").unwrap_or(0);
        assert_eq!(len % 512, 0, "torn at a sector boundary");
        assert!(len < 2000, "a prefix, not the whole write");
        assert_eq!(d.stats().torn_writes, 1);
        let off = d.append("data/f", &[9u8; 600]);
        assert_eq!(off, len, "append continues from the torn end");
    }

    #[test]
    fn read_error_ranges_fail_reads() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("data/f", 0, &[1u8; 100]);
        d.set_fault_plan(Some(
            DiskFaultPlan::new(5)
                .with_permanent_read_error(40, 60)
                .with_transient_read_errors(80, 90, 1.0),
        ));
        assert_eq!(d.try_read("data/f", 0, 10), Ok(Some(vec![1u8; 10])));
        assert_eq!(d.try_read("data/f", 50, 4), Err(DiskError::Permanent));
        assert_eq!(d.try_read("data/f", 30, 20), Err(DiskError::Permanent), "overlap fails");
        assert_eq!(d.try_read("data/f", 82, 2), Err(DiskError::Transient));
        assert_eq!(d.stats().read_errors_injected, 3);
        assert_eq!(d.read("data/f", 50, 4), None, "legacy read maps errors to None");
        // Quiet reads see permanent damage but never roll transient dice.
        assert_eq!(d.read_quiet("data/f", 50, 4), Err(DiskError::Permanent));
        assert_eq!(d.read_quiet("data/f", 82, 2), Ok(Some(vec![1u8; 2])));
    }

    #[test]
    fn path_prefix_scopes_the_plan() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("data/f", 0, &[1u8; 100]);
        d.write("wal.log", 0, &[1u8; 100]);
        d.set_fault_plan(Some(
            DiskFaultPlan::new(9).with_path_prefix("data/").with_permanent_read_error(0, 100),
        ));
        assert_eq!(d.try_read("data/f", 0, 10), Err(DiskError::Permanent));
        assert_eq!(d.try_read("wal.log", 0, 10), Ok(Some(vec![1u8; 10])));
    }

    #[test]
    fn same_seed_replays_identical_disk_fates() {
        let run = || {
            let d = VirtualDisk::new(DiskConfig::instant());
            d.set_fault_plan(Some(
                DiskFaultPlan::new(42)
                    .with_flips(always(), 0.5)
                    .with_torn_writes(always(), 0.5)
                    .with_transient_read_errors(0, 1 << 30, 0.3),
            ));
            for i in 0..50u64 {
                d.write("data/f", i * 64, &[i as u8; 64]);
            }
            let mut log = Vec::new();
            for i in 0..50u64 {
                log.push(d.try_read("data/f", i * 64, 64));
            }
            (log, d.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corrupt_byte_hits_data_and_durable() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("f", 0, b"hello");
        d.sync();
        assert!(d.corrupt_byte("f", 1, 0x01));
        assert_eq!(d.read("f", 0, 5).unwrap(), b"hdllo");
        d.crash();
        assert_eq!(d.read("f", 0, 5).unwrap(), b"hdllo", "corruption survives the crash");
        assert!(!d.corrupt_byte("f", 99, 0x01), "out of range");
        assert!(!d.corrupt_byte("missing", 0, 0x01));
    }

    #[test]
    fn rename_replaces_target() {
        let d = VirtualDisk::new(DiskConfig::instant());
        d.write("new", 0, b"vvvv");
        d.write("old", 0, b"ww");
        d.rename("old", "new");
        assert_eq!(d.read("new", 0, 8).unwrap(), b"ww");
        assert!(!d.exists("old"));
    }
}
